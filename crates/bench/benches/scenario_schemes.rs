//! Whole-scenario benches: one reflector attack + workload per mitigation
//! scheme (small configuration — this is the E2 engine measured for cost,
//! not its outcome).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::attack::ReflectorAttackConfig;
use dtcs::netsim::SimTime;
use dtcs::{run_scenario, ScenarioConfig, Scheme, TcsStaticConfig};

fn small() -> ScenarioConfig {
    ScenarioConfig {
        n_nodes: 80,
        attack: ReflectorAttackConfig {
            n_agents: 25,
            n_reflectors: 40,
            agent_rate_pps: 40.0,
            start_at: SimTime::from_secs(1),
            stop_at: SimTime::from_secs(6),
            ..Default::default()
        },
        n_clients: 10,
        n_collateral_clients: 8,
        duration: SimTime::from_secs(8),
        seed: 5,
        ..Default::default()
    }
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    let cases = vec![
        ("none", Scheme::None),
        ("tcs", Scheme::Tcs(TcsStaticConfig::default())),
        (
            "pushback",
            Scheme::Pushback(dtcs::mitigation::PushbackConfig::default()),
        ),
    ];
    for (name, scheme) in cases {
        let cfg = small();
        group.bench_with_input(BenchmarkId::new("scheme", name), &scheme, |b, scheme| {
            b.iter(|| run_scenario(&cfg, scheme))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
