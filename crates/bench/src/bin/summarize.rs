//! Results digest and cross-experiment consistency checker.
//!
//! Reads `results/e*.json` (written by the `experiments` binary) and
//! prints a one-screen digest of the headline numbers, then verifies the
//! cross-experiment invariants that must hold if the suite is coherent:
//!
//! * E2's and E4's undefended baselines come from the identical scenario
//!   and must agree exactly (determinism check across runs);
//! * every E8 verifier case must be `ok`;
//! * E5's attack byte·hops must fall monotonically with coverage per
//!   placement;
//! * E3 survival at zero coverage must be ~1 (nothing filters).
//!
//! Usage: `summarize [--dir results]` — exits non-zero on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

use serde_json::Value;

fn load(dir: &std::path::Path, id: &str) -> Option<Value> {
    let path = dir.join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Load `<id>.sweep.json` (the replicated-report schema written by
/// `experiments --sweep`) when one exists; pre-sweep result directories
/// simply have none.
fn load_sweep(dir: &std::path::Path, id: &str) -> Option<Value> {
    let path = dir.join(format!("{id}.sweep.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    (v["mode"].as_str() == Some("sweep")).then_some(v)
}

/// `mean ± ci95 [n]` for one metric of one sweep cell.
fn fmt_ci(metric: &Value) -> String {
    format!(
        "{:.3} ± {:.3} [n={}]",
        metric["mean"].as_f64().unwrap_or(f64::NAN),
        metric["ci95"].as_f64().unwrap_or(f64::NAN),
        metric["n"].as_u64().unwrap_or(0),
    )
}

/// Find one sweep cell by scenario label.
fn sweep_cell<'a>(sweep: &'a Value, scenario: &str) -> Option<&'a Value> {
    sweep["cells"]
        .as_array()?
        .iter()
        .find(|c| c["scenario"].as_str() == Some(scenario))
}

/// Replicate 0 reuses the single-run base seed, so a single-run value
/// must lie inside the sweep's [min, max] envelope for the same cell.
fn check_envelope(
    failures: &mut Vec<String>,
    sweep: &Value,
    scenario: &str,
    metric: &str,
    single: f64,
) {
    let Some(m) = sweep_cell(sweep, scenario).map(|c| &c["metrics"][metric]) else {
        failures.push(format!("sweep cell {scenario} missing metric {metric}"));
        return;
    };
    let (min, max) = (
        m["min"].as_f64().unwrap_or(f64::NAN),
        m["max"].as_f64().unwrap_or(f64::NAN),
    );
    // Exact containment: replicate 0 IS the single run.
    if !(min <= single && single <= max) {
        failures.push(format!(
            "sweep envelope violated: {scenario}/{metric} single-run {single} \
             outside [{min}, {max}] (replicate 0 must reuse the base seed)"
        ));
    }
}

/// The raw rows of the table whose title contains `needle`.
fn table_raw<'a>(report: &'a Value, needle: &str) -> Option<&'a Vec<Value>> {
    report["tables"].as_array()?.iter().find_map(|t| {
        if t["title"].as_str()?.contains(needle) {
            t["raw"].as_array()
        } else {
            None
        }
    })
}

fn find_row<'a>(rows: &'a [Value], key: &str, value: &str) -> Option<&'a Value> {
    rows.iter().find(|r| r[key].as_str() == Some(value))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));

    let mut failures: Vec<String> = Vec::new();
    let say = |line: String| println!("{line}");

    println!("== results digest ({}) ==\n", dir.display());

    // --- E2 headline -----------------------------------------------------
    let e2 = load(&dir, "e2");
    if let Some(e2) = &e2 {
        if let Some(rows) = table_raw(e2, "scheme outcomes") {
            for scheme in ["none", "pushback", "sos-overlay", "tcs(30%)"] {
                if let Some(r) = find_row(rows, "scheme", scheme) {
                    say(format!(
                        "E2  {:<22} legit={:.3}  collateral={:.3}",
                        scheme,
                        r["legit_success"].as_f64().unwrap_or(f64::NAN),
                        r["collateral_success"].as_f64().unwrap_or(f64::NAN),
                    ));
                }
            }
        }
    } else {
        failures.push("e2.json missing/unreadable".into());
    }

    // --- Consistency: E2 none == E4 none ---------------------------------
    if let (Some(e2), Some(e4)) = (&e2, load(&dir, "e4")) {
        let a = table_raw(e2, "scheme outcomes").and_then(|r| find_row(r, "scheme", "none"));
        let b = table_raw(&e4, "victim service").and_then(|r| find_row(r, "scheme", "none"));
        match (a, b) {
            (Some(a), Some(b)) => {
                for key in ["legit_success", "attack_byte_hops", "victim_overloaded"] {
                    if a[key] != b[key] {
                        failures.push(format!(
                            "E2/E4 'none' baselines disagree on {key}: {} vs {}",
                            a[key], b[key]
                        ));
                    }
                }
                say("\nE2/E4 shared baseline: identical (cross-run determinism holds)".into());
            }
            _ => failures.push("could not locate E2/E4 'none' rows".into()),
        }
    }

    // --- E8: every verifier case ok ---------------------------------------
    if let Some(e8) = load(&dir, "e8") {
        if let Some(rows) = table_raw(&e8, "adversarial") {
            let bad: Vec<&Value> = rows
                .iter()
                .filter(|r| r["ok"].as_bool() != Some(true))
                .collect();
            if bad.is_empty() {
                say(format!(
                    "E8  safety verifier: {}/{} adversarial cases rejected correctly",
                    rows.len(),
                    rows.len()
                ));
            } else {
                failures.push(format!("E8 has {} failing verifier cases", bad.len()));
            }
        }
    } else {
        failures.push("e8.json missing/unreadable".into());
    }

    // --- E5: byte-hops monotone in coverage per placement -----------------
    if let Some(e5) = load(&dir, "e5") {
        if let Some(rows) = table_raw(&e5, "coverage sweep") {
            for placement in ["top-degree", "random"] {
                let mut series: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|r| r["placement"].as_str() == Some(placement))
                    .filter_map(|r| {
                        Some((r["fraction"].as_f64()?, r["attack_byte_hops"].as_f64()?))
                    })
                    .collect();
                series.sort_by(|a, b| a.0.total_cmp(&b.0));
                let monotone = series.windows(2).all(|w| w[1].1 <= w[0].1 * 1.05);
                if monotone {
                    say(format!(
                        "E5  {placement}: attack byte-hops fall monotonically over {} coverage points",
                        series.len()
                    ));
                } else {
                    failures.push(format!("E5 {placement} byte-hops not monotone: {series:?}"));
                }
            }
        }
    } else {
        failures.push("e5.json missing/unreadable".into());
    }

    // --- E3: zero coverage filters nothing --------------------------------
    if let Some(e3) = load(&dir, "e3") {
        if let Some(rows) = table_raw(&e3, "power-law") {
            for r in rows.iter().filter(|r| r["fraction"].as_f64() == Some(0.0)) {
                let surv = r["survival_ratio"].as_f64().unwrap_or(0.0);
                // TCS at fraction 0 still includes the victim's own AS.
                if surv < 0.95 {
                    failures.push(format!(
                        "E3 zero-coverage survival suspiciously low: {} = {surv}",
                        r["strategy"]
                    ));
                }
            }
            say("E3  zero-coverage baselines sane (nothing filters without deployment)".into());
        }
    } else {
        failures.push("e3.json missing/unreadable".into());
    }

    // --- Sweep reports (when present): mean ± CI digest + envelope check --
    // `experiments --sweep` writes `<id>.sweep.json` with per-cell
    // replicate aggregations; replicate 0 reuses the single-run seed, so
    // every single-run value must sit inside the sweep's [min, max].
    if let Some(sw) = load_sweep(&dir, "e2") {
        say(String::new());
        for scheme in ["none", "tcs(30%)"] {
            let scen = format!("reflector/scheme={scheme}");
            if let Some(c) = sweep_cell(&sw, &scen) {
                say(format!(
                    "E2~ {:<22} legit={}  (sweep, {} replicates)",
                    scheme,
                    fmt_ci(&c["metrics"]["legit_success"]),
                    sw["replicates"].as_u64().unwrap_or(0),
                ));
            }
        }
        if let Some(rows) = e2.as_ref().and_then(|e2| table_raw(e2, "scheme outcomes")) {
            for r in rows {
                let (Some(scheme), Some(legit)) =
                    (r["scheme"].as_str(), r["legit_success"].as_f64())
                else {
                    continue;
                };
                check_envelope(
                    &mut failures,
                    &sw,
                    &format!("reflector/scheme={scheme}"),
                    "legit_success",
                    legit,
                );
            }
            say("E2~ sweep envelope: single-run rows inside replicate [min,max]".into());
        }
    }
    if let Some(sw) = load_sweep(&dir, "e3") {
        if let Some(rows) = load(&dir, "e3")
            .as_ref()
            .and_then(|e| table_raw(e, "power-law"))
        {
            for r in rows {
                let (Some(strategy), Some(fraction), Some(surv)) = (
                    r["strategy"].as_str(),
                    r["fraction"].as_f64(),
                    r["survival_ratio"].as_f64(),
                ) else {
                    continue;
                };
                check_envelope(
                    &mut failures,
                    &sw,
                    &format!("powerlaw/{strategy}/fraction={fraction:.2}"),
                    "survival_ratio",
                    surv,
                );
            }
            say("E3~ sweep envelope: single-run survival inside replicate [min,max]".into());
        }
        if let Some(c) = sweep_cell(&sw, "powerlaw/tcs/top-degree/fraction=0.20") {
            say(format!(
                "E3~ tcs/top-degree@20%: survival={}",
                fmt_ci(&c["metrics"]["survival_ratio"])
            ));
        }
    }
    if let Some(sw) = load_sweep(&dir, "e5") {
        if let Some(rows) = load(&dir, "e5")
            .as_ref()
            .and_then(|e| table_raw(e, "coverage sweep"))
        {
            for r in rows {
                let (Some(placement), Some(fraction), Some(hops)) = (
                    r["placement"].as_str(),
                    r["fraction"].as_f64(),
                    r["attack_byte_hops"].as_f64(),
                ) else {
                    continue;
                };
                check_envelope(
                    &mut failures,
                    &sw,
                    &format!("coverage/{placement}/fraction={fraction:.2}"),
                    "attack_byte_hops",
                    hops,
                );
            }
            say("E5~ sweep envelope: single-run byte-hops inside replicate [min,max]".into());
        }
        if let Some(c) = sweep_cell(&sw, "coverage/top-degree/fraction=0.50") {
            say(format!(
                "E5~ top-degree@50%: legit={}",
                fmt_ci(&c["metrics"]["legit_success"])
            ));
        }
    }
    if let Some(sw) = load_sweep(&dir, "e9") {
        if let Some(c) = sweep_cell(&sw, "skinny-uplink/src-keyed") {
            say(format!(
                "E9~ src-keyed misattribution: limits_on_reflectors={}",
                fmt_ci(&c["metrics"]["limits_on_reflector_prefixes"])
            ));
        }
    }
    if let Some(sw) = load_sweep(&dir, "e13") {
        if let Some(cells) = sw["cells"].as_array() {
            for c in cells {
                let scen = c["scenario"].as_str().unwrap_or("?");
                say(format!(
                    "E13~ {:<22} steady_cov={}",
                    scen,
                    fmt_ci(&c["metrics"]["steady_coverage_pct"])
                ));
            }
        }
    }

    println!();
    if failures.is_empty() {
        println!("all cross-experiment consistency checks passed.");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("CONSISTENCY FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
