//! Routing: all-pairs next-hop tables.
//!
//! Shortest paths with deterministic tie-breaking stand in for BGP, with
//! one policy nod: paths that would *transit* a stub AS pay a heavy
//! penalty, because in the real Internet a customer AS does not carry
//! third-party traffic (valley-free routing). Without this, multihomed
//! stubs land on shortest paths and ingress filters at their providers
//! falsely drop legitimate transit traffic. The penalty (rather than a
//! hard ban) keeps degenerate test topologies — lines, all-stub graphs —
//! connected. The recorded distance is the *hop count* of the chosen
//! path, so hop-based metrics stay meaningful.
//!
//! Tables are computed with one Dijkstra per destination, parallelised
//! across destinations with rayon (outer-loop data parallelism per the
//! HPC guides; each run is independent and writes only its own row).
//!
//! Beyond the tables themselves, each destination's forwarding tree
//! carries a *link stamp*: a bitset over the dense link index recording
//! which links the tree crosses. Stamps make route-change invalidation
//! proportional to the damage — a single link flip recomputes only the
//! trees whose stamp covers the flipped link ([`Routing::apply_link_flip`]),
//! and downstream caches ([`crate::oracle::RouteOracle`]) learn *which*
//! destinations changed through the delta history
//! ([`Routing::dsts_invalidated_since`]) instead of clearing wholesale.
//!
//! ## Hierarchical backend
//!
//! The dense tables are O(n²) memory — a hard wall near 10⁴ nodes
//! (100k nodes would need ~90 GB). Topologies that carry
//! [`crate::topology::Hierarchy`] metadata (strict single-homed trees
//! hanging off a transit core, i.e. [`crate::topology::Topology::
//! transit_stub`]) get a closed-form backend instead: an all-pairs table
//! over the *core only* (O(core²)) plus O(n) per-node anchor/depth/uplink
//! arrays. `next_hop` then resolves as "descend if `at` is on the
//! destination's up-chain, else climb, else cross the core" in O(tree
//! depth). Every public query ([`Routing::next_hop`], [`Routing::
//! distance`], [`Routing::enters_via`], [`Routing::path`]) answers through
//! the same dispatch, so the rest of the engine — and the fluid layer's
//! path cache — is backend-agnostic. Link flips update a live link-state
//! snapshot and record a `Full` delta (epoch subscribers fall back to a
//! wholesale refresh), keeping fault semantics conservative.

use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::node::{LinkId, NodeId, NodeRole};
use crate::topology::Topology;

/// Cost added for each stub AS a path transits (valley avoidance).
const STUB_TRANSIT_PENALTY: u32 = 1000;

/// Sentinel for "no route" in the flat next-hop table.
const NO_ROUTE: u32 = u32::MAX;

/// How many per-epoch delta records to retain for consumers syncing via
/// [`Routing::dsts_invalidated_since`]. Consumers further behind than this
/// fall back to a wholesale cache clear.
const DELTA_HISTORY: usize = 32;

/// What a recorded epoch transition invalidated.
#[derive(Clone, Debug)]
enum DeltaScope {
    /// Whole-table recompute: every row may have changed.
    Full,
    /// Only these destinations' rows changed (dense node indices).
    Dsts(Vec<u32>),
}

/// One epoch transition in the delta history.
#[derive(Clone, Debug)]
struct Delta {
    /// The epoch this transition produced.
    epoch: u64,
    scope: DeltaScope,
}

/// Outcome of [`Routing::apply_link_flip`], for stats plumbing.
#[derive(Clone, Copy, Debug)]
pub struct FlipOutcome {
    /// Destination trees re-derived by this flip (`n` on a full recompute,
    /// the damaged few on an incremental splice).
    pub trees_recomputed: usize,
    /// True when the flip fell back to a whole-table recompute.
    pub full: bool,
}

/// All-pairs next-hop forwarding state.
#[derive(Clone, Debug)]
pub struct Routing {
    n: usize,
    /// u64 words per destination stamp (≥ 1 even for linkless topologies).
    words: usize,
    /// Generation counter for cache invalidation: consumers that memoize
    /// answers derived from this table (e.g. [`crate::oracle::RouteOracle`])
    /// compare epochs and drop stale entries on mismatch. Freshly computed
    /// tables start at epoch 0; [`Routing::apply_link_flip`] bumps the epoch
    /// on every applied link delta.
    epoch: u64,
    /// `next_hop[d * n + u]` = link to take from node `u` toward destination
    /// node `d` (`NO_ROUTE` if unreachable or `u == d`).
    next_hop: Vec<u32>,
    /// `dist[d * n + u]` = hop distance from `u` to `d` (`u16::MAX` if
    /// unreachable).
    dist: Vec<u16>,
    /// `cost[d * n + u]` = Dijkstra cost (hops + transit penalties) from `u`
    /// to `d` (`u32::MAX` if unreachable). Needed by link-up flips: a
    /// restored link can only change routes toward `d` if it would relax
    /// one of its endpoints under the old costs.
    cost: Vec<u32>,
    /// `stamps[d * words .. (d + 1) * words]` = bitset (by dense link id) of
    /// links destination `d`'s forwarding tree crosses.
    stamps: Vec<u64>,
    /// Recent epoch transitions, oldest first, contiguous in epoch. Capped
    /// at [`DELTA_HISTORY`]; gaps (e.g. a manual [`Routing::set_epoch`])
    /// reset it.
    deltas: VecDeque<Delta>,
    /// Hierarchical backend, present iff the topology carried
    /// [`crate::topology::Hierarchy`] metadata at compute time. When set,
    /// the dense planes above are left empty and every query dispatches
    /// here (see the module docs).
    hier: Option<HierRouting>,
}

/// Closed-form routing state for strict-hierarchy topologies: O(core²)
/// all-pairs tables over the transit core plus O(n) chain metadata.
#[derive(Clone, Debug)]
struct HierRouting {
    /// Per node: the unique uplink toward the core (`None` for core nodes).
    up_link: Vec<Option<LinkId>>,
    /// Per node: the parent node id across `up_link` (self for core nodes).
    up_node: Vec<u32>,
    /// Per node: the core node its up-chain terminates at.
    anchor: Vec<u32>,
    /// Per node: hops below its anchor (0 for core nodes).
    depth: Vec<u16>,
    /// Core node ids, ascending.
    core: Vec<u32>,
    /// Dense core index per node id (`NO_ROUTE` for non-core nodes).
    core_idx: Vec<u32>,
    /// `core_next[di * c + ui]` = link from core node `core[ui]` toward
    /// core destination `core[di]` (`NO_ROUTE` if unreachable or equal).
    core_next: Vec<u32>,
    /// `core_dist[di * c + ui]` = hop distance across the core
    /// (`u16::MAX` if unreachable).
    core_dist: Vec<u16>,
    /// Live link-state snapshot (dense by link id), updated by
    /// [`Routing::apply_link_flip`] so queries need no topology access.
    link_up: Vec<bool>,
}

/// Deepest up-chain the hierarchical backend supports. Queries walk
/// chains on fixed-size stack arrays to stay allocation-free on the
/// per-packet hot path; [`Topology::transit_stub`] produces depth ≤ 2.
const MAX_HIER_DEPTH: usize = 8;

impl Routing {
    /// Compute routing tables for a topology. Topologies carrying
    /// [`crate::topology::Hierarchy`] metadata get the O(core²)-memory
    /// hierarchical backend; everything else gets the dense all-pairs
    /// tables (bit-for-bit the historical behaviour).
    pub fn compute(topo: &Topology) -> Routing {
        if let Some(h) = &topo.hierarchy {
            return Routing {
                n: topo.n(),
                words: stamp_words(topo.links.len()),
                epoch: 0,
                next_hop: Vec::new(),
                dist: Vec::new(),
                cost: Vec::new(),
                stamps: Vec::new(),
                deltas: VecDeque::new(),
                hier: Some(HierRouting::compute(topo, h)),
            };
        }
        let n = topo.n();
        let words = stamp_words(topo.links.len());
        let mut r = Routing {
            n,
            words,
            epoch: 0,
            next_hop: vec![NO_ROUTE; n * n],
            dist: vec![u16::MAX; n * n],
            cost: vec![u32::MAX; n * n],
            stamps: vec![0; n * words],
            deltas: VecDeque::new(),
            hier: None,
        };
        r.fill_all_rows(topo);
        r
    }

    /// Is this table served by the hierarchical backend?
    pub fn is_hierarchical(&self) -> bool {
        self.hier.is_some()
    }

    /// (Re)derive every destination's row in parallel into the existing
    /// buffers, which must already be reset to their sentinels.
    fn fill_all_rows(&mut self, topo: &Topology) {
        let n = self.n;
        let words = self.words;
        let has_transit = topo.has_transit_roles();
        self.next_hop
            .par_chunks_mut(n)
            .zip(self.dist.par_chunks_mut(n))
            .zip(self.cost.par_chunks_mut(n))
            .zip(self.stamps.par_chunks_mut(words))
            .enumerate()
            .for_each(|(d, (((hops_row, dist_row), cost_row), stamp_row))| {
                bfs_from(topo, NodeId(d), has_transit, hops_row, dist_row, cost_row);
                fill_stamp(hops_row, stamp_row);
            });
    }

    /// This table's generation (see the `epoch` field).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tag this table with a generation, typically `old.epoch() + 1` when
    /// swapping in a recompute after a topology change. Manual tagging
    /// leaves no delta record, so syncing consumers clear wholesale —
    /// the safe answer for an arbitrary replacement table.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.deltas.clear();
    }

    /// Apply a single link state flip *already written to `topo`*: recompute
    /// only the destination trees the flip can affect, splice them into the
    /// existing tables, bump the epoch, and record a delta so warm caches
    /// can evict precisely. Falls back to a full parallel recompute when
    /// the damage covers more than half the destinations (the per-tree
    /// splice is sequential, so beyond that point the parallel rebuild is
    /// both simpler and faster).
    ///
    /// Equivalence to a cold [`Routing::compute`] on the flipped topology is
    /// exact (same tables, bit for bit) and pinned by the flap-schedule
    /// proptest in `crate::proptests`:
    /// - *Link down*: with strict-improvement relaxation, a destination's
    ///   row can only change if the tree actually crossed the dead link —
    ///   i.e. the link is in the stamp. Non-final relaxations through the
    ///   link never leak into settled entries.
    /// - *Link up*: the stamp cannot see a link that was down at compute
    ///   time, so the test uses stored costs: the restored link `(a, b)`
    ///   can only matter for `d` if it would relax an endpoint under the
    ///   old costs, `cost(a) + w(a) <= cost(b)` or vice versa. Equality
    ///   counts — an equal-cost path through the new link can win the
    ///   deterministic tie-break.
    pub fn apply_link_flip(&mut self, topo: &Topology, link: LinkId) -> FlipOutcome {
        debug_assert_eq!(self.n, topo.n(), "table/topology size mismatch");
        let n = self.n;
        self.epoch += 1;
        if let Some(h) = &mut self.hier {
            // Hierarchical backend: refresh the link-state snapshot, and
            // rebuild the core tables when the flip touches a core link.
            // There are no per-destination rows to splice, so the delta is
            // always `Full` — epoch subscribers refresh wholesale, which
            // is the conservative (and still correct) answer.
            let trees = h.apply_flip(topo, link);
            self.push_delta(DeltaScope::Full);
            return FlipOutcome {
                trees_recomputed: trees,
                full: true,
            };
        }
        if link.0 >= self.words * 64 {
            // Link added after compute(): no stamp coverage, rebuild fully.
            return self.full_rebuild(topo);
        }
        let l = &topo.links[link.0];
        let affected: Vec<u32> = if l.up {
            let (a, b) = (l.a, l.b);
            let has_transit = topo.has_transit_roles();
            (0..n)
                .filter(|&d| {
                    let ca = self.cost[d * n + a.0];
                    let cb = self.cost[d * n + b.0];
                    if ca == u32::MAX && cb == u32::MAX {
                        return false; // both endpoints unreachable from d
                    }
                    let wa = hop_weight(topo, has_transit, a, d);
                    let wb = hop_weight(topo, has_transit, b, d);
                    ca.saturating_add(wa) <= cb || cb.saturating_add(wb) <= ca
                })
                .map(|d| d as u32)
                .collect()
        } else {
            let (w, bit) = (link.0 >> 6, 1u64 << (link.0 & 63));
            (0..n)
                .filter(|&d| self.stamps[d * self.words + w] & bit != 0)
                .map(|d| d as u32)
                .collect()
        };
        if affected.len() * 2 > n {
            return self.full_rebuild(topo);
        }
        let has_transit = topo.has_transit_roles();
        let words = self.words;
        for &d in &affected {
            let d = d as usize;
            let hops_row = &mut self.next_hop[d * n..(d + 1) * n];
            let dist_row = &mut self.dist[d * n..(d + 1) * n];
            let cost_row = &mut self.cost[d * n..(d + 1) * n];
            hops_row.fill(NO_ROUTE);
            dist_row.fill(u16::MAX);
            cost_row.fill(u32::MAX);
            bfs_from(topo, NodeId(d), has_transit, hops_row, dist_row, cost_row);
            fill_stamp(hops_row, &mut self.stamps[d * words..(d + 1) * words]);
        }
        let trees_recomputed = affected.len();
        self.push_delta(DeltaScope::Dsts(affected));
        FlipOutcome {
            trees_recomputed,
            full: false,
        }
    }

    /// Whole-table recompute into the existing buffers; records a `Full`
    /// delta under the already-bumped epoch.
    fn full_rebuild(&mut self, topo: &Topology) -> FlipOutcome {
        self.next_hop.fill(NO_ROUTE);
        self.dist.fill(u16::MAX);
        self.cost.fill(u32::MAX);
        self.stamps.fill(0);
        self.fill_all_rows(topo);
        self.push_delta(DeltaScope::Full);
        FlipOutcome {
            trees_recomputed: self.n,
            full: true,
        }
    }

    fn push_delta(&mut self, scope: DeltaScope) {
        self.deltas.push_back(Delta {
            epoch: self.epoch,
            scope,
        });
        if self.deltas.len() > DELTA_HISTORY {
            self.deltas.pop_front();
        }
    }

    /// Which destinations' rows changed since `epoch`? Returns the union of
    /// affected destinations across every transition in `(epoch, self.epoch]`
    /// (possibly with duplicates), or `None` when the history cannot answer
    /// precisely — a full recompute in the window, a transition older than
    /// the retained history, or a manually tagged epoch. `None` means the
    /// caller must assume everything changed.
    pub fn dsts_invalidated_since(&self, epoch: u64) -> Option<Vec<NodeId>> {
        if epoch > self.epoch {
            return None; // consumer synced to a different (replaced) table
        }
        if epoch == self.epoch {
            return Some(Vec::new());
        }
        let mut need = epoch + 1;
        let mut out = Vec::new();
        for d in &self.deltas {
            if d.epoch < need {
                continue;
            }
            if d.epoch > need {
                return None; // gap: part of the window left no record
            }
            match &d.scope {
                DeltaScope::Full => return None,
                DeltaScope::Dsts(v) => out.extend(v.iter().map(|&x| NodeId(x as usize))),
            }
            need += 1;
        }
        if need == self.epoch + 1 {
            Some(out)
        } else {
            None // window extends past the retained history
        }
    }

    /// Does destination `dst`'s forwarding tree cross `link`? (Stamp probe;
    /// used by churn benchmarks to pick low-blast-radius links.)
    pub fn tree_contains(&self, dst: NodeId, link: LinkId) -> bool {
        if dst.0 >= self.n || link.0 >= self.words * 64 {
            return false;
        }
        if let Some(h) = &self.hier {
            return h.tree_contains(dst, link);
        }
        self.stamps[dst.0 * self.words + (link.0 >> 6)] & (1u64 << (link.0 & 63)) != 0
    }

    /// Bit-exact table comparison (next-hop, distance, and cost planes).
    /// Verification helper for tests and benches asserting that incremental
    /// splices match a cold recompute.
    pub fn tables_match(&self, other: &Routing) -> bool {
        match (&self.hier, &other.hier) {
            (None, None) => {
                self.n == other.n
                    && self.next_hop == other.next_hop
                    && self.dist == other.dist
                    && self.cost == other.cost
                    && self.stamps == other.stamps
            }
            (Some(a), Some(b)) => {
                self.n == other.n
                    && a.core_next == b.core_next
                    && a.core_dist == b.core_dist
                    && a.link_up == b.link_up
                    && a.up_node == b.up_node
            }
            _ => false,
        }
    }

    /// Link to take from `at` toward destination node `dst`, or `None` when
    /// `at == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if let Some(h) = &self.hier {
            return h.next_hop(at, dst);
        }
        let v = self.next_hop[dst.0 * self.n + at.0];
        if v == NO_ROUTE {
            None
        } else {
            Some(LinkId(v as usize))
        }
    }

    /// Hop distance from `from` to `to`; `None` if unreachable.
    #[inline]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u16> {
        if let Some(h) = &self.hier {
            return h.distance(from, to);
        }
        let d = self.dist[to.0 * self.n + from.0];
        if d == u16::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// The node sequence of the path from `from` to `to` (inclusive), or
    /// `None` if unreachable.
    pub fn path(&self, topo: &Topology, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let link = self.next_hop(at, to)?;
            at = topo.links[link.0].other(at);
            path.push(at);
            if path.len() > self.n + 1 {
                return None; // defensive: inconsistent table
            }
        }
        Some(path)
    }

    /// Does the shortest path from `from` to `to` traverse `via`?
    pub fn path_contains(&self, topo: &Topology, from: NodeId, to: NodeId, via: NodeId) -> bool {
        match self.path(topo, from, to) {
            Some(p) => p.contains(&via),
            None => false,
        }
    }

    /// Route-consistency check (Park & Lee route-based filtering): on the
    /// forwarding path from `src` to `dst`, which neighbour hands traffic
    /// to `at`? Returns `None` when `at` is not on that path (or is the
    /// path's first node), i.e. when a packet claiming `src` could not
    /// legitimately be entering `at` at all. Out-of-range `src`/`dst`
    /// (addresses outside the topology) also return `None`.
    pub fn enters_via(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        at: NodeId,
    ) -> Option<NodeId> {
        if src.0 >= self.n || dst.0 >= self.n || at.0 >= self.n {
            return None;
        }
        let mut cur = src;
        let mut guard = 0;
        while cur != dst {
            let link = self.next_hop(cur, dst)?;
            let next = topo.links[link.0].other(cur);
            if next == at {
                return Some(cur);
            }
            cur = next;
            guard += 1;
            if guard > self.n {
                return None;
            }
        }
        None
    }

    /// Number of nodes this table was built for.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl HierRouting {
    /// Build the hierarchical state from the topology's recorded
    /// hierarchy: derive parent/anchor/depth chains, snapshot link state,
    /// and run one core-restricted Dijkstra per core destination.
    fn compute(topo: &Topology, h: &crate::topology::Hierarchy) -> HierRouting {
        let n = topo.n();
        assert_eq!(h.up_link.len(), n, "hierarchy covers every node");
        let up_link = h.up_link.clone();
        let mut up_node = vec![0u32; n];
        for (i, up) in up_link.iter().enumerate() {
            up_node[i] = match up {
                Some(l) => topo.links[l.0].other(NodeId(i)).0 as u32,
                None => i as u32,
            };
        }
        // Anchor + depth by chain-walking with memoization (chains are
        // short; the guard rejects cyclic metadata outright).
        let mut anchor = vec![u32::MAX; n];
        let mut depth = vec![0u16; n];
        let mut chain = Vec::new();
        for i in 0..n {
            let mut cur = i;
            chain.clear();
            while anchor[cur] == u32::MAX && up_node[cur] as usize != cur {
                chain.push(cur);
                cur = up_node[cur] as usize;
                assert!(chain.len() <= n, "hierarchy uplinks must be acyclic");
            }
            let (a0, d0) = if up_node[cur] as usize == cur {
                (cur as u32, 0u16)
            } else {
                (anchor[cur], depth[cur])
            };
            anchor[cur] = a0;
            depth[cur] = d0;
            for (k, &v) in chain.iter().rev().enumerate() {
                anchor[v] = a0;
                depth[v] = d0 + 1 + k as u16;
                assert!(
                    (depth[v] as usize) <= MAX_HIER_DEPTH,
                    "hierarchy deeper than MAX_HIER_DEPTH"
                );
            }
        }
        let core: Vec<u32> = h.core.iter().map(|c| c.0 as u32).collect();
        let mut core_idx = vec![NO_ROUTE; n];
        for (ci, &c) in core.iter().enumerate() {
            core_idx[c as usize] = ci as u32;
        }
        let link_up: Vec<bool> = topo.links.iter().map(|l| l.up).collect();
        let mut hr = HierRouting {
            up_link,
            up_node,
            anchor,
            depth,
            core,
            core_idx,
            core_next: Vec::new(),
            core_dist: Vec::new(),
            link_up,
        };
        hr.rebuild_core(topo);
        hr
    }

    /// (Re)run the per-destination Dijkstra restricted to up core links.
    /// Tie-breaks match the dense backend's — pops order by `(cost,
    /// node id)` with strict-improvement relaxation — so on a connected
    /// core both backends pick identical core paths.
    fn rebuild_core(&mut self, topo: &Topology) {
        let c = self.core.len();
        let core = &self.core;
        let core_idx = &self.core_idx;
        let link_up = &self.link_up;
        let mut core_next = vec![NO_ROUTE; c * c];
        let mut core_dist = vec![u16::MAX; c * c];
        core_next
            .par_chunks_mut(c.max(1))
            .zip(core_dist.par_chunks_mut(c.max(1)))
            .enumerate()
            .for_each(|(di, (next_row, dist_row))| {
                let d = core[di] as usize;
                // Scratch costs indexed by core index (not node id): the
                // walk never leaves the core, and O(core) scratch keeps
                // rebuilds linear in the core, not the topology.
                let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
                let mut cost = vec![u32::MAX; core.len()];
                cost[di] = 0;
                dist_row[di] = 0;
                heap.push(Reverse((0, d)));
                while let Some(Reverse((cu, ui))) = heap.pop() {
                    let uci = core_idx[ui] as usize;
                    if cu > cost[uci] {
                        continue;
                    }
                    for &lid in &topo.nodes[ui].links {
                        if !link_up[lid.0] {
                            continue;
                        }
                        let v = topo.links[lid.0].other(NodeId(ui));
                        let vci = core_idx[v.0];
                        if vci == NO_ROUTE {
                            continue; // only core-to-core hops
                        }
                        let nc = cu + 1;
                        if nc < cost[vci as usize] {
                            cost[vci as usize] = nc;
                            dist_row[vci as usize] = dist_row[uci] + 1;
                            next_row[vci as usize] = lid.0 as u32;
                            heap.push(Reverse((nc, v.0)));
                        }
                    }
                }
            });
        self.core_next = core_next;
        self.core_dist = core_dist;
    }

    /// Apply a link flip: refresh the snapshot; rebuild the core tables if
    /// the flip touched a core link. Returns a tree-recompute count for
    /// stats plumbing (core size for core flips, 1 for tree flips).
    fn apply_flip(&mut self, topo: &Topology, link: LinkId) -> usize {
        if link.0 >= self.link_up.len() {
            self.link_up.resize(topo.links.len(), true);
        }
        self.link_up[link.0] = topo.links[link.0].up;
        let l = &topo.links[link.0];
        if self.depth[l.a.0] == 0 && self.depth[l.b.0] == 0 {
            self.rebuild_core(topo);
            self.core.len()
        } else {
            1
        }
    }

    /// Fill `chain` with `dst`'s strict ancestors' *child* nodes: slot `k`
    /// holds the node whose uplink is the `k`-th edge of the up-path, i.e.
    /// `chain[0] = dst` when `dst` is below the core. Returns the chain
    /// length (== `depth[dst]`).
    #[inline]
    fn dst_chain(&self, dst: usize, chain: &mut [usize; MAX_HIER_DEPTH]) -> usize {
        let mut len = 0;
        let mut cur = dst;
        while self.depth[cur] > 0 {
            chain[len] = cur;
            len += 1;
            cur = self.up_node[cur] as usize;
        }
        len
    }

    /// Are the chain edges `chain[0..k]`'s uplinks all up?
    #[inline]
    fn chain_up(&self, chain: &[usize; MAX_HIER_DEPTH], k: usize) -> bool {
        chain[..k]
            .iter()
            .all(|&v| self.up_link[v].map(|l| self.link_up[l.0]).unwrap_or(false))
    }

    /// See [`Routing::next_hop`]. O(tree depth), allocation-free.
    fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if at == dst || at.0 >= self.depth.len() || dst.0 >= self.depth.len() {
            return None;
        }
        let mut chain = [0usize; MAX_HIER_DEPTH];
        let dlen = self.dst_chain(dst.0, &mut chain);
        // Case 1: `at` is a strict ancestor of `dst` below the core —
        // descend into the subtree via the chain edge below `at`.
        for i in 1..dlen {
            if chain[i] == at.0 {
                if !self.chain_up(&chain, i) {
                    return None;
                }
                return self.up_link[chain[i - 1]];
            }
        }
        // Case 2: climb from `at` until the chain (lowest common
        // ancestor), `dst`'s anchor, or `at`'s own anchor.
        let mut cur = at.0;
        let mut first: Option<LinkId> = None;
        while self.depth[cur] > 0 {
            if let Some(pos) = chain[..dlen].iter().position(|&v| v == cur) {
                // LCA strictly below the core: verified climb + verified
                // descent below the meet point.
                if !self.chain_up(&chain, pos) {
                    return None;
                }
                return first;
            }
            let l = self.up_link[cur]?;
            if !self.link_up[l.0] {
                return None;
            }
            first.get_or_insert(l);
            cur = self.up_node[cur] as usize;
        }
        // `cur` is now `at`'s anchor. The descent below the core needs the
        // whole dst chain up.
        if !self.chain_up(&chain, dlen) {
            return None;
        }
        let anchor_dst = self.anchor[dst.0] as usize;
        if cur == anchor_dst {
            // Meeting point is the anchor itself: descend (or, when `at`
            // climbed, the first climb edge already answers).
            return match first {
                Some(l) => Some(l),
                None => self.up_link[chain[dlen - 1]],
            };
        }
        let (ua, ud) = (self.core_idx[cur], self.core_idx[anchor_dst]);
        if ua == NO_ROUTE || ud == NO_ROUTE {
            return None;
        }
        let c = self.core.len();
        let v = self.core_next[ud as usize * c + ua as usize];
        if v == NO_ROUTE {
            return None;
        }
        match first {
            Some(l) => Some(l),
            None => Some(LinkId(v as usize)),
        }
    }

    /// See [`Routing::distance`] — same traversal as
    /// [`HierRouting::next_hop`], counting hops closed-form.
    fn distance(&self, from: NodeId, to: NodeId) -> Option<u16> {
        if from == to {
            return Some(0);
        }
        if from.0 >= self.depth.len() || to.0 >= self.depth.len() {
            return None;
        }
        let mut chain = [0usize; MAX_HIER_DEPTH];
        let dlen = self.dst_chain(to.0, &mut chain);
        for i in 1..dlen {
            if chain[i] == from.0 {
                if !self.chain_up(&chain, i) {
                    return None;
                }
                return Some(i as u16);
            }
        }
        let mut cur = from.0;
        let mut climbed: u16 = 0;
        while self.depth[cur] > 0 {
            if let Some(pos) = chain[..dlen].iter().position(|&v| v == cur) {
                if !self.chain_up(&chain, pos) {
                    return None;
                }
                return Some(climbed + pos as u16);
            }
            let l = self.up_link[cur]?;
            if !self.link_up[l.0] {
                return None;
            }
            climbed += 1;
            cur = self.up_node[cur] as usize;
        }
        if !self.chain_up(&chain, dlen) {
            return None;
        }
        let anchor_dst = self.anchor[to.0] as usize;
        if cur == anchor_dst {
            return Some(climbed + dlen as u16);
        }
        let (ua, ud) = (self.core_idx[cur], self.core_idx[anchor_dst]);
        if ua == NO_ROUTE || ud == NO_ROUTE {
            return None;
        }
        let c = self.core.len();
        let d = self.core_dist[ud as usize * c + ua as usize];
        if d == u16::MAX {
            return None;
        }
        Some(climbed + d + dlen as u16)
    }

    /// See [`Routing::tree_contains`]. In a strict hierarchy every live
    /// tree (uplink) edge is in every destination's forwarding tree; a
    /// core link is in `dst`'s tree iff some core node's next hop toward
    /// `dst`'s anchor crosses it.
    fn tree_contains(&self, dst: NodeId, link: LinkId) -> bool {
        if link.0 >= self.link_up.len() || !self.link_up[link.0] {
            return false;
        }
        if self.up_link.iter().flatten().any(|&up| up == link) {
            return true; // live uplink: carried by every reachable tree
        }
        let ud = self.core_idx[self.anchor[dst.0] as usize];
        if ud == NO_ROUTE {
            return false;
        }
        let c = self.core.len();
        (0..c).any(|ui| self.core_next[ud as usize * c + ui] == link.0 as u32)
    }
}

/// u64 words needed to stamp `links` links (at least one, so slicing per
/// destination stays well-defined on linkless topologies).
fn stamp_words(links: usize) -> usize {
    links.div_ceil(64).max(1)
}

/// Set `stamp_row` to the bitset of links appearing in `hops_row` — exactly
/// the edges of this destination's forwarding tree.
fn fill_stamp(hops_row: &[u32], stamp_row: &mut [u64]) {
    stamp_row.fill(0);
    for &h in hops_row {
        if h != NO_ROUTE {
            stamp_row[(h as usize) >> 6] |= 1u64 << (h & 63);
        }
    }
}

/// Dijkstra edge weight for extending a path one hop beyond `u` toward
/// destination `d`: 1, plus the stub-transit penalty when `u` (not the
/// destination itself) is a stub in a topology that distinguishes roles.
/// Must mirror the relaxation in [`bfs_from`] exactly.
#[inline]
fn hop_weight(topo: &Topology, has_transit: bool, u: NodeId, d: usize) -> u32 {
    if u.0 != d && has_transit && topo.nodes[u.0].role == NodeRole::Stub {
        1 + STUB_TRANSIT_PENALTY
    } else {
        1
    }
}

/// Dijkstra from destination `d`, filling that destination's next-hop,
/// distance, and cost rows (all pre-reset to their sentinels). Edge cost is
/// 1, plus [`STUB_TRANSIT_PENALTY`] when the hop would make a stub AS carry
/// third-party traffic. Ties break on `(cost, node id)`, so results are
/// deterministic. The distance row records the hop count of the selected
/// (cost-minimal) path.
fn bfs_from(
    topo: &Topology,
    d: NodeId,
    has_transit: bool,
    hops_row: &mut [u32],
    dist_row: &mut [u16],
    cost_row: &mut [u32],
) {
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    cost_row[d.0] = 0;
    dist_row[d.0] = 0;
    heap.push(Reverse((0, d.0)));
    while let Some(Reverse((cu, ui))) = heap.pop() {
        if cu > cost_row[ui] {
            continue; // stale entry
        }
        let u = NodeId(ui);
        // Cost of extending the path one hop beyond `u`: traffic would
        // then *transit* `u` (unless `u` is the destination itself).
        let transit_penalty = if u != d && has_transit && topo.nodes[ui].role == NodeRole::Stub {
            STUB_TRANSIT_PENALTY
        } else {
            0
        };
        for &lid in &topo.nodes[ui].links {
            if !topo.links[lid.0].up {
                continue; // failed links carry nothing
            }
            let v = topo.links[lid.0].other(u);
            let nc = cu.saturating_add(1).saturating_add(transit_penalty);
            if nc < cost_row[v.0] {
                cost_row[v.0] = nc;
                dist_row[v.0] = dist_row[ui] + 1;
                // From v, the way toward d is the link back to u.
                hops_row[v.0] = lid.0 as u32;
                heap.push(Reverse((nc, v.0)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn line_routes_are_sequential() {
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        assert_eq!(r.distance(NodeId(0), NodeId(4)), Some(4));
        let p = r.path(&topo, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn self_route_is_none() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(r.distance(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn star_all_pairs_via_hub() {
        let topo = Topology::star(5);
        let r = Routing::compute(&topo);
        for i in 1..=5 {
            for j in 1..=5 {
                if i != j {
                    assert_eq!(r.distance(NodeId(i), NodeId(j)), Some(2));
                    assert!(r.path_contains(&topo, NodeId(i), NodeId(j), NodeId(0)));
                }
            }
        }
    }

    #[test]
    fn disconnected_has_no_route() {
        let mut topo = Topology::line(2);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(0), lonely), None);
        assert_eq!(r.distance(NodeId(0), lonely), None);
    }

    #[test]
    fn paths_are_shortest_on_ba() {
        let topo = Topology::barabasi_albert(120, 2, 0.1, 17);
        let r = Routing::compute(&topo);
        // Spot-check: path length equals reported distance.
        for (from, to) in [(0usize, 119usize), (5, 80), (33, 34)] {
            let d = r.distance(NodeId(from), NodeId(to)).unwrap() as usize;
            let p = r.path(&topo, NodeId(from), NodeId(to)).unwrap();
            assert_eq!(p.len(), d + 1);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let topo = Topology::barabasi_albert(80, 2, 0.1, 23);
        let a = Routing::compute(&topo);
        let b = Routing::compute(&topo);
        assert_eq!(a.next_hop, b.next_hop);
    }

    #[test]
    fn enters_via_edge_cases() {
        // Line 0-1-2-3-4.
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        // Mid-path: 0→4 enters 2 from 1.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(2)),
            Some(NodeId(1))
        );
        // src == at: the path's first node has no entering neighbour.
        assert_eq!(r.enters_via(&topo, NodeId(2), NodeId(4), NodeId(2)), None);
        // at == dst: the last hop still enters via its neighbour.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(4)),
            Some(NodeId(3))
        );
        // at off-path: 0→2 never touches 4.
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(4)), None);
        // src == dst: empty path contains no entry point.
        assert_eq!(r.enters_via(&topo, NodeId(3), NodeId(3), NodeId(2)), None);
    }

    #[test]
    fn enters_via_unreachable_dst() {
        let mut topo = Topology::line(3);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.enters_via(&topo, NodeId(0), lonely, NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, lonely, NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn enters_via_out_of_range_nodes() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        // Spoofed sources can name addresses outside the topology entirely.
        assert_eq!(r.enters_via(&topo, NodeId(99), NodeId(2), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(99), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(99)), None);
    }

    #[test]
    fn epoch_roundtrip() {
        let topo = Topology::line(3);
        let mut r = Routing::compute(&topo);
        assert_eq!(r.epoch(), 0, "fresh tables start at generation 0");
        r.set_epoch(7);
        assert_eq!(r.epoch(), 7);
    }

    #[test]
    fn next_hop_moves_closer() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 29);
        let r = Routing::compute(&topo);
        for u in 0..topo.n() {
            let dst = NodeId((u + 37) % topo.n());
            if NodeId(u) == dst {
                continue;
            }
            let l = r.next_hop(NodeId(u), dst).unwrap();
            let v = topo.links[l.0].other(NodeId(u));
            assert_eq!(
                r.distance(v, dst).unwrap() + 1,
                r.distance(NodeId(u), dst).unwrap()
            );
        }
    }

    #[test]
    fn stamps_cover_exactly_the_tree_links() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 31);
        let r = Routing::compute(&topo);
        for d in 0..topo.n() {
            // A link is stamped iff some node's next hop toward d uses it.
            let mut used = vec![false; topo.links.len()];
            for u in 0..topo.n() {
                if let Some(l) = r.next_hop(NodeId(u), NodeId(d)) {
                    used[l.0] = true;
                }
            }
            for (l, &u) in used.iter().enumerate() {
                assert_eq!(r.tree_contains(NodeId(d), LinkId(l)), u, "d={d} l={l}");
            }
        }
    }

    #[test]
    fn flip_down_and_up_matches_cold_recompute() {
        let mut topo = Topology::barabasi_albert(60, 2, 0.1, 41);
        let mut r = Routing::compute(&topo);
        for lid in [3usize, 17, 44, 80] {
            let lid = lid % topo.links.len();
            topo.links[lid].up = false;
            r.apply_link_flip(&topo, LinkId(lid));
            assert!(
                r.tables_match(&Routing::compute(&topo)),
                "down flip of link {lid} diverged"
            );
            topo.links[lid].up = true;
            r.apply_link_flip(&topo, LinkId(lid));
            assert!(
                r.tables_match(&Routing::compute(&topo)),
                "up flip of link {lid} diverged"
            );
        }
        assert_eq!(r.epoch(), 8, "each flip bumps the epoch once");
    }

    #[test]
    fn flip_reports_global_damage_as_full_rebuild() {
        // Line 0-1-2-3-4-5: every destination's tree spans all nodes, so
        // the end link 4-5 is in every tree (node 5 exits through it). Its
        // failure damages everything: the flip must fall back to a full
        // rebuild and still match a cold recompute. Restoring it likewise
        // changes every destination (5 becomes reachable / reaches all).
        let mut topo = Topology::line(6);
        let mut r = Routing::compute(&topo);
        let last = topo.links.len() - 1;
        topo.links[last].up = false;
        let out = r.apply_link_flip(&topo, LinkId(last));
        assert!(out.full, "spanning-tree link damages every destination");
        assert!(r.tables_match(&Routing::compute(&topo)));

        topo.links[last].up = true;
        let out = r.apply_link_flip(&topo, LinkId(last));
        assert!(out.full, "reattaching a node touches every tree");
        assert!(r.tables_match(&Routing::compute(&topo)));
    }

    /// Hub-and-spoke star plus one redundant leaf-leaf shortcut: the
    /// shortcut only appears in the two leaf destinations' trees, so its
    /// flips must splice exactly those two rows.
    fn star_with_shortcut() -> (Topology, LinkId) {
        let mut topo = Topology::star(5);
        let chord = topo
            .connect(NodeId(1), NodeId(2), crate::link::LinkProfile::access())
            .expect("leaves 1 and 2 start unconnected");
        (topo, chord)
    }

    #[test]
    fn redundant_link_flip_is_incremental() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        assert!(r.tree_contains(NodeId(1), chord));
        assert!(!r.tree_contains(NodeId(3), chord));

        topo.links[chord.0].up = false;
        let out = r.apply_link_flip(&topo, chord);
        assert!(!out.full, "shortcut removal should splice incrementally");
        assert_eq!(out.trees_recomputed, 2, "only the two leaf dsts change");
        assert!(r.tables_match(&Routing::compute(&topo)));

        topo.links[chord.0].up = true;
        let out = r.apply_link_flip(&topo, chord);
        assert!(!out.full, "shortcut restore should splice incrementally");
        assert_eq!(out.trees_recomputed, 2);
        assert!(r.tables_match(&Routing::compute(&topo)));
    }

    #[test]
    fn delta_history_reports_damage_precisely() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        assert_eq!(r.dsts_invalidated_since(0), Some(vec![]));

        topo.links[chord.0].up = false;
        let out = r.apply_link_flip(&topo, chord);
        let dsts = r.dsts_invalidated_since(0).expect("delta recorded");
        assert_eq!(dsts.len(), out.trees_recomputed);
        assert_eq!(dsts, vec![NodeId(1), NodeId(2)]);
        // The dead link left the spliced trees.
        for d in &dsts {
            assert!(!r.tree_contains(*d, chord));
        }

        // A manual epoch tag wipes the history: precise answers are gone.
        r.set_epoch(r.epoch() + 1);
        assert_eq!(r.dsts_invalidated_since(0), None);
        // And a consumer from a "future" epoch (stale table swap) gets None.
        assert_eq!(r.dsts_invalidated_since(r.epoch() + 5), None);
    }

    /// A transit-stub topology plus its role-identical dense twin (the
    /// same graph with the hierarchy metadata stripped, forcing the dense
    /// backend).
    fn hier_and_dense_twin() -> (Topology, Routing, Routing) {
        let topo = Topology::transit_stub(6, 3, 2, 19);
        let r_hier = Routing::compute(&topo);
        let mut flat = topo.clone();
        flat.hierarchy = None;
        let r_dense = Routing::compute(&flat);
        (topo, r_hier, r_dense)
    }

    #[test]
    fn hier_backend_selected_by_metadata() {
        let (_, r_hier, r_dense) = hier_and_dense_twin();
        assert!(r_hier.is_hierarchical());
        assert!(!r_dense.is_hierarchical());
    }

    #[test]
    fn hier_distances_match_dense_all_pairs() {
        let (_, r_hier, r_dense) = hier_and_dense_twin();
        let n = r_hier.n();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    r_hier.distance(NodeId(u), NodeId(v)),
                    r_dense.distance(NodeId(u), NodeId(v)),
                    "distance({u},{v})"
                );
            }
        }
    }

    #[test]
    fn hier_paths_are_consistent_and_shortest() {
        // Walking next_hop must terminate at the destination in exactly
        // `distance` hops, for every pair.
        let (topo, r_hier, _) = hier_and_dense_twin();
        let n = r_hier.n();
        for u in 0..n {
            for v in 0..n {
                let d = r_hier.distance(NodeId(u), NodeId(v)).unwrap() as usize;
                let p = r_hier.path(&topo, NodeId(u), NodeId(v)).unwrap();
                assert_eq!(p.len(), d + 1, "path({u},{v})");
            }
        }
    }

    #[test]
    fn hier_enters_via_matches_dense() {
        let (topo, r_hier, r_dense) = hier_and_dense_twin();
        let mut flat = topo.clone();
        flat.hierarchy = None;
        let n = r_hier.n();
        // enters_via is next-hop-walk-derived; with identical walks the
        // answers agree everywhere. Sample the full cube coarsely.
        for src in (0..n).step_by(3) {
            for dst in (0..n).step_by(5) {
                for at in (0..n).step_by(7) {
                    assert_eq!(
                        r_hier.enters_via(&topo, NodeId(src), NodeId(dst), NodeId(at)),
                        r_dense.enters_via(&flat, NodeId(src), NodeId(dst), NodeId(at)),
                        "enters_via({src},{dst},{at})"
                    );
                }
            }
        }
    }

    #[test]
    fn hier_uplink_failure_cuts_subtree_both_ways() {
        let (mut topo, mut r, _) = hier_and_dense_twin();
        // Find a stub router (depth-1 node): its uplink is its link to a
        // transit node.
        let h = topo.hierarchy.clone().unwrap();
        let stub = (0..topo.n())
            .find(|&i| {
                h.up_link[i].is_some_and(|l| {
                    let far = topo.links[l.0].other(NodeId(i));
                    h.up_link[far.0].is_none()
                })
            })
            .unwrap();
        let up = h.up_link[stub].unwrap();
        topo.links[up.0].up = false;
        let out = r.apply_link_flip(&topo, up);
        assert!(out.full, "hier flips are conservatively full");
        // The stub and everything under it is unreachable from the core...
        assert_eq!(r.next_hop(h.core[0], NodeId(stub)), None);
        assert_eq!(r.distance(h.core[0], NodeId(stub)), None);
        // ...and cannot reach out.
        assert_eq!(r.next_hop(NodeId(stub), h.core[0]), None);
        // But hosts under the stub still reach the stub itself.
        if let Some(host) = (0..topo.n()).find(|&i| {
            h.up_link[i].is_some_and(|l| topo.links[l.0].other(NodeId(i)) == NodeId(stub))
        }) {
            assert_eq!(r.distance(NodeId(host), NodeId(stub)), Some(1));
        }
        // Restoring heals it.
        topo.links[up.0].up = true;
        r.apply_link_flip(&topo, up);
        assert!(r.distance(h.core[0], NodeId(stub)).is_some());
    }

    #[test]
    fn hier_core_flip_reroutes_and_subscribers_refresh() {
        let (mut topo, mut r, _) = hier_and_dense_twin();
        let h = topo.hierarchy.clone().unwrap();
        // Fail one core ring link; the chords keep the core connected in
        // most seeds — all core pairs must still resolve or both sides
        // agree on unreachability via a fresh compute.
        let core_link = (0..topo.links.len())
            .find(|&l| {
                let (a, b) = (topo.links[l].a, topo.links[l].b);
                h.up_link[a.0].is_none() && h.up_link[b.0].is_none()
            })
            .unwrap();
        let before_epoch = r.epoch();
        topo.links[core_link].up = false;
        r.apply_link_flip(&topo, LinkId(core_link));
        assert_eq!(r.epoch(), before_epoch + 1);
        // Delta history refuses precision: subscribers must refresh.
        assert_eq!(r.dsts_invalidated_since(before_epoch), None);
        // The incremental flip equals a cold recompute on the flipped topo.
        assert!(r.tables_match(&Routing::compute(&topo)));
    }

    #[test]
    fn hier_scales_linearly_in_memory() {
        // 20k-node topology: dense tables would be 20k² ≈ 400M entries;
        // the hierarchical backend must build fast and answer correctly.
        let topo = Topology::transit_stub_at_least(20_000, 5);
        let r = Routing::compute(&topo);
        assert!(r.is_hierarchical());
        let h = topo.hierarchy.as_ref().unwrap();
        let (host, core) = (NodeId(topo.n() - 1), h.core[0]);
        let d = r.distance(host, core).unwrap();
        assert!(d >= 2, "host sits two tiers below the core");
        let p = r.path(&topo, host, core).unwrap();
        assert_eq!(p.len(), d as usize + 1);
    }

    #[test]
    fn delta_history_is_bounded() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        for _ in 0..2 * DELTA_HISTORY {
            topo.links[chord.0].up = !topo.links[chord.0].up;
            r.apply_link_flip(&topo, chord);
        }
        // Recent windows answer precisely; ancient ones fall off the cap.
        assert!(r.dsts_invalidated_since(r.epoch() - 4).is_some());
        assert_eq!(r.dsts_invalidated_since(0), None);
    }
}
