//! SPIE — hash-based IP traceback (Snoeren et al., Sigcomm 2001), cited in
//! Sec. 4.4 as a service the TCS could host ("storing a backlog of packet
//! hashes").
//!
//! Every participating router inserts a digest of each forwarded packet
//! into a time-windowed Bloom filter. Given one attack packet (digest +
//! arrival time), the victim's query walks the topology outward from
//! itself: a neighbour whose filter contains the digest extends the path.
//! This standalone baseline complements the `DigestBacklog` device module,
//! which offers the same capability through the TCS.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_device::support::Bloom;
use dtcs_device::view::digest_packet;
use dtcs_netsim::{
    AgentCtx, LinkId, NodeAgent, NodeId, Packet, SimDuration, SimTime, Simulator, Topology, Verdict,
};

/// One router's digest history.
#[derive(Clone, Debug, Default)]
pub struct SpieState {
    /// `(window start, filter)` pairs, oldest first.
    pub windows: Vec<(SimTime, Bloom)>,
    /// Packets digested.
    pub digested: u64,
}

impl SpieState {
    /// Did this router see `digest` in a window overlapping `[from, to]`?
    pub fn saw(&self, digest: u64, from: SimTime, to: SimTime, window: SimDuration) -> bool {
        self.windows.iter().any(|(start, bloom)| {
            let end = *start + window;
            *start <= to && end >= from && bloom.contains(digest)
        })
    }
}

/// Shared handle to one router's SPIE state.
pub type SpieHandle = Arc<Mutex<SpieState>>;

/// SPIE configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpieConfig {
    /// Digest window length.
    pub window: SimDuration,
    /// Windows retained.
    pub retain: usize,
    /// Bloom bits per window.
    pub bits: u32,
    /// Hash probes per insertion.
    pub hashes: u8,
}

impl Default for SpieConfig {
    fn default() -> Self {
        SpieConfig {
            window: SimDuration::from_secs(1),
            retain: 30,
            bits: 1 << 18,
            hashes: 4,
        }
    }
}

/// Router-side digesting agent.
pub struct SpieAgent {
    cfg: SpieConfig,
    state: SpieHandle,
    current_start: SimTime,
    started: bool,
}

impl SpieAgent {
    /// New agent with shared state.
    pub fn new(cfg: SpieConfig) -> (SpieAgent, SpieHandle) {
        let state: SpieHandle = Arc::new(Mutex::new(SpieState::default()));
        (
            SpieAgent {
                cfg,
                state: state.clone(),
                current_start: SimTime::ZERO,
                started: false,
            },
            state,
        )
    }
}

impl NodeAgent for SpieAgent {
    fn name(&self) -> &'static str {
        "spie"
    }

    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        let w = self.cfg.window.as_nanos().max(1);
        let start = SimTime((ctx.now.as_nanos() / w) * w);
        let mut st = self.state.lock();
        if !self.started || start > self.current_start {
            self.started = true;
            self.current_start = start;
            st.windows
                .push((start, Bloom::new(self.cfg.bits, self.cfg.hashes)));
            while st.windows.len() > self.cfg.retain {
                st.windows.remove(0);
            }
        }
        let digest = digest_packet(pkt);
        if let Some((_, bloom)) = st.windows.last_mut() {
            bloom.insert(digest);
        }
        st.digested += 1;
        Verdict::Forward
    }
}

/// A deployed SPIE fleet: per-node handles plus the config for queries.
pub struct SpieFleet {
    /// Configuration used by every agent.
    pub cfg: SpieConfig,
    /// Per-node state handles (nodes without SPIE are absent).
    pub handles: BTreeMap<NodeId, SpieHandle>,
}

impl SpieFleet {
    /// Deploy SPIE on the given nodes.
    pub fn deploy(sim: &mut Simulator, nodes: &[NodeId], cfg: SpieConfig) -> SpieFleet {
        let mut handles = BTreeMap::new();
        for &n in nodes {
            let (agent, h) = SpieAgent::new(cfg);
            sim.add_agent(n, Box::new(agent));
            handles.insert(n, h);
        }
        SpieFleet { cfg, handles }
    }

    /// Deploy everywhere.
    pub fn deploy_everywhere(sim: &mut Simulator, cfg: SpieConfig) -> SpieFleet {
        let nodes: Vec<NodeId> = (0..sim.topo.n()).map(NodeId).collect();
        Self::deploy(sim, &nodes, cfg)
    }

    fn saw(&self, node: NodeId, digest: u64, from: SimTime, to: SimTime) -> bool {
        match self.handles.get(&node) {
            Some(h) => h.lock().saw(digest, from, to, self.cfg.window),
            None => false,
        }
    }

    /// Trace one packet (by digest) backwards from `victim_node`: breadth-
    /// first over routers whose backlog contains the digest. Returns the
    /// set of *farthest* routers reached — the apparent origin ASes.
    ///
    /// `slack` widens the query window to absorb propagation delay between
    /// routers.
    pub fn trace(
        &self,
        topo: &Topology,
        victim_node: NodeId,
        digest: u64,
        seen_at: SimTime,
        slack: SimDuration,
    ) -> Vec<NodeId> {
        let from = SimTime(seen_at.as_nanos().saturating_sub(slack.as_nanos()));
        let to = seen_at + slack;
        if !self.saw(victim_node, digest, from, to) {
            return Vec::new();
        }
        let mut visited: BTreeMap<NodeId, usize> = BTreeMap::new();
        visited.insert(victim_node, 0);
        let mut frontier = vec![victim_node];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                let du = visited[&u];
                for (w, _) in topo.neighbours(u) {
                    if visited.contains_key(&w) {
                        continue;
                    }
                    if self.saw(w, digest, from, to) {
                        visited.insert(w, du + 1);
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        let max_d = visited.values().copied().max().unwrap_or(0);
        if max_d == 0 {
            return vec![victim_node];
        }
        visited
            .into_iter()
            .filter(|&(_, d)| d == max_d)
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, PacketBuilder, Proto, Topology, TrafficClass};

    #[test]
    fn trace_follows_the_true_path_despite_spoofing() {
        let topo = Topology::line(6);
        let mut sim = Simulator::new(topo, 1);
        let fleet = SpieFleet::deploy_everywhere(&mut sim, SpieConfig::default());
        let victim = Addr::new(NodeId(5), 1);
        sim.install_app(victim, Box::new(dtcs_netsim::SinkApp));
        // One spoofed packet from node 0 with a distinctive tag.
        let b = PacketBuilder::new(
            Addr::new(NodeId(3), 9), // spoofed: claims node 3
            victim,
            Proto::Udp,
            TrafficClass::AttackDirect,
        )
        .size(100)
        .tag(0xFEED);
        sim.emit_now(NodeId(0), b);
        sim.run_until(SimTime::from_secs(1));
        // Reconstruct the digest of the packet as the victim saw it.
        let pkt = b.build(0, NodeId(0));
        let digest = digest_packet(&pkt);
        let sources = fleet.trace(
            &sim.topo,
            NodeId(5),
            digest,
            SimTime::from_millis(100),
            SimDuration::from_secs(1),
        );
        assert_eq!(
            sources,
            vec![NodeId(0)],
            "trace must reach the true origin, not the spoofed node 3"
        );
    }

    #[test]
    fn unknown_digest_traces_to_nothing() {
        let topo = Topology::line(4);
        let mut sim = Simulator::new(topo, 1);
        let fleet = SpieFleet::deploy_everywhere(&mut sim, SpieConfig::default());
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                Addr::new(NodeId(3), 1),
                Proto::Udp,
                TrafficClass::Background,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        let sources = fleet.trace(
            &sim.topo,
            NodeId(3),
            0xDEAD_BEEF_0BAD_F00D,
            SimTime::from_millis(50),
            SimDuration::from_secs(1),
        );
        assert!(sources.is_empty());
    }

    #[test]
    fn partial_deployment_truncates_the_trace() {
        let topo = Topology::line(6);
        let mut sim = Simulator::new(topo, 1);
        // SPIE only on nodes 3..=5 — the trace cannot cross node 2.
        let nodes: Vec<NodeId> = (3..6).map(NodeId).collect();
        let fleet = SpieFleet::deploy(&mut sim, &nodes, SpieConfig::default());
        let victim = Addr::new(NodeId(5), 1);
        sim.install_app(victim, Box::new(dtcs_netsim::SinkApp));
        let b = PacketBuilder::new(
            Addr::new(NodeId(1), 9),
            victim,
            Proto::Udp,
            TrafficClass::AttackDirect,
        )
        .tag(0xAB);
        sim.emit_now(NodeId(0), b);
        sim.run_until(SimTime::from_secs(1));
        let digest = digest_packet(&b.build(0, NodeId(0)));
        let sources = fleet.trace(
            &sim.topo,
            NodeId(5),
            digest,
            SimTime::from_millis(100),
            SimDuration::from_secs(1),
        );
        assert_eq!(sources, vec![NodeId(3)], "trace stops at the SPIE frontier");
    }
}
