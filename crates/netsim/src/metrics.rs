//! Unified metrics registry snapshot (DESIGN.md §6.9).
//!
//! Engine counters used to surface only as scattered print-only `health:`
//! lines in experiment reports. A [`MetricsSnapshot`] collects every
//! scalar [`Stats`] counter — wheel/route health, control-plane fault
//! counters, fluid-layer counters — plus any caller-appended counters
//! (e.g. the `control` crate's `CpStats`) into one fixed-order registry
//! exportable as deterministic JSON and Prometheus text exposition.
//! The snapshot is observation-only and never feeds golden report JSON;
//! `health:` lines are now formatted *from* it, making the snapshot the
//! single source of truth.

use std::fmt::Write as _;

use crate::stats::Stats;

/// A single metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous or derived value.
    Gauge(f64),
}

/// One named metric with a help string.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name (`snake_case`, no prefix; exporters add `dtcs_`).
    pub name: &'static str,
    /// The value.
    pub value: MetricValue,
    /// One-line help text for the Prometheus exposition.
    pub help: &'static str,
}

/// Fixed-order registry of metrics captured at one instant.
///
/// Order is insertion order and [`MetricsSnapshot::from_stats`] inserts
/// in [`Stats`] field-declaration order, so two snapshots of equal state
/// serialise byte-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Snapshot every scalar counter of `stats`, in field-declaration
    /// order, plus the derived wheel cascade rate.
    pub fn from_stats(stats: &Stats) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        let (mut sent, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
        for c in &stats.per_class {
            sent += c.sent_pkts;
            delivered += c.delivered_pkts;
            dropped += c.dropped_pkts;
        }
        s.push_counter("packets_sent", sent, "Packets emitted, all classes");
        s.push_counter(
            "packets_delivered",
            delivered,
            "Packets delivered to an application, all classes",
        );
        s.push_counter("packets_dropped", dropped, "Packets dropped, all classes");
        s.push_counter("events", stats.events, "Simulator events processed");
        s.push_counter(
            "past_events_clamped",
            stats.past_events_clamped,
            "Events scheduled in the past and clamped (always 0 when healthy)",
        );
        s.push_counter(
            "route_link_flips",
            stats.route_link_flips,
            "Link state flips applied by failure injection",
        );
        s.push_counter(
            "route_full_recomputes",
            stats.route_full_recomputes,
            "Flips that fell back to a whole-table route recompute",
        );
        s.push_counter(
            "route_trees_recomputed",
            stats.route_trees_recomputed,
            "Destination trees re-derived across all flips",
        );
        s.push_counter(
            "wheel_slot_occupancy_hwm",
            stats.wheel_slot_occupancy_hwm,
            "Timing wheel: deepest any single slot got",
        );
        s.push_counter(
            "wheel_len_hwm",
            stats.wheel_len_hwm,
            "Timing wheel: most events pending at once",
        );
        s.push_counter(
            "wheel_cascade_moves",
            stats.wheel_cascade_moves,
            "Timing wheel: entries refiled by cascades",
        );
        s.push_gauge(
            "wheel_cascades_per_event",
            stats.wheel_cascades_per_event(),
            "Mean cascade refiles per processed event",
        );
        s.push_counter(
            "cp_msgs",
            stats.cp_msgs,
            "Control messages pushed through the funnel",
        );
        s.push_counter(
            "cp_fault_dropped",
            stats.cp_fault_dropped,
            "Control messages dropped by the fault plane's loss hash",
        );
        s.push_counter(
            "cp_fault_duplicated",
            stats.cp_fault_duplicated,
            "Control messages delivered twice by the fault plane",
        );
        s.push_counter(
            "cp_fault_jittered",
            stats.cp_fault_jittered,
            "Control messages whose delivery was delay-jittered",
        );
        s.push_counter(
            "cp_outage_dropped",
            stats.cp_outage_dropped,
            "Control messages swallowed by an outage window",
        );
        s.push_counter(
            "cp_partition_dropped",
            stats.cp_partition_dropped,
            "Control messages swallowed by a partition window",
        );
        s.push_counter(
            "node_crashes",
            stats.node_crashes,
            "Node crashes executed (fault-plane windows plus ad-hoc)",
        );
        s.push_counter(
            "fluid_aggregates",
            stats.fluid_aggregates,
            "Fluid aggregates installed over the run",
        );
        s.push_counter(
            "fluid_ticks",
            stats.fluid_ticks,
            "Fluid admission rounds executed",
        );
        s.push_counter(
            "fluid_recomputes",
            stats.fluid_recomputes,
            "Aggregate path recomputations",
        );
        s.push_counter(
            "fluid_epoch_invalidations",
            stats.fluid_epoch_invalidations,
            "Route/filter epoch changes invalidating cached aggregate state",
        );
        s.push_counter(
            "fluid_boundary_conversions",
            stats.fluid_boundary_conversions,
            "Demands materialized as discrete emitters at the fluid boundary",
        );
        s
    }

    /// Append a counter.
    pub fn push_counter(&mut self, name: &'static str, v: u64, help: &'static str) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Counter(v),
            help,
        });
    }

    /// Append a gauge.
    pub fn push_gauge(&mut self, name: &'static str, v: f64, help: &'static str) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Gauge(v),
            help,
        });
    }

    /// All entries, insertion order.
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Look up a metric's value as `f64` (counters widen losslessly up to
    /// 2^53). None if no entry has that name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| match e.value {
                MetricValue::Counter(v) => v as f64,
                MetricValue::Gauge(v) => v,
            })
    }

    /// Serialise as one fixed-order JSON object. Counters emit as
    /// integers; gauges emit with enough digits to round-trip.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 32 + 2);
        out.push('{');
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", e.name);
            match e.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    // {:?} prints the shortest representation that
                    // round-trips, and always includes a decimal point or
                    // exponent so the JSON type stays visibly float.
                    let _ = write!(out, "{v:?}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Serialise in Prometheus text exposition format, `dtcs_`-prefixed,
    /// with `# HELP`/`# TYPE` headers per metric.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96);
        for e in &self.entries {
            let _ = writeln!(out, "# HELP dtcs_{} {}", e.name, e.help);
            let kind = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
            };
            let _ = writeln!(out, "# TYPE dtcs_{} {kind}", e.name);
            match e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "dtcs_{} {v}", e.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "dtcs_{} {v:?}", e.name);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_is_fixed_order_and_deterministic() {
        let mut st = Stats::new();
        st.events = 42;
        st.cp_msgs = 7;
        st.wheel_cascade_moves = 21;
        let a = MetricsSnapshot::from_stats(&st);
        let b = MetricsSnapshot::from_stats(&st);
        assert_eq!(a.to_json_string(), b.to_json_string());
        let json = a.to_json_string();
        // Counters serialize as integers, in Stats declaration order.
        let ev = json.find("\"events\":42").expect("events present");
        let cp = json.find("\"cp_msgs\":7").expect("cp_msgs present");
        assert!(ev < cp, "fixed field order follows Stats declaration");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(a.get("events"), Some(42.0));
        assert_eq!(a.get("wheel_cascades_per_event"), Some(0.5));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn appended_counters_extend_the_registry() {
        let mut s = MetricsSnapshot::from_stats(&Stats::new());
        let base = s.entries().len();
        s.push_counter("cp_retransmits", 3, "Messages retransmitted");
        assert_eq!(s.entries().len(), base + 1);
        assert_eq!(s.get("cp_retransmits"), Some(3.0));
        assert!(s.to_json_string().ends_with("\"cp_retransmits\":3}"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut s = MetricsSnapshot::new();
        s.push_counter("cp_msgs", 9, "Control messages pushed");
        s.push_gauge("rate", 0.25, "A rate");
        let text = s.to_prometheus();
        assert!(text.contains("# HELP dtcs_cp_msgs Control messages pushed\n"));
        assert!(text.contains("# TYPE dtcs_cp_msgs counter\n"));
        assert!(text.contains("\ndtcs_cp_msgs 9\n") || text.starts_with("# HELP"));
        assert!(text.contains("dtcs_cp_msgs 9\n"));
        assert!(text.contains("# TYPE dtcs_rate gauge\n"));
        assert!(text.contains("dtcs_rate 0.25\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn gauges_round_trip_through_json() {
        let mut s = MetricsSnapshot::new();
        s.push_gauge("g", 1.0 / 3.0, "a third");
        let json = s.to_json_string();
        // {:?} on f64 prints the shortest round-tripping decimal, so the
        // emitted text parses back to the exact same bits.
        assert_eq!(json, format!("{{\"g\":{:?}}}", 1.0 / 3.0));
        let text: f64 = json
            .trim_start_matches("{\"g\":")
            .trim_end_matches('}')
            .parse()
            .unwrap();
        assert_eq!(text, 1.0 / 3.0);
    }
}
