//! Routing: all-pairs next-hop tables.
//!
//! Shortest paths with deterministic tie-breaking stand in for BGP, with
//! one policy nod: paths that would *transit* a stub AS pay a heavy
//! penalty, because in the real Internet a customer AS does not carry
//! third-party traffic (valley-free routing). Without this, multihomed
//! stubs land on shortest paths and ingress filters at their providers
//! falsely drop legitimate transit traffic. The penalty (rather than a
//! hard ban) keeps degenerate test topologies — lines, all-stub graphs —
//! connected. The recorded distance is the *hop count* of the chosen
//! path, so hop-based metrics stay meaningful.
//!
//! Tables are computed with one Dijkstra per destination, parallelised
//! across destinations with rayon (outer-loop data parallelism per the
//! HPC guides; each run is independent and writes only its own row).

use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::node::{LinkId, NodeId, NodeRole};
use crate::topology::Topology;

/// Cost added for each stub AS a path transits (valley avoidance).
const STUB_TRANSIT_PENALTY: u32 = 1000;

/// Sentinel for "no route" in the flat next-hop table.
const NO_ROUTE: u32 = u32::MAX;

/// All-pairs next-hop forwarding state.
#[derive(Clone, Debug)]
pub struct Routing {
    n: usize,
    /// Generation counter for cache invalidation: consumers that memoize
    /// answers derived from this table (e.g. [`crate::oracle::RouteOracle`])
    /// compare epochs and drop their caches on mismatch. Freshly computed
    /// tables start at epoch 0; the simulator's failure injection bumps the
    /// epoch every time it swaps in a recomputed table.
    epoch: u64,
    /// `next_hop[d * n + u]` = link to take from node `u` toward destination
    /// node `d` (`NO_ROUTE` if unreachable or `u == d`).
    next_hop: Vec<u32>,
    /// `dist[d * n + u]` = hop distance from `u` to `d` (`u16::MAX` if
    /// unreachable).
    dist: Vec<u16>,
}

impl Routing {
    /// Compute routing tables for a topology.
    pub fn compute(topo: &Topology) -> Routing {
        let n = topo.n();
        let mut next_hop = vec![NO_ROUTE; n * n];
        let mut dist = vec![u16::MAX; n * n];

        next_hop
            .par_chunks_mut(n)
            .zip(dist.par_chunks_mut(n))
            .enumerate()
            .for_each(|(d, (hops_row, dist_row))| {
                bfs_from(topo, NodeId(d), hops_row, dist_row);
            });

        Routing {
            n,
            epoch: 0,
            next_hop,
            dist,
        }
    }

    /// This table's generation (see the `epoch` field).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tag this table with a generation, typically `old.epoch() + 1` when
    /// swapping in a recompute after a topology change.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Link to take from `at` toward destination node `dst`, or `None` when
    /// `at == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        let v = self.next_hop[dst.0 * self.n + at.0];
        if v == NO_ROUTE {
            None
        } else {
            Some(LinkId(v as usize))
        }
    }

    /// Hop distance from `from` to `to`; `None` if unreachable.
    #[inline]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u16> {
        let d = self.dist[to.0 * self.n + from.0];
        if d == u16::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// The node sequence of the path from `from` to `to` (inclusive), or
    /// `None` if unreachable.
    pub fn path(&self, topo: &Topology, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let link = self.next_hop(at, to)?;
            at = topo.links[link.0].other(at);
            path.push(at);
            if path.len() > self.n + 1 {
                return None; // defensive: inconsistent table
            }
        }
        Some(path)
    }

    /// Does the shortest path from `from` to `to` traverse `via`?
    pub fn path_contains(&self, topo: &Topology, from: NodeId, to: NodeId, via: NodeId) -> bool {
        match self.path(topo, from, to) {
            Some(p) => p.contains(&via),
            None => false,
        }
    }

    /// Route-consistency check (Park & Lee route-based filtering): on the
    /// forwarding path from `src` to `dst`, which neighbour hands traffic
    /// to `at`? Returns `None` when `at` is not on that path (or is the
    /// path's first node), i.e. when a packet claiming `src` could not
    /// legitimately be entering `at` at all. Out-of-range `src`/`dst`
    /// (addresses outside the topology) also return `None`.
    pub fn enters_via(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        at: NodeId,
    ) -> Option<NodeId> {
        if src.0 >= self.n || dst.0 >= self.n || at.0 >= self.n {
            return None;
        }
        let mut cur = src;
        let mut guard = 0;
        while cur != dst {
            let link = self.next_hop(cur, dst)?;
            let next = topo.links[link.0].other(cur);
            if next == at {
                return Some(cur);
            }
            cur = next;
            guard += 1;
            if guard > self.n {
                return None;
            }
        }
        None
    }

    /// Number of nodes this table was built for.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Dijkstra from destination `d`, filling that destination's next-hop and
/// distance rows. Edge cost is 1, plus [`STUB_TRANSIT_PENALTY`] when the
/// hop would make a stub AS carry third-party traffic. Ties break on
/// `(cost, node id)`, so results are deterministic. The distance row
/// records the hop count of the selected (cost-minimal) path.
fn bfs_from(topo: &Topology, d: NodeId, hops_row: &mut [u32], dist_row: &mut [u16]) {
    // The penalty only applies when the topology distinguishes roles at
    // all; otherwise (all-stub test shapes) plain hop counting applies.
    let has_transit = topo.nodes.iter().any(|n| n.role == NodeRole::Transit);
    let n = topo.n();
    let mut cost = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    cost[d.0] = 0;
    dist_row[d.0] = 0;
    heap.push(Reverse((0, d.0)));
    while let Some(Reverse((cu, ui))) = heap.pop() {
        if cu > cost[ui] {
            continue; // stale entry
        }
        let u = NodeId(ui);
        // Cost of extending the path one hop beyond `u`: traffic would
        // then *transit* `u` (unless `u` is the destination itself).
        let transit_penalty = if u != d && has_transit && topo.nodes[ui].role == NodeRole::Stub {
            STUB_TRANSIT_PENALTY
        } else {
            0
        };
        for &lid in &topo.nodes[ui].links {
            if !topo.links[lid.0].up {
                continue; // failed links carry nothing
            }
            let v = topo.links[lid.0].other(u);
            let nc = cu.saturating_add(1).saturating_add(transit_penalty);
            if nc < cost[v.0] {
                cost[v.0] = nc;
                dist_row[v.0] = dist_row[ui] + 1;
                // From v, the way toward d is the link back to u.
                hops_row[v.0] = lid.0 as u32;
                heap.push(Reverse((nc, v.0)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn line_routes_are_sequential() {
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        assert_eq!(r.distance(NodeId(0), NodeId(4)), Some(4));
        let p = r.path(&topo, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn self_route_is_none() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(r.distance(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn star_all_pairs_via_hub() {
        let topo = Topology::star(5);
        let r = Routing::compute(&topo);
        for i in 1..=5 {
            for j in 1..=5 {
                if i != j {
                    assert_eq!(r.distance(NodeId(i), NodeId(j)), Some(2));
                    assert!(r.path_contains(&topo, NodeId(i), NodeId(j), NodeId(0)));
                }
            }
        }
    }

    #[test]
    fn disconnected_has_no_route() {
        let mut topo = Topology::line(2);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(0), lonely), None);
        assert_eq!(r.distance(NodeId(0), lonely), None);
    }

    #[test]
    fn paths_are_shortest_on_ba() {
        let topo = Topology::barabasi_albert(120, 2, 0.1, 17);
        let r = Routing::compute(&topo);
        // Spot-check: path length equals reported distance.
        for (from, to) in [(0usize, 119usize), (5, 80), (33, 34)] {
            let d = r.distance(NodeId(from), NodeId(to)).unwrap() as usize;
            let p = r.path(&topo, NodeId(from), NodeId(to)).unwrap();
            assert_eq!(p.len(), d + 1);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let topo = Topology::barabasi_albert(80, 2, 0.1, 23);
        let a = Routing::compute(&topo);
        let b = Routing::compute(&topo);
        assert_eq!(a.next_hop, b.next_hop);
    }

    #[test]
    fn enters_via_edge_cases() {
        // Line 0-1-2-3-4.
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        // Mid-path: 0→4 enters 2 from 1.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(2)),
            Some(NodeId(1))
        );
        // src == at: the path's first node has no entering neighbour.
        assert_eq!(r.enters_via(&topo, NodeId(2), NodeId(4), NodeId(2)), None);
        // at == dst: the last hop still enters via its neighbour.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(4)),
            Some(NodeId(3))
        );
        // at off-path: 0→2 never touches 4.
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(4)), None);
        // src == dst: empty path contains no entry point.
        assert_eq!(r.enters_via(&topo, NodeId(3), NodeId(3), NodeId(2)), None);
    }

    #[test]
    fn enters_via_unreachable_dst() {
        let mut topo = Topology::line(3);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.enters_via(&topo, NodeId(0), lonely, NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, lonely, NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn enters_via_out_of_range_nodes() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        // Spoofed sources can name addresses outside the topology entirely.
        assert_eq!(r.enters_via(&topo, NodeId(99), NodeId(2), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(99), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(99)), None);
    }

    #[test]
    fn epoch_roundtrip() {
        let topo = Topology::line(3);
        let mut r = Routing::compute(&topo);
        assert_eq!(r.epoch(), 0, "fresh tables start at generation 0");
        r.set_epoch(7);
        assert_eq!(r.epoch(), 7);
    }

    #[test]
    fn next_hop_moves_closer() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 29);
        let r = Routing::compute(&topo);
        for u in 0..topo.n() {
            let dst = NodeId((u + 37) % topo.n());
            if NodeId(u) == dst {
                continue;
            }
            let l = r.next_hop(NodeId(u), dst).unwrap();
            let v = topo.links[l.0].other(NodeId(u));
            assert_eq!(
                r.distance(v, dst).unwrap() + 1,
                r.distance(NodeId(u), dst).unwrap()
            );
        }
    }
}
