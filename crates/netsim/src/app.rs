//! Host applications.
//!
//! Every addressable endpoint (web server, DNS reflector, DDoS agent,
//! victim, legitimate client…) is an [`App`] installed at one [`Addr`].
//! Apps see only delivered packets — everything on the wire is the
//! simulator's business — and react by sending packets and setting timers
//! through the [`AppApi`].

use rand_chacha::ChaCha8Rng;

use crate::addr::Addr;
use crate::agent::Outbox;
use crate::node::NodeId;
use crate::packet::{Packet, PacketBuilder};
use crate::time::{SimDuration, SimTime};

/// What the application did with a delivered packet.
///
/// `Overloaded` models host resource exhaustion (Sec. 2.1 of the paper:
/// "an attacked server's resources are exhausted before its uplink is
/// overloaded") — the packet reached the host but was not served, and is
/// accounted as a [`crate::stats::DropReason::HostOverload`] drop rather
/// than a delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Packet consumed/served; counts as delivered.
    Consumed,
    /// Host out of capacity; counts as a `HostOverload` drop.
    Overloaded,
}

/// Context handed to application callbacks.
pub struct AppApi<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Node hosting this application.
    pub node: NodeId,
    /// Address the application is installed at.
    pub self_addr: Addr,
    /// Deterministic per-simulation RNG (shared; the simulator is
    /// single-threaded).
    pub rng: &'a mut ChaCha8Rng,
    pub(crate) outbox: &'a mut Outbox,
    pub(crate) timers: &'a mut Vec<(SimDuration, u64)>,
}

impl<'a> AppApi<'a> {
    /// Send a packet; it enters the network at this node (and passes any
    /// agents installed there, so local anti-spoofing sees host traffic).
    pub fn send(&mut self, builder: PacketBuilder) {
        self.outbox.sends.push((SimDuration::ZERO, builder));
    }

    /// Send after a delay.
    pub fn send_after(&mut self, delay: SimDuration, builder: PacketBuilder) {
        self.outbox.sends.push((delay, builder));
    }

    /// Arrange for `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }
}

/// A host application bound to one address.
pub trait App: Send {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _api: &mut AppApi<'_>) {}

    /// A packet addressed to this app was delivered.
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition;

    /// A timer set via [`AppApi::set_timer`] fired.
    fn on_timer(&mut self, _api: &mut AppApi<'_>, _token: u64) {}
}

/// An app that ignores everything (sink). Useful as a default listener so
/// traffic to an address is counted as delivered.
#[derive(Default, Debug, Clone, Copy)]
pub struct SinkApp;

impl App for SinkApp {
    fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
        Disposition::Consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{PacketBuilder, Proto, TrafficClass};
    use crate::sim::Simulator;
    use crate::topology::Topology;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// App that fires a delayed packet on start and counts its timer hits.
    struct Delayed {
        peer: Addr,
        ticks: Arc<AtomicU64>,
    }

    impl App for Delayed {
        fn on_start(&mut self, api: &mut AppApi<'_>) {
            let b = PacketBuilder::new(
                api.self_addr,
                self.peer,
                Proto::Udp,
                TrafficClass::Background,
            );
            api.send_after(SimDuration::from_millis(250), b);
            api.set_timer(SimDuration::from_millis(100), 7);
            api.set_timer(SimDuration::from_millis(200), 8);
        }

        fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
            Disposition::Consumed
        }

        fn on_timer(&mut self, api: &mut AppApi<'_>, token: u64) {
            assert!(token == 7 || token == 8);
            assert!(api.now >= SimTime::from_millis(100));
            self.ticks.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn send_after_and_multiple_timers() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let me = Addr::new(NodeId(0), 1);
        let peer = Addr::new(NodeId(1), 1);
        let ticks = Arc::new(AtomicU64::new(0));
        sim.install_app(
            me,
            Box::new(Delayed {
                peer,
                ticks: ticks.clone(),
            }),
        );
        sim.install_app(peer, Box::new(SinkApp));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(ticks.load(Ordering::Relaxed), 2, "both timers fired once");
        let c = sim.stats.per_class[crate::stats::class_index(TrafficClass::Background)];
        assert_eq!(c.delivered_pkts, 1, "delayed send arrived");
    }

    #[test]
    fn sink_app_consumes() {
        let mut sink = SinkApp;
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let a = Addr::new(NodeId(1), 1);
        sim.install_app(a, Box::new(sink));
        sink = SinkApp; // Copy type: still usable
        let _ = sink;
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                a,
                Proto::Udp,
                TrafficClass::Background,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.per_class[crate::stats::class_index(TrafficClass::Background)].delivered_pkts,
            1
        );
    }
}
