//! E13 — Control-plane fault sweep (loss rate × device MTBF).
//!
//! The paper's "filters deployed within seconds, worldwide" claim
//! (Sec. 5.1) is exercised here on the channel the paper never stresses:
//! control messages are dropped, duplicated, and jittered by a seeded
//! [`FaultPlane`](dtcs::netsim::FaultPlane), and devices crash on an MTBF
//! schedule, losing installed services. The retried, idempotent Fig. 4/5
//! protocol plus the NMS anti-entropy sweep must still *converge*: the
//! sweep measures time-to-full-coverage and steady-state coverage per
//! (loss, MTBF) cell, and reconciles protocol-layer retry/dedup counters
//! against the channel's ground-truth drop/dup counts.

use std::sync::{Arc, Mutex as StdMutex};

use parking_lot::Mutex;
use serde::Serialize;

use dtcs::control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserId,
};
use dtcs::netsim::rng::child_seed;
use dtcs::netsim::{
    CpFlightRecorder, FaultConfig, FaultPlane, Outage, Prefix, SimDuration, SimTime, Simulator,
    Topology,
};

use crate::util::{control_metrics, f, fopt, wheel_health, Report, Table};

const SEED: u64 = 13;
/// Crash outage length: long enough to be a real window, short enough
/// that the device is back before the next reconcile sweep.
const CRASH_DOWNTIME_MS: u64 = 300;
/// Anti-entropy sweep period.
const RECONCILE_EVERY_S: u64 = 2;

#[derive(Serialize, Clone)]
struct CellRow {
    loss_pct: f64,
    mtbf_s: Option<u64>,
    crashes: u64,
    t_full_coverage_s: Option<f64>,
    steady_coverage_pct: f64,
    retransmits: u64,
    reinstalls: u64,
    cp_dropped: u64,
    cp_duplicated: u64,
    dedup_hits: u64,
}

/// Deterministic crash schedule: each stub device crashes every ~`mtbf`
/// seconds with a per-node phase offset hashed from the seed, starting
/// after the initial deployment has had time to land.
fn crash_schedule(sim: &Simulator, mtbf_s: u64, horizon_s: u64, seed: u64) -> Vec<Outage> {
    let mut outages = Vec::new();
    for &node in &sim.topo.stub_nodes()[1..] {
        let phase_ms = child_seed(seed, node.0 as u64) % (mtbf_s * 1000);
        let mut at_ms = 5_000 + phase_ms;
        while at_ms + CRASH_DOWNTIME_MS < horizon_s * 1000 {
            outages.push(Outage {
                node,
                from: SimTime::from_millis(at_ms),
                until: SimTime::from_millis(at_ms + CRASH_DOWNTIME_MS),
                crash: true,
            });
            at_ms += mtbf_s * 1000;
        }
    }
    outages
}

struct CellOutcome {
    row: CellRow,
    stats: dtcs::netsim::Stats,
    cp: dtcs::control::CpStats,
}

/// Shared-handle control-trace recorder plus its 1-in-n sampling rate,
/// attached to one designated cell run (`--cp-trace` / the overhead
/// bench). Observation-only: the cell's outcome is identical with or
/// without it.
type CellTrace<'a> = Option<(&'a Arc<StdMutex<CpFlightRecorder>>, u64)>;

fn run_cell(
    loss: f64,
    mtbf_s: Option<u64>,
    quick: bool,
    seed: u64,
    trace: CellTrace,
) -> CellOutcome {
    let (transit, stubs) = if quick { (2, 4) } else { (3, 6) };
    let horizon_s: u64 = if quick { 30 } else { 60 };
    let topo = Topology::transit_stub_multihomed(transit, stubs, 0.2, seed);
    let mut sim = Simulator::new(topo, seed);
    let victim_node = sim.topo.stub_nodes()[0];
    let mut authority = InternetNumberAuthority::new();
    let user_prefix = Prefix::of_node(victim_node);
    authority.allocate(user_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp = ControlPlane::install_with_reconcile(
        &mut sim,
        authority,
        0x5EC,
        tcsp_node,
        authority_node,
        isps,
        SimDuration::from_secs(RECONCILE_EVERY_S),
    );
    let (_user, _record) = cp.add_user(
        &mut sim,
        victim_node,
        vec![user_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    let outages = match mtbf_s {
        Some(m) => crash_schedule(&sim, m, horizon_s, seed),
        None => Vec::new(),
    };
    sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed,
        drop_prob: loss,
        dup_prob: loss / 2.0,
        jitter_max: SimDuration::from_millis(10),
        outages,
        partitions: Vec::new(),
    }));
    if let Some((rec, one_in)) = trace {
        sim.set_cp_trace_sink(Box::new(rec.clone()), one_in);
    }

    // Probe coverage every 250 ms: first instant all devices hold a rule.
    let n = sim.topo.n();
    let probe_devices = cp.devices.clone();
    let first_full: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let mut at_ms = 250;
    while at_ms <= horizon_s * 1000 {
        let devices = probe_devices.clone();
        let hit = first_full.clone();
        sim.schedule(SimTime::from_millis(at_ms), move |sim| {
            let mut slot = hit.lock();
            if slot.is_none() && devices.values().all(|d| d.lock().rule_count > 0) {
                *slot = Some(sim.now().0 / 1_000_000); // ns → ms
            }
        });
        at_ms += 250;
    }
    sim.run_until(SimTime::from_secs(horizon_s));
    if trace.is_some() {
        sim.take_cp_trace_sink();
    }
    crate::util::enforce_run_invariants("e13", &sim.stats);

    let steady = cp.devices_configured() as f64 / n as f64 * 100.0;
    let cs = cp.cp_stats.lock().clone();
    let row = CellRow {
        loss_pct: loss * 100.0,
        mtbf_s,
        crashes: sim.stats.node_crashes,
        t_full_coverage_s: first_full.lock().map(|ms| ms as f64 / 1000.0),
        steady_coverage_pct: steady,
        retransmits: cs.retransmits,
        reinstalls: cs.reconcile_reinstalls,
        cp_dropped: sim.stats.cp_fault_dropped,
        cp_duplicated: sim.stats.cp_fault_duplicated,
        dedup_hits: cs.dup_requests + cs.dup_responses,
    };
    CellOutcome {
        row,
        stats: sim.stats,
        cp: cs,
    }
}

/// Workload hook for the `cp_trace_overhead` Criterion bench: one
/// quick-mode 20%-loss, 15 s-MTBF fault-sweep cell, run with control
/// tracing disabled (`None`) or recording 1-in-`n` transactions into a
/// ring sized never to evict. Returns the engine event count so the
/// bench can assert the workload is identical across arms.
pub fn bench_cell(sampling: Option<u64>) -> u64 {
    match sampling {
        None => run_cell(0.2, Some(15), true, SEED, None).stats.events,
        Some(one_in) => {
            let rec = Arc::new(StdMutex::new(CpFlightRecorder::new(1 << 22)));
            run_cell(0.2, Some(15), true, SEED, Some((&rec, one_in)))
                .stats
                .events
        }
    }
}

/// The (loss, MTBF) grid axes shared by `run()` and the sweep adapter.
fn grid(quick: bool) -> (&'static [f64], &'static [Option<u64>]) {
    let losses: &[f64] = if quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.05, 0.2, 0.3]
    };
    let mtbfs: &[Option<u64>] = if quick {
        &[None, Some(15)]
    } else {
        &[None, Some(30), Some(10)]
    };
    (losses, mtbfs)
}

/// Sweep-grid adapter: one cell per (loss, MTBF) fault-plane setting.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let (losses, mtbfs) = grid(quick);
        let mut cells = Vec::new();
        for &loss in losses {
            for &mtbf in mtbfs {
                cells.push(crate::sweep::SweepCell {
                    experiment: "e13",
                    scenario: format!(
                        "loss={loss:.2}/mtbf={}",
                        mtbf.map_or("inf".into(), |m| m.to_string())
                    ),
                    base_seed: SEED,
                    run: Box::new(move |seed| {
                        let out = run_cell(loss, mtbf, quick, seed, None);
                        let r = &out.row;
                        let mut metrics = std::collections::BTreeMap::new();
                        metrics.insert("crashes".to_string(), r.crashes as f64);
                        if let Some(t) = r.t_full_coverage_s {
                            metrics.insert("t_full_coverage_s".to_string(), t);
                        }
                        metrics.insert("steady_coverage_pct".to_string(), r.steady_coverage_pct);
                        metrics.insert("retransmits".to_string(), r.retransmits as f64);
                        metrics.insert("reinstalls".to_string(), r.reinstalls as f64);
                        metrics.insert("cp_dropped".to_string(), r.cp_dropped as f64);
                        metrics.insert("cp_duplicated".to_string(), r.cp_duplicated as f64);
                        metrics.insert("dedup_hits".to_string(), r.dedup_hits as f64);
                        crate::sweep::CellRun {
                            metrics,
                            stats: out.stats,
                        }
                    }),
                });
            }
        }
        cells
    }
}

/// Run E13.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e13",
        "Control-plane fault sweep: loss × device MTBF vs deployment convergence",
        "Sec. 5.1 under adversarial channels",
    );
    let (losses, mtbfs) = grid(quick);

    // `--cp-trace` designates the 20%-loss crash-churn cell — the one
    // that exercises every lifecycle event kind — and attaches a full
    // (1-in-1) recorder to its normal grid run. Tracing observes without
    // perturbing, so the report rows below are byte-identical either way
    // (the CI golden-invariance check holds us to that).
    let traced_cell: Option<(f64, Option<u64>)> = opts.cp_trace.as_ref().map(|_| {
        if quick {
            (0.2, Some(15))
        } else {
            (0.2, Some(30))
        }
    });
    let recorder = opts
        .cp_trace
        .as_ref()
        .map(|_| Arc::new(StdMutex::new(CpFlightRecorder::new(1 << 22))));

    let mut rows = Vec::new();
    let mut all_stats = Vec::new();
    for &loss in losses {
        for &mtbf in mtbfs {
            let trace_here = traced_cell == Some((loss, mtbf));
            let trace = if trace_here {
                recorder.as_ref().map(|r| (r, 1))
            } else {
                None
            };
            let out = run_cell(loss, mtbf, quick, SEED, trace);
            if trace_here {
                let path = opts.cp_trace.as_ref().expect("traced_cell implies path");
                let rec = recorder
                    .as_ref()
                    .expect("traced_cell implies recorder")
                    .lock()
                    .expect("cp recorder mutex");
                std::fs::write(path, rec.export_jsonl_string()).expect("write cp trace");
                let snap = control_metrics(&out.stats, &out.cp);
                let mut json = snap.to_json_string();
                json.push('\n');
                std::fs::write(format!("{}.metrics.json", path.display()), json)
                    .expect("write metrics snapshot");
                std::fs::write(format!("{}.prom", path.display()), snap.to_prometheus())
                    .expect("write prometheus snapshot");
                // health, not note: notes serialise into the golden JSON.
                report.health(format!(
                    "cp-trace: {} events recorded ({} evicted) from cell loss={loss:.2}/mtbf={} \
                     -> {}",
                    rec.recorded(),
                    rec.evicted(),
                    mtbf.map_or("inf".into(), |m| m.to_string()),
                    path.display(),
                ));
            }
            rows.push(out.row);
            all_stats.push(out.stats);
        }
    }

    let mut t = Table::new(
        "time to 100% device coverage and steady-state coverage per (loss, MTBF) cell \
         (dup rate = loss/2, 10 ms jitter, 2 s reconcile sweep)",
        &[
            "loss_%",
            "mtbf_s",
            "crashes",
            "t_full_cov_s",
            "steady_cov_%",
            "retransmits",
            "reinstalls",
            "ch_drops",
            "ch_dups",
            "dedup_hits",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                format!("{:.0}", r.loss_pct),
                r.mtbf_s.map_or("∞".into(), |m| m.to_string()),
                r.crashes.to_string(),
                fopt(r.t_full_coverage_s),
                f(r.steady_coverage_pct),
                r.retransmits.to_string(),
                r.reinstalls.to_string(),
                r.cp_dropped.to_string(),
                r.cp_duplicated.to_string(),
                r.dedup_hits.to_string(),
            ],
            r,
        );
    }
    report.table(t);

    report.note(
        "Loss-only cells converge to 100% coverage — within one probe tick on the \
         happy path, after a few retransmit rounds at 20–30% loss. Crash-churn cells \
         (finite MTBF) reach full coverage the same way, then oscillate: each crash \
         wipes a device until the next anti-entropy sweep reinstalls it, so \
         steady-state coverage settles below 100% by roughly downtime-plus-repair-lag \
         over MTBF, dipping further when channel loss also delays the sweep's \
         query/reinstall round. Retransmits track the channel drop count, reinstalls \
         the crash count, and dedup hits absorb duplicated deliveries — the \
         exactly-once ledger the protocol keeps over an at-least-once channel.",
    );
    let (drops, dups): (u64, u64) = all_stats.iter().fold((0, 0), |(d, p), s| {
        (d + s.cp_fault_dropped, p + s.cp_fault_duplicated)
    });
    let (retx, rein): (u64, u64) = rows.iter().fold((0, 0), |(r, i), row| {
        (r + row.retransmits, i + row.reinstalls)
    });
    report.health(format!(
        "control faults over {} cells: {} channel drops, {} channel duplicates, \
         {} retransmits, {} reconcile reinstalls, {} crashes",
        rows.len(),
        drops,
        dups,
        retx,
        rein,
        all_stats.iter().map(|s| s.node_crashes).sum::<u64>(),
    ));
    report.health(wheel_health(all_stats.iter()));
    report
}
