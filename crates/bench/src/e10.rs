//! E10 — Emerging applications: traceback accuracy and anomaly-reaction
//! latency (Sec. 4.4).
//!
//! (a) SPIE-style digest traceback: accuracy of locating the true origin
//! of spoofed packets vs backlog retention and deployment coverage.
//! (b) Automated reaction: time from attack onset to a device trigger
//! firing (and auto-activating a dormant limiter) vs trigger threshold.

use rayon::prelude::*;
use serde::Serialize;

use crossbeam::channel::unbounded;
use dtcs::control::CatalogService;
use dtcs::device::view::digest_packet;
use dtcs::device::{AdaptiveDevice, DeviceCommand, DeviceEvent, OwnerId};
use dtcs::mitigation::{choose_nodes, Placement, SpieConfig, SpieFleet};
use dtcs::netsim::rng::{child_seed, seeded};
use dtcs::netsim::{
    Addr, NodeId, PacketBuilder, Prefix, Proto, SimDuration, SimTime, Simulator, Topology,
    TrafficClass,
};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::util::{f, fopt, Report, Table};

#[derive(Serialize, Clone)]
struct TraceRow {
    coverage: f64,
    windows_retained: usize,
    queries: usize,
    exact_hits: usize,
    truncated: usize,
    misses: usize,
    accuracy: f64,
}

fn trace_case(coverage: f64, retain: usize, quick: bool) -> TraceRow {
    let n = if quick { 100 } else { 250 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, 66);
    let mut sim = Simulator::new(topo, 66);
    let stubs = sim.topo.stub_nodes();
    let victim_node = stubs[0];
    let victim = Addr::new(victim_node, 1);
    sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
    let mut nodes = choose_nodes(&sim.topo, coverage, Placement::TopDegree, 66);
    if !nodes.contains(&victim_node) {
        nodes.push(victim_node);
    }
    let fleet = SpieFleet::deploy(
        &mut sim,
        &nodes,
        SpieConfig {
            retain,
            ..Default::default()
        },
    );
    // Spoofed probes from random stubs, each with a unique tag.
    let mut rng = seeded(child_seed(66, 4));
    let n_probes = if quick { 60 } else { 150 };
    let mut probes = Vec::new();
    for k in 0..n_probes as u64 {
        let from = *stubs[1..].choose(&mut rng).expect("stubs");
        let spoof = Addr(rng.gen());
        let b = PacketBuilder::new(spoof, victim, Proto::Udp, TrafficClass::AttackDirect)
            .size(100)
            .tag(0xE10_000 + k);
        let at = SimTime(k * 20_000_000);
        probes.push((from, b, at));
        sim.schedule(at, move |s| s.emit_now(from, b));
    }
    sim.run_until(SimTime::from_secs(10));
    crate::util::enforce_run_invariants("e10/traceback", &sim.stats);

    let mut exact = 0;
    let mut truncated = 0;
    let mut misses = 0;
    for (from, b, at) in &probes {
        let digest = digest_packet(&b.build(0, *from));
        let found = fleet.trace(
            &sim.topo,
            victim_node,
            digest,
            *at,
            SimDuration::from_secs(2),
        );
        if found.contains(from) {
            exact += 1;
        } else if !found.is_empty() {
            truncated += 1;
        } else {
            misses += 1;
        }
    }
    TraceRow {
        coverage,
        windows_retained: retain,
        queries: probes.len(),
        exact_hits: exact,
        truncated,
        misses,
        accuracy: exact as f64 / probes.len() as f64,
    }
}

#[derive(Serialize, Clone)]
struct TriggerRow {
    threshold_pps: f64,
    attack_rate_pps: f64,
    reaction_ms: Option<f64>,
    limiter_drops: u64,
}

fn trigger_case(threshold_pps: f64, attack_rate_pps: f64) -> TriggerRow {
    let topo = Topology::star(4);
    let mut sim = Simulator::new(topo, 9);
    let me = NodeId(1);
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let owner = OwnerId(3);
    let (tx, rx) = unbounded::<DeviceEvent>();
    let (mut dev, _h) = AdaptiveDevice::new(NodeId(0), None);
    dev.set_event_tap(tx);
    dev.apply(DeviceCommand::RegisterOwner {
        owner,
        prefixes: vec![Prefix::of_node(me)],
        contact: me,
    });
    let svc = CatalogService::AnomalyReaction {
        threshold_pps,
        window: SimDuration::from_millis(200),
        limit_bytes_per_sec: 20_000.0,
    };
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        owner,
        stage: svc.stage(),
        spec: svc.compile(),
    });
    sim.add_agent(NodeId(0), Box::new(dev));
    let attack_start = SimTime::from_secs(2);
    use dtcs::attack::{AgentApp, AgentMode, AgentTrigger, SpoofMode};
    sim.install_app(
        Addr::new(NodeId(2), 4),
        Box::new(
            AgentApp::new(
                AgentMode::Direct {
                    victim: my_addr,
                    spoof: SpoofMode::None,
                },
                AgentTrigger::AtTime(attack_start),
                attack_rate_pps,
                200,
            )
            .until(SimTime::from_secs(10)),
        ),
    );
    sim.run_until(SimTime::from_secs(12));
    crate::util::enforce_run_invariants("e10/trigger", &sim.stats);
    let fired_at = rx.try_iter().find_map(|ev| match ev {
        DeviceEvent::TriggerFired { at, .. } => Some(at),
        _ => None,
    });
    TriggerRow {
        threshold_pps,
        attack_rate_pps,
        reaction_ms: fired_at
            .map(|t| (t.as_nanos().saturating_sub(attack_start.as_nanos())) as f64 / 1e6),
        limiter_drops: sim
            .stats
            .drops_for_reason(dtcs::netsim::DropReason::DeviceRateLimit)
            .pkts,
    }
}

/// Run E10.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e10",
        "TCS applications: traceback accuracy, anomaly-reaction latency",
        "Sec. 4.4",
    );

    let cases: Vec<(f64, usize)> = if quick {
        vec![(1.0, 30), (0.5, 30), (1.0, 4)]
    } else {
        vec![
            (1.0, 30),
            (0.75, 30),
            (0.5, 30),
            (0.25, 30),
            (1.0, 8),
            (1.0, 4),
        ]
    };
    let rows: Vec<TraceRow> = cases
        .par_iter()
        .map(|&(c, w)| trace_case(c, w, quick))
        .collect();
    let mut t = Table::new(
        "digest-backlog traceback of spoofed packets",
        &[
            "coverage",
            "windows",
            "queries",
            "exact",
            "truncated",
            "missed",
            "accuracy",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                format!("{:.2}", r.coverage),
                r.windows_retained.to_string(),
                r.queries.to_string(),
                r.exact_hits.to_string(),
                r.truncated.to_string(),
                r.misses.to_string(),
                f(r.accuracy),
            ],
            r,
        );
    }
    report.table(t);

    let thresholds = [100.0, 500.0, 2000.0];
    let rows: Vec<TriggerRow> = thresholds
        .par_iter()
        .map(|&th| trigger_case(th, 5000.0))
        .collect();
    let mut t = Table::new(
        "anomaly-reaction latency (5000 pps flood, 200 ms windows)",
        &[
            "threshold_pps",
            "attack_pps",
            "reaction_ms",
            "limiter_drops",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                f(r.threshold_pps),
                f(r.attack_rate_pps),
                fopt(r.reaction_ms),
                r.limiter_drops.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Full coverage traces every spoofed probe to its true origin AS; partial coverage \
         truncates traces at the instrumented frontier (still narrowing the search), and \
         short retention loses old packets — the qualitative SPIE trade-offs. Trigger \
         reaction completes within one observation window of attack onset.",
    );
    report
}
