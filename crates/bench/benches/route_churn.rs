//! Route-churn under link flaps: the hot path ISSUE 3 targets.
//!
//! Reflector floods saturate links and operators fail/restore them while
//! ingress filters keep asking route-consistency questions. Every flap
//! used to cost a whole-table `Routing::compute` plus a wholesale
//! `RouteOracle` clear at *every* filtering node. With link-stamped
//! invalidation the repair recomputes only the damaged destination trees
//! and evicts only their cached answers.
//!
//! Two arms over the identical flap + query schedule on the E3 topology
//! (Barabási–Albert, 400 ASes — the power-law shape of Park & Lee):
//!
//! * `wholesale_clear` — the old semantics: full recompute, epoch bump
//!   with no delta record, so every oracle clears wholesale;
//! * `warm_reuse` — `Routing::apply_link_flip` + delta-synced oracles.
//!
//! The flapped links are *localized*: the lowest-blast-radius links that
//! still carry traffic (fewest destination trees crossing them), the
//! realistic case of access/edge links — which fail most often in
//! practice — as opposed to backbone cuts. An audit pass (run once, before
//! timing) verifies the spliced tables stay bit-identical to cold
//! recomputes and prints the recompute/eviction counters that
//! BENCH_route_churn.json records.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dtcs::netsim::{LinkId, NodeId, RouteOracle, Routing, Topology};

/// E3 full-size topology (matches `dtcs_bench::e3`).
const N_NODES: usize = 400;
const TOPO_SEED: u64 = 5;
/// How many low-impact links the schedule flaps (each down then up).
const FLAP_LINKS: usize = 8;
/// Filtering nodes holding warm oracles.
const FILTER_ATS: [usize; 4] = [0, 7, 31, 101];
/// Route-consistency queries fired between consecutive flips.
const QUERIES_PER_FLIP: usize = 2048;

/// Deterministic (src, dst) mix without rand — same LCG as route_oracle.
fn query_mix(n_nodes: usize, pairs: usize) -> Vec<(NodeId, NodeId)> {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..pairs)
        .map(|_| (NodeId(next() % n_nodes), NodeId(next() % n_nodes)))
        .collect()
}

/// The `FLAP_LINKS` up-links with the fewest destination trees crossing
/// them (but at least one): localized damage, the common failure case.
fn low_impact_links(topo: &Topology, routing: &Routing) -> Vec<LinkId> {
    let mut scored: Vec<(usize, usize)> = (0..topo.links.len())
        .filter(|&l| topo.links[l].up)
        .map(|l| {
            let coverage = (0..topo.n())
                .filter(|&d| routing.tree_contains(NodeId(d), LinkId(l)))
                .count();
            (coverage, l)
        })
        .filter(|&(coverage, _)| coverage > 0)
        .collect();
    scored.sort_unstable();
    scored
        .into_iter()
        .take(FLAP_LINKS)
        .map(|(_, l)| LinkId(l))
        .collect()
}

/// One full schedule pass with the OLD semantics: every flip recomputes
/// the whole table and bumps the epoch with no delta record (wholesale
/// oracle clears). Returns a checksum so the work cannot be elided.
fn run_wholesale(
    topo: &mut Topology,
    routing: &mut Routing,
    oracles: &mut [RouteOracle],
    links: &[LinkId],
    queries: &[(NodeId, NodeId)],
) -> u64 {
    let mut check = 0u64;
    for &link in links {
        for up in [false, true] {
            topo.links[link.0].up = up;
            let epoch = routing.epoch();
            *routing = Routing::compute(topo);
            routing.set_epoch(epoch + 1);
            for oracle in oracles.iter_mut() {
                for &(src, dst) in queries {
                    if oracle.enters_via(routing, topo, src, dst).is_some() {
                        check += 1;
                    }
                }
            }
        }
    }
    check
}

/// The same schedule with incremental repair + delta-synced warm oracles.
fn run_warm(
    topo: &mut Topology,
    routing: &mut Routing,
    oracles: &mut [RouteOracle],
    links: &[LinkId],
    queries: &[(NodeId, NodeId)],
) -> u64 {
    let mut check = 0u64;
    for &link in links {
        for up in [false, true] {
            topo.links[link.0].up = up;
            routing.apply_link_flip(topo, link);
            for oracle in oracles.iter_mut() {
                for &(src, dst) in queries {
                    if oracle.enters_via(routing, topo, src, dst).is_some() {
                        check += 1;
                    }
                }
            }
        }
    }
    check
}

/// Correctness + counter audit, run once before timing: spliced tables
/// must match cold recomputes at every step, both arms must answer
/// identically, and the recompute/eviction counters are printed for
/// BENCH_route_churn.json.
fn audit(topo: &Topology, links: &[LinkId], queries: &[(NodeId, NodeId)]) {
    let n = topo.n();
    let mut topo_a = topo.clone();
    let mut warm = Routing::compute(&topo_a);
    let mut warm_oracles: Vec<RouteOracle> = FILTER_ATS
        .iter()
        .map(|&a| RouteOracle::new(NodeId(a)))
        .collect();
    let mut trees = 0u64;
    let mut fulls = 0u64;
    for &link in links {
        for up in [false, true] {
            topo_a.links[link.0].up = up;
            let out = warm.apply_link_flip(&topo_a, link);
            trees += out.trees_recomputed as u64;
            fulls += u64::from(out.full);
            let cold = Routing::compute(&topo_a);
            assert!(
                warm.tables_match(&cold),
                "splice diverged at {link:?} up={up}"
            );
            for oracle in warm_oracles.iter_mut() {
                for &(src, dst) in queries {
                    let want = cold.enters_via(&topo_a, src, dst, oracle.at());
                    assert_eq!(oracle.enters_via(&warm, &topo_a, src, dst), want);
                }
            }
        }
    }
    let flips = (2 * links.len()) as u64;
    let (partials, clears, evicted) = warm_oracles
        .iter()
        .map(|o| o.invalidation_stats())
        .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));
    eprintln!("route_churn audit: {flips} flips on {n}-node E3 topology");
    eprintln!(
        "  full table recomputes: wholesale {flips} vs warm {fulls}  \
         ({}x fewer)",
        if fulls == 0 {
            flips
        } else {
            flips / fulls.max(1)
        }
    );
    eprintln!(
        "  destination trees recomputed: wholesale {} vs warm {trees}  ({:.1}x fewer)",
        flips * n as u64,
        (flips * n as u64) as f64 / trees.max(1) as f64
    );
    eprintln!(
        "  oracle epoch syncs across {} filters: {partials} partial evictions \
         ({evicted} entries), {clears} wholesale clears \
         (baseline: {} wholesale clears)",
        FILTER_ATS.len(),
        flips * FILTER_ATS.len() as u64
    );
}

fn bench_route_churn(c: &mut Criterion) {
    let base = Topology::barabasi_albert(N_NODES, 2, 0.1, TOPO_SEED);
    let cold = Routing::compute(&base);
    let links = low_impact_links(&base, &cold);
    assert!(!links.is_empty(), "E3 topology has localized links");
    let queries = query_mix(N_NODES, QUERIES_PER_FLIP);
    audit(&base, &links, &queries);

    let mut group = c.benchmark_group("route_churn");
    group.sample_size(10);

    group.bench_function("wholesale_clear", |b| {
        let mut topo = base.clone();
        let mut routing = Routing::compute(&topo);
        let mut oracles: Vec<RouteOracle> = FILTER_ATS
            .iter()
            .map(|&a| RouteOracle::new(NodeId(a)))
            .collect();
        b.iter(|| {
            black_box(run_wholesale(
                &mut topo,
                &mut routing,
                &mut oracles,
                &links,
                &queries,
            ))
        });
    });

    group.bench_function("warm_reuse", |b| {
        let mut topo = base.clone();
        let mut routing = Routing::compute(&topo);
        let mut oracles: Vec<RouteOracle> = FILTER_ATS
            .iter()
            .map(|&a| RouteOracle::new(NodeId(a)))
            .collect();
        b.iter(|| {
            black_box(run_warm(
                &mut topo,
                &mut routing,
                &mut oracles,
                &links,
                &queries,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_route_churn);
criterion_main!(benches);
