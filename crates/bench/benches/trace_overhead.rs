//! Flight-recorder overhead bench: the same steady packet workload as
//! `sim_engine`'s `ba_nodes` arm, run three ways — tracing disabled
//! (the default every experiment pays), sampled at 1-in-64, and full
//! 1-in-1 capture. The disabled arm is the contract: attaching the
//! telemetry layer to the engine must cost nothing when no sink is set
//! (a `None` branch per packet emission/drop/delivery, no allocation).
//! Numbers are recorded in `BENCH_trace_overhead.json`.

use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::{
    Addr, App, AppApi, Disposition, FlightRecorder, NodeId, Packet, PacketBuilder, Proto, SimTime,
    Simulator, Topology, TrafficClass,
};

/// Source app replaying a precomputed emission schedule (mirrors
/// `sim_engine::SprayApp` so the baseline numbers are comparable).
struct SprayApp {
    /// `(when, flow, dst)`, sorted by `when`.
    schedule: Vec<(SimTime, u64, Addr)>,
    next: usize,
}

impl SprayApp {
    fn arm(&mut self, api: &mut AppApi<'_>) {
        if let Some(&(when, _, _)) = self.schedule.get(self.next) {
            api.set_timer(when.saturating_since(api.now), 0);
        }
    }
}

impl App for SprayApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        self.arm(api);
    }

    fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, _token: u64) {
        while let Some(&(when, flow, dst)) = self.schedule.get(self.next) {
            if when > api.now {
                break;
            }
            self.next += 1;
            api.send(
                PacketBuilder::new(api.self_addr, dst, Proto::Udp, TrafficClass::Background)
                    .size(200)
                    .flow(flow),
            );
        }
        self.arm(api);
    }
}

/// `sampling`: None = tracing disabled; Some(n) = record 1-in-n packets
/// into a flight recorder big enough never to evict.
fn run_workload(n_nodes: usize, pkts: u64, sampling: Option<u64>) -> u64 {
    let topo = Topology::barabasi_albert(n_nodes, 2, 0.1, 3);
    let mut sim = Simulator::new(topo, 3);
    if let Some(one_in) = sampling {
        let rec = Arc::new(Mutex::new(FlightRecorder::new(1 << 22)));
        sim.set_trace_sink(Box::new(rec), one_in);
    }
    for i in 0..n_nodes {
        sim.install_app(Addr::new(NodeId(i), 1), Box::new(dtcs::netsim::SinkApp));
    }
    let mut schedules: Vec<Vec<(SimTime, u64, Addr)>> = vec![Vec::new(); n_nodes];
    for k in 0..pkts {
        let from = (k as usize * 17) % n_nodes;
        let to = Addr::new(NodeId((k as usize * 31 + 7) % n_nodes), 1);
        schedules[from].push((SimTime::from_nanos(k * 10_000), k, to));
    }
    for (i, schedule) in schedules.into_iter().enumerate() {
        if !schedule.is_empty() {
            sim.install_app(
                Addr::new(NodeId(i), 2),
                Box::new(SprayApp { schedule, next: 0 }),
            );
        }
    }
    sim.run_until(SimTime::from_secs(600));
    sim.stats.events
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    let n = 200usize;
    let pkts = 5_000u64;
    for (label, sampling) in [
        ("disabled", None),
        ("sampled_1_in_64", Some(64)),
        ("full_1_in_1", Some(1)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| run_workload(n, pkts, sampling))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
