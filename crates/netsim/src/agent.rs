//! Node agents: packet-path extensions attached to routers.
//!
//! Everything that sits *beside* plain IP forwarding — adaptive devices,
//! ingress filters, pushback logic, traceback markers — is a [`NodeAgent`].
//! Agents on a node form an ordered chain; each inbound or locally-emitted
//! packet passes through the chain before normal forwarding, and any agent
//! may drop it. Agents communicate with the simulator exclusively through
//! the [`Outbox`], which keeps the borrow structure simple and the event
//! order deterministic.
//!
//! Control-plane messaging between agents (pushback's upstream rate-limit
//! requests, the TCSP/ISP management operations of Figs. 4–5) uses
//! [`AgentCtx::send_control`]: an out-of-band message delivered after an
//! explicit delay chosen by the sender (typically `hops × RTT`). This is a
//! documented substitution for in-band signalling — the experiments that
//! care about control-plane latency (E7) model it explicitly.

use std::any::Any;
use std::sync::Arc;

use crate::cp_trace::{CpMeta, CpTraceEvent, CpTracer};
use crate::node::{LinkId, NodeId};
use crate::packet::{Packet, PacketBuilder};
use crate::routing::Routing;
use crate::stats::DropReason;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::Tracer;

/// What an agent decided about a packet.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum Verdict {
    /// Pass to the next agent / normal forwarding.
    Forward,
    /// Drop with the given reason (recorded in [`crate::stats::Stats`]).
    Drop(DropReason),
}

/// Out-of-band control message between agents.
///
/// The payload is reference-counted so the fault plane
/// ([`crate::faults::FaultPlane`]) can deliver duplicates of one send
/// without requiring payload types to be `Clone`.
pub struct ControlMsg {
    /// Node whose agent sent the message.
    pub from: NodeId,
    /// Opaque payload; receivers `downcast_ref` to their protocol type.
    pub payload: Arc<dyn Any + Send + Sync>,
    /// Control-trace identity the sender attached via
    /// [`AgentCtx::send_control_keyed`]; None for unkeyed messages.
    /// Receivers replying on behalf of the same transaction (e.g. a
    /// device acking an install) echo it so the reply traces under the
    /// request's key.
    pub meta: Option<CpMeta>,
}

impl ControlMsg {
    /// Typed view of the payload.
    pub fn get<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

/// Deferred effects produced by agent / app callbacks, applied by the
/// simulator after the callback returns.
#[derive(Default)]
pub struct Outbox {
    pub(crate) sends: Vec<(SimDuration, PacketBuilder)>,
    pub(crate) agent_timers: Vec<(SimDuration, u64)>,
    pub(crate) controls: Vec<(
        SimDuration,
        NodeId,
        Arc<dyn Any + Send + Sync>,
        Option<CpMeta>,
    )>,
}

impl Outbox {
    pub(crate) fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.agent_timers.is_empty() && self.controls.is_empty()
    }
}

/// Context handed to every agent callback.
pub struct AgentCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Node this agent chain is attached to.
    pub node: NodeId,
    /// Read-only topology (including live link counters).
    pub topo: &'a Topology,
    /// Read-only routing tables.
    pub routing: &'a Routing,
    pub(crate) outbox: &'a mut Outbox,
    pub(crate) trace: &'a mut Tracer,
    pub(crate) cp_trace: &'a mut CpTracer,
}

impl<'a> AgentCtx<'a> {
    /// Emit a new packet from this node after `delay`. The packet enters
    /// the network at this node and traverses the agent chain like any
    /// other traffic.
    pub fn emit(&mut self, delay: SimDuration, builder: PacketBuilder) {
        self.outbox.sends.push((delay, builder));
    }

    /// Arrange for `on_timer(token)` on this agent after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.outbox.agent_timers.push((delay, token));
    }

    /// Send an out-of-band control message to the agents of `to`,
    /// delivered after `delay`.
    pub fn send_control<T: Any + Send + Sync>(
        &mut self,
        to: NodeId,
        delay: SimDuration,
        payload: T,
    ) {
        self.outbox
            .controls
            .push((delay, to, Arc::new(payload), None));
    }

    /// Like [`AgentCtx::send_control`], but tagging the message with its
    /// control-transaction identity so the control-plane flight recorder
    /// (DESIGN.md §6.9) can trace it. Identical delivery semantics; the
    /// tag is observation-only.
    pub fn send_control_keyed<T: Any + Send + Sync>(
        &mut self,
        to: NodeId,
        delay: SimDuration,
        payload: T,
        meta: CpMeta,
    ) {
        self.outbox
            .controls
            .push((delay, to, Arc::new(payload), Some(meta)));
    }

    /// Is control-plane tracing enabled at all? One branch; agents may
    /// use it to skip building events, though event construction is
    /// allocation-free and [`AgentCtx::cp_event`] gates internally.
    #[inline]
    pub fn cp_trace_enabled(&self) -> bool {
        self.cp_trace.enabled()
    }

    /// Record a control-plane trace event. No-op when tracing is
    /// disabled; keyed events are dropped unless their `(origin, txn)`
    /// transaction is in the deterministic sample.
    #[inline]
    pub fn cp_event(&mut self, ev: CpTraceEvent) {
        self.cp_trace.record(ev);
    }

    /// Is the packet in the trace sample? Agents use this to gate any
    /// per-packet telemetry work (notably building a
    /// [`AgentCtx::trace_verdict_detail`] string); one branch when tracing
    /// is disabled.
    pub fn trace_wants(&self, pkt: &Packet) -> bool {
        self.trace.wants(pkt.id)
    }

    /// Attach a detail string (e.g. which filter stage fired) to the
    /// `ModuleVerdict` trace event the simulator emits if this callback
    /// returns [`Verdict::Drop`]. Call only under a positive
    /// [`AgentCtx::trace_wants`] check so untraced packets allocate
    /// nothing; staged detail is discarded if the packet is forwarded.
    pub fn trace_verdict_detail(&mut self, detail: impl Into<String>) {
        if self.trace.enabled() {
            self.trace.stage_detail(detail.into());
        }
    }

    /// Round-trip-flavoured delay estimate toward `to`: per-hop latency sum
    /// along the current shortest path (used by control senders to pick a
    /// realistic delivery delay).
    pub fn path_delay(&self, to: NodeId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut at = self.node;
        let mut guard = 0;
        while at != to {
            let Some(l) = self.routing.next_hop(at, to) else {
                return SimDuration::from_millis(50); // unreachable: flat guess
            };
            total += self.topo.links[l.0].latency;
            at = self.topo.links[l.0].other(at);
            guard += 1;
            if guard > self.topo.n() {
                break;
            }
        }
        total
    }
}

/// A packet-path extension attached to a node.
///
/// All methods take `&mut self`; an agent is owned by exactly one node and
/// the simulator is single-threaded per instance (determinism), so no
/// internal synchronisation is needed.
pub trait NodeAgent: Send {
    /// Short stable name for logs and reports.
    fn name(&self) -> &'static str;

    /// A packet arrived at this node (either from link `from`, or `None`
    /// when emitted locally). May mutate mutable packet fields (e.g. the
    /// marking field); may drop.
    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        from: Option<LinkId>,
    ) -> Verdict;

    /// A timer set via [`AgentCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _token: u64) {}

    /// A packet this node tried to forward was tail-dropped on `link`.
    /// This is the congestion-observation hook pushback builds on.
    fn on_link_drop(&mut self, _ctx: &mut AgentCtx<'_>, _link: LinkId, _pkt: &Packet) {}

    /// An out-of-band control message arrived.
    fn on_control(&mut self, _ctx: &mut AgentCtx<'_>, _msg: &ControlMsg) {}

    /// The node hosting this agent crashed (fault-plane crash window,
    /// [`crate::faults::Outage`] with `crash = true`). Volatile state —
    /// anything a real reboot would lose — must be discarded here;
    /// durable identity (keys, manager binding) survives.
    fn on_crash(&mut self, _ctx: &mut AgentCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_msg_downcast() {
        let msg = ControlMsg {
            from: NodeId(3),
            payload: Arc::new(42u32),
            meta: None,
        };
        assert_eq!(msg.get::<u32>(), Some(&42));
        assert_eq!(msg.get::<u64>(), None);
    }

    #[test]
    fn outbox_empty_tracking() {
        let mut o = Outbox::default();
        assert!(o.is_empty());
        o.agent_timers.push((SimDuration::ZERO, 1));
        assert!(!o.is_empty());
        // The simulator drains by `mem::take` and hands the emptied
        // buffers back; emptiness must reflect that.
        std::mem::take(&mut o.agent_timers).clear();
        assert!(o.is_empty());
    }
}
