//! Secure-overlay defenses: SOS / Mayday (Sec. 3.2) and the i3 indirection
//! defense (Sec. 3.1).
//!
//! **SOS/Mayday** shape: authorised clients enter the overlay at an access
//! point (SOAP), which relays via a secret servlet to the victim; filters
//! at the victim's perimeter admit only servlet-sourced traffic. Protection
//! is strong for overlay members, but (the paper's critique) every client
//! needs a pre-established trust relationship, traffic pays the overlay
//! path stretch, and the scheme cannot serve an open user base.
//!
//! **i3-style indirection** shape: clients reach the victim through a
//! public trigger/relay; the victim serves only its relay. Crucially there
//! is *no network-level perimeter* — an overlay cannot filter inside ISPs —
//! so when attackers know the victim's real IP, their traffic still reaches
//! and exhausts the host (the "how can server IP addresses be hidden"
//! critique of Sec. 3.1, reproduced in E2).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::{
    Addr, AgentCtx, App, AppApi, Disposition, DropReason, LinkId, NodeAgent, NodeId, Packet,
    PacketBuilder, Prefix, Proto, Simulator, TrafficClass, Verdict,
};

/// Is this protocol a request (client → server direction)?
fn is_request(proto: Proto) -> bool {
    matches!(
        proto,
        Proto::TcpSyn | Proto::DnsQuery | Proto::IcmpEcho | Proto::Udp
    )
}

/// Is this protocol a reply (server → client direction)?
fn is_reply(proto: Proto) -> bool {
    matches!(
        proto,
        Proto::TcpSynAck | Proto::DnsResponse | Proto::TcpData | Proto::IcmpEchoReply
    )
}

/// Where a relay forwards requests.
#[derive(Clone, Debug)]
pub enum RelayNext {
    /// Choose a servlet by flow hash (SOAP role).
    Servlets(Vec<Addr>),
    /// Forward straight to the protected server (servlet / i3 trigger
    /// role).
    Server(Addr),
}

/// Relay counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RelayStats {
    /// Requests relayed toward the server.
    pub relayed: u64,
    /// Replies relayed back toward clients.
    pub returned: u64,
    /// Requests rejected for failing overlay authorisation.
    pub rejected: u64,
}

/// Shared handle to a relay's counters.
pub type RelayHandle = Arc<Mutex<RelayStats>>;

/// Overlay relay node application (SOAP, servlet, or i3 trigger).
pub struct RelayApp {
    next: RelayNext,
    /// When set, only these client addresses may use the relay (SOS trust
    /// relationships). `None` = open relay (i3 triggers).
    authorized: Option<Vec<Addr>>,
    /// Reverse routes: flow → previous hop.
    back: BTreeMap<u64, Addr>,
    stats: RelayHandle,
}

impl RelayApp {
    /// New relay.
    pub fn new(next: RelayNext, authorized: Option<Vec<Addr>>) -> (RelayApp, RelayHandle) {
        let stats: RelayHandle = Arc::new(Mutex::new(RelayStats::default()));
        (
            RelayApp {
                next,
                authorized,
                back: BTreeMap::new(),
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl App for RelayApp {
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if is_request(pkt.proto) {
            if let Some(auth) = &self.authorized {
                if !auth.contains(&pkt.src) {
                    self.stats.lock().rejected += 1;
                    return Disposition::Consumed;
                }
            }
            let target = match &self.next {
                RelayNext::Servlets(s) => {
                    if s.is_empty() {
                        return Disposition::Consumed;
                    }
                    s[(pkt.flow % s.len() as u64) as usize]
                }
                RelayNext::Server(v) => *v,
            };
            self.back.insert(pkt.flow, pkt.src);
            if self.back.len() > 4096 {
                let oldest = *self.back.keys().next().unwrap();
                self.back.remove(&oldest);
            }
            let b =
                PacketBuilder::new(api.self_addr, target, pkt.proto, TrafficClass::LegitRequest)
                    .size(pkt.size)
                    .flow(pkt.flow)
                    .tag(pkt.payload_tag);
            api.send(b);
            self.stats.lock().relayed += 1;
        } else if is_reply(pkt.proto) {
            if let Some(prev) = self.back.get(&pkt.flow).copied() {
                let b =
                    PacketBuilder::new(api.self_addr, prev, pkt.proto, TrafficClass::LegitReply)
                        .size(pkt.size)
                        .flow(pkt.flow)
                        .tag(pkt.payload_tag);
                api.send(b);
                self.stats.lock().returned += 1;
            }
        }
        Disposition::Consumed
    }
}

/// Network-side perimeter filter for SOS: at the victim's neighbouring
/// ASes, only servlet-sourced traffic may continue toward the victim.
pub struct PerimeterFilterAgent {
    victim_prefix: Prefix,
    allowed_sources: Vec<Addr>,
}

impl PerimeterFilterAgent {
    /// Filter admitting only `allowed_sources` toward `victim_prefix`.
    pub fn new(victim_prefix: Prefix, allowed_sources: Vec<Addr>) -> PerimeterFilterAgent {
        PerimeterFilterAgent {
            victim_prefix,
            allowed_sources,
        }
    }
}

impl NodeAgent for PerimeterFilterAgent {
    fn name(&self) -> &'static str {
        "sos-perimeter"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        if self.victim_prefix.contains(pkt.dst) && !self.allowed_sources.contains(&pkt.src) {
            Verdict::Drop(DropReason::OverlayReject)
        } else {
            Verdict::Forward
        }
    }
}

/// A deployed SOS overlay.
pub struct SosOverlay {
    /// Overlay entry points clients talk to.
    pub soaps: Vec<Addr>,
    /// Secret servlets allowed through the perimeter.
    pub servlets: Vec<Addr>,
    /// Per-SOAP stats.
    pub soap_stats: Vec<RelayHandle>,
    /// Per-servlet stats.
    pub servlet_stats: Vec<RelayHandle>,
    /// Number of client↔overlay trust relationships provisioned (the
    /// management-cost metric of Sec. 3.2).
    pub trust_relationships: usize,
}

impl SosOverlay {
    /// Install SOS protecting `victim`. `soap_nodes` / `servlet_nodes`
    /// host the overlay; `authorized_clients` are the trusted user base.
    /// Perimeter filters go on every neighbour of the victim's AS, so
    /// attack traffic dies one hop out and the victim's access link stays
    /// clean.
    pub fn install(
        sim: &mut Simulator,
        victim: Addr,
        soap_nodes: &[NodeId],
        servlet_nodes: &[NodeId],
        authorized_clients: Vec<Addr>,
    ) -> SosOverlay {
        const RELAY_HOST: u16 = 40;
        let servlets: Vec<Addr> = servlet_nodes
            .iter()
            .map(|&n| Addr::new(n, RELAY_HOST))
            .collect();
        let mut servlet_stats = Vec::new();
        for &s in &servlets {
            let (app, h) = RelayApp::new(RelayNext::Server(victim), None);
            sim.install_app(s, Box::new(app));
            servlet_stats.push(h);
        }
        let soaps: Vec<Addr> = soap_nodes
            .iter()
            .map(|&n| Addr::new(n, RELAY_HOST))
            .collect();
        let mut soap_stats = Vec::new();
        for &s in &soaps {
            let (app, h) = RelayApp::new(
                RelayNext::Servlets(servlets.clone()),
                Some(authorized_clients.clone()),
            );
            sim.install_app(s, Box::new(app));
            soap_stats.push(h);
        }
        // Perimeter at every neighbour of the victim's AS. The victim's
        // replies (src in victim prefix) are untouched.
        let victim_prefix = Prefix::of_node(victim.node());
        let neighbours: Vec<NodeId> = sim.topo.neighbours(victim.node()).map(|(n, _)| n).collect();
        let mut allowed = servlets.clone();
        allowed.push(victim); // victim-originated traffic via its own AS
        for n in neighbours {
            sim.add_agent(
                n,
                Box::new(PerimeterFilterAgent::new(victim_prefix, allowed.clone())),
            );
        }
        let trust_relationships =
            authorized_clients.len() * soaps.len().max(1) + soaps.len() * servlets.len();
        SosOverlay {
            soaps,
            servlets,
            soap_stats,
            servlet_stats,
            trust_relationships,
        }
    }

    /// SOAP for a client (deterministic assignment by address).
    pub fn soap_for(&self, client: Addr) -> Addr {
        self.soaps[(client.0 as usize) % self.soaps.len()]
    }
}

/// A deployed i3-style indirection defense.
pub struct I3Defense {
    /// The public trigger/relay address clients use.
    pub trigger: Addr,
    /// Relay stats.
    pub relay_stats: RelayHandle,
}

impl I3Defense {
    /// Install an i3 trigger on `relay_node` forwarding to `victim`.
    ///
    /// NOTE: the caller must install the victim app with
    /// `VictimApp::restrict_sources(vec![trigger])` to model host-level
    /// filtering, and point legitimate clients at `trigger`. There is no
    /// network-level perimeter — that is precisely the scheme's weakness.
    pub fn install(sim: &mut Simulator, victim: Addr, relay_node: NodeId) -> I3Defense {
        const TRIGGER_HOST: u16 = 41;
        let trigger = Addr::new(relay_node, TRIGGER_HOST);
        let (app, relay_stats) = RelayApp::new(RelayNext::Server(victim), None);
        sim.install_app(trigger, Box::new(app));
        I3Defense {
            trigger,
            relay_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_attack::{ClientApp, VictimApp};
    use dtcs_netsim::{SimDuration, SimTime, Topology};

    #[test]
    fn sos_serves_members_and_blocks_direct_traffic() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 13);
        let mut sim = Simulator::new(topo, 3);
        let stubs = sim.topo.stub_nodes();
        let victim_node = stubs[0];
        let victim = Addr::new(victim_node, 1);
        let (vapp, vstats) = VictimApp::new(10_000.0, 400);
        sim.install_app(victim, Box::new(vapp));

        let client = Addr::new(stubs[5], 2);
        let overlay = SosOverlay::install(&mut sim, victim, &[stubs[2]], &[stubs[3]], vec![client]);
        // Member client goes through its SOAP.
        let (capp, cstats) =
            ClientApp::new(overlay.soap_for(client), SimDuration::from_millis(200));
        sim.install_app(client, Box::new(capp.until(SimTime::from_secs(5))));
        // A direct (non-overlay) sender is blocked at the perimeter.
        sim.emit_now(
            stubs[7],
            PacketBuilder::new(
                Addr::new(stubs[7], 3),
                victim,
                Proto::Udp,
                TrafficClass::AttackDirect,
            )
            .size(200),
        );
        sim.run_until(SimTime::from_secs(6));
        let cs = cstats.lock();
        assert!(
            cs.success_ratio() > 0.8,
            "member success {}",
            cs.success_ratio()
        );
        assert!(vstats.lock().served_legit > 0);
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::OverlayReject).pkts,
            1,
            "direct attack packet dies at the perimeter"
        );
        assert!(overlay.trust_relationships >= 2);
    }

    #[test]
    fn sos_rejects_unauthorized_overlay_entry() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 13);
        let mut sim = Simulator::new(topo, 3);
        let stubs = sim.topo.stub_nodes();
        let victim = Addr::new(stubs[0], 1);
        let (vapp, _vstats) = VictimApp::new(10_000.0, 400);
        sim.install_app(victim, Box::new(vapp));
        let member = Addr::new(stubs[5], 2);
        let overlay = SosOverlay::install(&mut sim, victim, &[stubs[2]], &[stubs[3]], vec![member]);
        // A non-member hits the SOAP directly.
        sim.emit_now(
            stubs[8],
            PacketBuilder::new(
                Addr::new(stubs[8], 3),
                overlay.soaps[0],
                Proto::TcpSyn,
                TrafficClass::AttackDirect,
            )
            .size(60),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(overlay.soap_stats[0].lock().rejected, 1);
        assert_eq!(overlay.soap_stats[0].lock().relayed, 0);
    }

    #[test]
    fn i3_relays_but_cannot_shield_a_known_ip() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 13);
        let mut sim = Simulator::new(topo, 3);
        let stubs = sim.topo.stub_nodes();
        let victim_node = stubs[0];
        let victim = Addr::new(victim_node, 1);
        let relay_node = stubs[4];
        let i3 = I3Defense::install(&mut sim, victim, relay_node);
        // Victim only serves its trigger; tiny capacity so the direct
        // flood exhausts it.
        let (vapp, vstats) = VictimApp::new(50.0, 400);
        sim.install_app(victim, Box::new(vapp.restrict_sources(vec![i3.trigger])));
        let client = Addr::new(stubs[6], 2);
        let (capp, cstats) = ClientApp::new(i3.trigger, SimDuration::from_millis(200));
        sim.install_app(client, Box::new(capp.until(SimTime::from_secs(8))));
        // Attackers know the victim's real address: direct flood.
        for k in 0..4000u64 {
            let at = SimTime(k * 1_500_000);
            let src_node = stubs[9];
            sim.schedule(at, move |s| {
                s.emit_now(
                    src_node,
                    PacketBuilder::new(
                        Addr::new(src_node, 3),
                        victim,
                        Proto::Udp,
                        TrafficClass::AttackDirect,
                    )
                    .size(100)
                    .flow(k),
                );
            });
        }
        sim.run_until(SimTime::from_secs(8));
        assert!(
            i3.relay_stats.lock().relayed > 0,
            "relay did carry requests"
        );
        // But the known-IP flood exhausted the host anyway.
        let cs = cstats.lock();
        assert!(
            cs.success_ratio() < 0.5,
            "i3 with a known victim IP must fail: {}",
            cs.success_ratio()
        );
        assert!(vstats.lock().overloaded > 0);
    }
}
