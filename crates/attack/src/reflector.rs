//! Reflector servers: innocent, uncompromised Internet services.
//!
//! "Any server that supports a protocol which replies with a packet after
//! it has received a request packet can be misused as a reflector without
//! the need for a server compromise" (Sec. 2.2). The app below behaves like
//! an ordinary server — SYN gets SYN-ACK, DNS query gets a response, echo
//! gets a reply, unexpected TCP gets RST — and therefore reflects spoofed
//! requests at whoever the source field names.
//!
//! The *behaviour* never depends on whether a request is attack or
//! legitimate (reflectors cannot tell — that is the whole point); packet
//! provenance is consulted **only** to label the reply for metrics.

use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::{App, AppApi, Disposition, Packet, PacketBuilder, Proto, TrafficClass};

/// Per-protocol reply sizing for a reflector.
#[derive(Clone, Copy, Debug)]
pub struct ReflectorProfile {
    /// SYN-ACK size in bytes (TCP byte amplification is ~1×; the rate
    /// amplification comes from the reflector fan-out).
    pub synack_size: u32,
    /// DNS response amplification: reply size = request size × this.
    pub dns_amplification: f64,
    /// ICMP echo replies mirror the request size.
    pub echo_mirror: bool,
    /// Reply to unexpected TCP data with RST?
    pub rst_on_unexpected: bool,
}

impl Default for ReflectorProfile {
    fn default() -> Self {
        ReflectorProfile {
            synack_size: 44,
            dns_amplification: 8.0,
            echo_mirror: true,
            rst_on_unexpected: true,
        }
    }
}

/// Counters shared with scenario code.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReflectorStats {
    /// Requests received (any class).
    pub requests: u64,
    /// Replies emitted.
    pub replies: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// Requests that were ground-truth attack traffic (metrics only).
    pub attack_requests: u64,
}

/// Shared handle to reflector counters.
pub type ReflectorHandle = Arc<Mutex<ReflectorStats>>;

/// An innocent server usable as a reflector.
pub struct ReflectorApp {
    profile: ReflectorProfile,
    stats: ReflectorHandle,
}

impl ReflectorApp {
    /// New server with the given profile.
    pub fn new(profile: ReflectorProfile) -> (ReflectorApp, ReflectorHandle) {
        let stats: ReflectorHandle = Arc::new(Mutex::new(ReflectorStats::default()));
        (
            ReflectorApp {
                profile,
                stats: stats.clone(),
            },
            stats,
        )
    }

    /// Metrics-only classification of a reply to `req`.
    fn reply_class(req: &Packet) -> TrafficClass {
        if req.provenance.class.is_attack() {
            TrafficClass::AttackReflected
        } else {
            TrafficClass::LegitReply
        }
    }
}

impl App for ReflectorApp {
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        let reply: Option<(Proto, u32)> = match pkt.proto {
            Proto::TcpSyn => Some((Proto::TcpSynAck, self.profile.synack_size)),
            Proto::DnsQuery => Some((
                Proto::DnsResponse,
                (pkt.size as f64 * self.profile.dns_amplification) as u32,
            )),
            Proto::IcmpEcho if self.profile.echo_mirror => Some((Proto::IcmpEchoReply, pkt.size)),
            Proto::TcpData | Proto::TcpSynAck if self.profile.rst_on_unexpected => {
                Some((Proto::TcpRst, 40))
            }
            _ => None,
        };
        {
            let mut s = self.stats.lock();
            s.requests += 1;
            s.bytes_in += pkt.size as u64;
            if pkt.provenance.class.is_attack() {
                s.attack_requests += 1;
            }
        }
        if let Some((proto, size)) = reply {
            let class = Self::reply_class(pkt);
            let b = PacketBuilder::new(api.self_addr, pkt.src, proto, class)
                .size(size.max(40))
                .flow(pkt.flow)
                .tag(pkt.payload_tag);
            api.send(b);
            let mut s = self.stats.lock();
            s.replies += 1;
            s.bytes_out += size.max(40) as u64;
        }
        Disposition::Consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, NodeId, SimTime, Simulator, Topology};

    /// 0 (sender) — 1 (reflector); replies land back at node 0's addr.
    #[test]
    fn syn_gets_synack_addressed_to_claimed_source() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        let victim = Addr::new(NodeId(2), 1);
        let refl = Addr::new(NodeId(1), 1);
        let (app, stats) = ReflectorApp::new(ReflectorProfile::default());
        sim.install_app(refl, Box::new(app));
        sim.install_app(victim, Box::new(dtcs_netsim::SinkApp));
        // Spoofed SYN: claims the victim as source, emitted at node 0.
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(victim, refl, Proto::TcpSyn, TrafficClass::AttackDirect).size(40),
        );
        sim.run_until(SimTime::from_secs(1));
        let s = stats.lock();
        assert_eq!(s.requests, 1);
        assert_eq!(s.replies, 1);
        assert_eq!(s.attack_requests, 1);
        drop(s);
        // The reflected SYN-ACK reached the victim and is labelled
        // AttackReflected.
        assert_eq!(
            sim.stats
                .class(TrafficClass::AttackReflected)
                .delivered_pkts,
            1
        );
    }

    #[test]
    fn dns_amplifies_bytes() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let refl = Addr::new(NodeId(1), 1);
        let client = Addr::new(NodeId(0), 1);
        let (app, stats) = ReflectorApp::new(ReflectorProfile::default());
        sim.install_app(refl, Box::new(app));
        sim.install_app(client, Box::new(dtcs_netsim::SinkApp));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(client, refl, Proto::DnsQuery, TrafficClass::LegitRequest).size(60),
        );
        sim.run_until(SimTime::from_secs(1));
        let s = stats.lock();
        assert_eq!(s.bytes_in, 60);
        assert_eq!(s.bytes_out, 480, "8x amplification");
        drop(s);
        // Legit request ⇒ reply labelled LegitReply.
        assert_eq!(sim.stats.class(TrafficClass::LegitReply).delivered_pkts, 1);
    }

    #[test]
    fn unexpected_tcp_draws_rst() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let refl = Addr::new(NodeId(1), 1);
        let (app, stats) = ReflectorApp::new(ReflectorProfile::default());
        sim.install_app(refl, Box::new(app));
        sim.install_app(Addr::new(NodeId(0), 1), Box::new(dtcs_netsim::SinkApp));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                refl,
                Proto::TcpData,
                TrafficClass::Background,
            )
            .size(1000),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(stats.lock().replies, 1);
    }

    #[test]
    fn udp_is_not_reflected() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let refl = Addr::new(NodeId(1), 1);
        let (app, stats) = ReflectorApp::new(ReflectorProfile::default());
        sim.install_app(refl, Box::new(app));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                refl,
                Proto::Udp,
                TrafficClass::Background,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        let s = stats.lock();
        assert_eq!(s.requests, 1);
        assert_eq!(s.replies, 0);
    }
}
