//! # dtcs-device — the adaptive traffic-processing device
//!
//! The core mechanism of *Adaptive Distributed Traffic Control Service for
//! DDoS Attack Mitigation* (Dübendorfer, Bossardt, Plattner, IPPS 2005):
//! a programmable device attached beside a router that processes exactly
//! the traffic owned by registered network users, under restrictions that
//! make delegated control safe (Sec. 4.5):
//!
//! * headers (src, dst, TTL) are immutable by construction
//!   ([`view::PacketView`]);
//! * packet rate and traffic volume can only decrease (shrink-only payload
//!   edits, no data-plane emission);
//! * telemetry is charged against a budget proportional to processed
//!   traffic;
//! * every service spec passes the [`safety::SafetyVerifier`] before
//!   instantiation, and misuse-class specs (rewrite/TTL/amplify/redirect)
//!   are rejected with structured reasons.
//!
//! Processing is two-staged per the paper's Fig. 6: the source-address
//! owner's graph first, then the destination-address owner's.
//!
//! ```
//! use dtcs_device::{SafetyVerifier, ServiceSpec, ModuleSpec, SafetyViolation};
//!
//! let verifier = SafetyVerifier::default();
//! // A benign anti-spoofing service verifies...
//! let ok = ServiceSpec::chain("anti-spoofing", vec![ModuleSpec::AntiSpoof]);
//! assert!(verifier.verify(&ok).is_ok());
//! // ...while an amplifying one is rejected with a structured reason.
//! let evil = ServiceSpec::chain("evil", vec![ModuleSpec::Amplify { factor: 100 }]);
//! assert!(matches!(
//!     verifier.verify(&evil),
//!     Err(SafetyViolation::Amplification { module: 0 })
//! ));
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod fluid;
pub mod graph;
pub mod modules;
pub mod owner;
#[cfg(test)]
mod proptests;
pub mod safety;
pub mod spec;
pub mod support;
pub mod trie;
pub mod view;

pub use device::{AdaptiveDevice, DeviceCommand, DeviceHandle, DeviceReply, DeviceStats};
pub use fluid::FluidMatchFilter;
pub use graph::ServiceGraph;
pub use modules::{Module, ModuleAction};
pub use owner::{OwnerId, OwnerTable};
pub use safety::{SafetyVerifier, SafetyViolation};
pub use spec::{
    FilterRule, GraphNodeSpec, MatchExpr, ModuleSpec, ServiceSpec, Stage, TriggerAction,
    TriggerMetric,
};
pub use view::{DeviceContext, DeviceEvent, EntryKind, PacketView};
