//! Experiment harness plumbing: reports, tables, JSON output.

use std::fs;
use std::path::Path;

use serde::Serialize;
use serde_json::Value;

/// One printable + serialisable table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Display rows.
    pub rows: Vec<Vec<String>>,
    /// Raw machine-readable rows.
    pub raw: Vec<Value>,
}

impl Table {
    /// Empty table with a caption and header.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Append a display row plus its machine-readable form.
    pub fn push<T: Serialize>(&mut self, cells: Vec<String>, raw: &T) {
        self.rows.push(cells);
        self.raw
            .push(serde_json::to_value(raw).expect("serialisable row"));
    }

    /// Print aligned.
    pub fn print(&self) {
        println!("\n--- {} ---", self.title);
        dtcs::print_table(&self.header, &self.rows);
    }
}

/// A whole experiment's output.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Experiment id (e.g. "e3").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper anchor (section/figure the experiment reproduces).
    pub anchor: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations recorded by the experiment.
    pub notes: Vec<String>,
}

impl Report {
    /// New report.
    pub fn new(id: &str, title: &str, anchor: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            anchor: anchor.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Attach a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Print everything.
    pub fn print(&self) {
        println!("\n==================================================================");
        println!(
            "{}: {}   [{}]",
            self.id.to_uppercase(),
            self.title,
            self.anchor
        );
        println!("==================================================================");
        for t in &self.tables {
            t.print();
        }
        for n in &self.notes {
            println!("note: {n}");
        }
    }

    /// Write JSON next to the workspace (`results/<id>.json`).
    pub fn save(&self, dir: &Path) {
        fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, serde_json::to_string_pretty(self).expect("json")).expect("write report");
        println!("[saved {}]", path.display());
    }
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Format an optional float cell.
pub fn fopt(v: Option<f64>) -> String {
    match v {
        Some(v) => f(v),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_and_raw_stay_in_sync() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()], &(1, 2));
        t.push(vec!["3".into(), "4".into()], &(3, 4));
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.raw.len(), 2);
        assert_eq!(t.raw[1], serde_json::json!([3, 4]));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = Report::new("eX", "title", "Sec. 0");
        let mut t = Table::new("t", &["k"]);
        t.push(vec!["v".into()], &"v");
        r.table(t);
        r.note("a note");
        let json = serde_json::to_string(&r).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["id"], "eX");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
        assert_eq!(v["notes"][0], "a note");
    }

    #[test]
    fn save_writes_json_file() {
        let dir = std::env::temp_dir().join("dtcs_bench_util_test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = Report::new("etest", "t", "a");
        r.save(&dir);
        let content = std::fs::read_to_string(dir.join("etest.json")).unwrap();
        assert!(content.contains("\"etest\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(1234.0), "1.234e3");
        assert_eq!(f(0.001), "1.000e-3");
        assert_eq!(fopt(None), "-");
        assert_eq!(fopt(Some(2.0)), "2.000");
    }
}
