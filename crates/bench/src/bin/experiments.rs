//! Experiment runner: regenerates every table/figure-equivalent of the
//! reproduced paper (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments [--quick] [--out DIR] [--trace FILE] [--cp-trace FILE]
//!               [--topology T] [--fluid] [all | e1 e2 ...]
//!   experiments --sweep [--replicate N] [--threads N] [--quick] [--out DIR] [ids]
//!   experiments --fluid-equivalence [--quick]
//!   experiments trace-report FILE
//!
//! `--topology {ba400,transit-stub:<n>}` re-points the scale-aware
//! experiments (e2, e3) at a transit-stub internet of at least `n`
//! nodes; `ba400` (the default) keeps each experiment's own topology so
//! golden reports are byte-identical. `--fluid` carries scenario
//! background traffic on the fluid aggregate layer (DESIGN.md §6.8)
//! instead of as discrete CBR packets.
//!
//! `--fluid-equivalence` runs the fluid-vs-discrete cross-check grid and
//! exits non-zero if any victim metric breaches its pinned tolerance —
//! the CI gate for the hybrid engine.
//!
//! `--trace FILE` asks a trace-wired experiment (e2, e3) to capture a JSONL
//! packet flight record of one designated run into FILE. Exactly one
//! experiment id must be selected with it — each traced experiment
//! truncates FILE, so tracing several at once would silently keep only
//! the last. Golden report JSON is unaffected.
//!
//! `--cp-trace FILE` is the control-plane analogue: a wired experiment
//! (currently e13) captures a full JSONL *control transaction* flight
//! record of one designated run into FILE, plus the unified metrics
//! snapshot as `FILE.metrics.json` / `FILE.prom`. The same
//! one-experiment-id rule applies, for the same reason. `trace-report
//! FILE` then replays that record through the convergence-attribution
//! analyzer (exit 1 if any transaction never reached a terminal state).
//!
//! `--sweep` flattens every requested experiment's (scenario × seed)
//! grid into ONE work-stealing pool (all 13 ids are sweep-capable; see
//! `dtcs_bench::sweep`), replicating each cell under `--replicate N`
//! derived seeds (default 32), and writes `<out>/<id>.sweep.json` with
//! mean/stddev/95%-CI columns. `--threads N` (else `RAYON_NUM_THREADS`,
//! else all cores) sets the shard count; report bytes are identical at
//! any value.

use std::path::PathBuf;

const INDEX: &[(&str, &str)] = &[
    (
        "e1",
        "Reflector-attack anatomy: amplification factors [Fig. 1 / Sec. 2.2]",
    ),
    (
        "e2",
        "Scheme comparison under reflector + direct attacks [Sec. 3 + 4.3]",
    ),
    (
        "e3",
        "Spoofed-packet survival vs deployment coverage [Sec. 3.2, Park & Lee]",
    ),
    (
        "e4",
        "Collateral damage of reactive filtering [Secs. 1 / 3.1 / 3.4]",
    ),
    (
        "e5",
        "Stop distance & wasted bandwidth vs TCS coverage [Secs. 4.3 / 6]",
    ),
    ("e6", "Device and rule-table scalability [Sec. 5.3]"),
    (
        "e7",
        "Control-plane latency: registration + deployment [Figs. 4-5 / Sec. 5.1]",
    ),
    ("e8", "Safety of delegated control [Sec. 4.5]"),
    ("e9", "Pushback vs reflector attacks [Sec. 3.1]"),
    (
        "e10",
        "Traceback accuracy + anomaly-reaction latency [Sec. 4.4]",
    ),
    (
        "e11",
        "Botnet recruitment dynamics and attack ramp [Sec. 2.1]",
    ),
    (
        "e12",
        "ISP incentives: attack bandwidth saved per provider [Sec. 4.6]",
    ),
    (
        "e13",
        "Control-plane fault sweep: loss × MTBF vs convergence [Sec. 5.1]",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, title) in INDEX {
            println!("{id:<5} {title}");
        }
        return;
    }
    if args.first().map(String::as_str) == Some("trace-report") {
        let Some(path) = args.get(1) else {
            eprintln!("trace-report takes the path of a --cp-trace JSONL file");
            std::process::exit(2);
        };
        std::process::exit(dtcs_bench::trace_report::run(std::path::Path::new(path)));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let sweep = args.iter().any(|a| a == "--sweep");
    if args.iter().any(|a| a == "--fluid-equivalence") {
        let ok = dtcs_bench::equivalence::run_fluid_equivalence(quick);
        std::process::exit(if ok { 0 } else { 1 });
    }
    let fluid = args.iter().any(|a| a == "--fluid");
    let flag_operand = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let out_dir = flag_operand("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let trace = flag_operand("--trace").map(PathBuf::from);
    let cp_trace = flag_operand("--cp-trace").map(PathBuf::from);
    let replicates: u32 = match flag_operand("--replicate").map(|v| v.parse()) {
        None => 32,
        Some(Ok(n)) if n > 0 => n,
        Some(Ok(0)) => {
            eprintln!(
                "--replicate 0 would run nothing; replicate 0 IS the golden base seed, \
                 so the minimum is 1"
            );
            std::process::exit(2);
        }
        Some(_) => {
            eprintln!("--replicate takes a positive integer");
            std::process::exit(2);
        }
    };
    let threads: usize = match flag_operand("--threads").map(|v| v.parse()) {
        None => dtcs_bench::sweep::default_threads(),
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("--threads takes a positive integer");
            std::process::exit(2);
        }
    };
    let transit_stub: Option<usize> = match flag_operand("--topology").map(String::as_str) {
        None | Some("ba400") => None,
        Some(v) => match v
            .strip_prefix("transit-stub:")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => Some(n),
            None => {
                eprintln!(
                    "--topology takes ba400 or transit-stub:<n> (n a positive node count); \
                     got {v:?}"
                );
                std::process::exit(2);
            }
        },
    };
    // Ids are the non-flag args minus any flag *values* (`--out`'s,
    // `--trace`'s, `--cp-trace`'s, `--replicate`'s, `--threads`' and
    // `--topology`'s operands must not be mistaken for experiment ids).
    let flag_values: Vec<String> = [
        "--out",
        "--trace",
        "--cp-trace",
        "--replicate",
        "--threads",
        "--topology",
    ]
    .iter()
    .filter_map(|&f| flag_operand(f))
    .cloned()
    .collect();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !flag_values.contains(a))
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = dtcs_bench::ALL.iter().map(|s| s.to_string()).collect();
    }
    if (trace.is_some() || cp_trace.is_some()) && ids.len() != 1 {
        let flag = if trace.is_some() {
            "--trace"
        } else {
            "--cp-trace"
        };
        eprintln!(
            "{flag} writes ONE trace file; select exactly one experiment id with it \
             (got {:?})",
            ids
        );
        std::process::exit(2);
    }
    let opts = dtcs_bench::RunOpts {
        quick,
        trace,
        cp_trace,
        transit_stub,
        fluid,
    };

    if sweep {
        let mut grid: Vec<&dyn dtcs_bench::sweep::GridExperiment> = Vec::new();
        for id in &ids {
            match dtcs_bench::sweep_experiment(id) {
                Some(e) => grid.push(e),
                None if dtcs_bench::ALL.contains(&id.as_str()) => {
                    eprintln!("[sweep] {id} has no grid adapter yet; skipping (single-run only)");
                }
                None => {
                    eprintln!("unknown experiment id: {id} (known: {:?})", dtcs_bench::ALL);
                    std::process::exit(2);
                }
            }
        }
        if grid.is_empty() {
            eprintln!(
                "no sweep-capable experiments selected (available: {:?})",
                dtcs_bench::SWEEP_EXPERIMENTS
                    .iter()
                    .map(|e| e.id())
                    .collect::<Vec<_>>()
            );
            std::process::exit(2);
        }
        let outcome = dtcs_bench::sweep::run_sweep(&grid, &opts, replicates, threads);
        for report in &outcome.reports {
            report.print();
            report.save(&out_dir);
        }
        for line in &outcome.health {
            println!("[health] {line}");
        }
        return;
    }

    for id in &ids {
        match dtcs_bench::run_experiment(id, &opts) {
            Some(report) => {
                report.print();
                report.save(&out_dir);
            }
            None => eprintln!("unknown experiment id: {id} (known: {:?})", dtcs_bench::ALL),
        }
    }
}
