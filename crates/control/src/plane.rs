//! The live control plane: protocol agents for the Fig. 4 registration and
//! Fig. 5 deployment sequences.
//!
//! Four roles from the paper's network model (Fig. 3) run as simulator
//! agents exchanging out-of-band control messages with realistic
//! path-propagation delays, so experiment E7 can measure real end-to-end
//! control-plane latency:
//!
//! * [`AuthorityAgent`] — the Internet number authority;
//! * [`TcspAgent`] — the traffic control service provider (one-stop
//!   registration, request fan-out to ISPs);
//! * [`NmsAgent`] — an ISP's network management system, driving the
//!   adaptive devices on that ISP's routers;
//! * [`UserAgent`] — a network user executing register → deploy →
//!   confirm, with a timeout fallback straight to the ISPs when the TCSP
//!   is unreachable (Sec. 5.1: "particularly useful if … the TCSP can no
//!   longer be reached, e.g. because of an ongoing DDoS attack on the
//!   TCSP").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_device::{DeviceCommand, DeviceReply, OwnerId, Stage};
use dtcs_netsim::{
    AgentCtx, ControlMsg, LinkId, NodeAgent, NodeId, Packet, Prefix, SimDuration, SimTime, Verdict,
};

use crate::authority::InternetNumberAuthority;
use crate::catalog::CatalogService;
use crate::identity::{Certificate, UserId};

/// Per-message processing overhead added on top of path propagation.
const PROC_DELAY: SimDuration = SimDuration(2_000_000); // 2 ms

/// Scope of a deployment request (Fig. 5: "the network user may scope the
/// deployment according to different criteria (e.g. only on border routers
/// of stub networks)").
#[derive(Clone, Debug, PartialEq)]
pub enum DeployScope {
    /// Every device-equipped router of every contracted ISP.
    AllManaged,
    /// Only transit routers with stub customers (stub borders).
    StubBorders,
    /// The `k` highest-degree managed routers.
    TopDegree(usize),
    /// An explicit node set.
    Nodes(Vec<NodeId>),
}

/// Why a registration failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistrationError {
    /// The number authority denied ownership of a claimed prefix.
    OwnershipDenied,
}

/// Control-plane messages.
#[derive(Clone, Debug)]
pub enum CpMsg {
    /// User → TCSP: register for the TC service (Fig. 4).
    RegisterRequest {
        /// The requesting user.
        user: UserId,
        /// Claimed prefixes.
        claimed: Vec<Prefix>,
        /// Node to confirm to.
        reply_to: NodeId,
    },
    /// TCSP → authority: verify claimed ownership.
    VerifyOwnership {
        /// Transaction id.
        txn: u64,
        /// The claiming user.
        user: UserId,
        /// Claimed prefixes.
        prefixes: Vec<Prefix>,
        /// Node to answer to.
        reply_to: NodeId,
    },
    /// Authority → TCSP: verification result.
    OwnershipResult {
        /// Transaction id.
        txn: u64,
        /// Ownership confirmed?
        ok: bool,
    },
    /// TCSP → user: registration outcome with certificate.
    RegisterConfirm {
        /// The certificate, or the failure reason.
        result: Result<Certificate, RegistrationError>,
    },
    /// User → TCSP, or user → NMS (fallback): deploy a catalog service.
    DeployRequest {
        /// Authorisation.
        cert: Certificate,
        /// Service to deploy.
        service: CatalogService,
        /// Deployment scope.
        scope: DeployScope,
        /// Transaction id (chosen by the user).
        txn: u64,
        /// Node to confirm to.
        reply_to: NodeId,
        /// When true, the receiving NMS forwards the request to its peer
        /// NMSes (ISP-to-ISP propagation, Sec. 5.1).
        forward_to_peers: bool,
    },
    /// TCSP → NMS: deploy on this ISP's listed routers.
    NmsDeploy {
        /// Authorisation.
        cert: Certificate,
        /// Service to deploy.
        service: CatalogService,
        /// Managed nodes to configure.
        nodes: Vec<NodeId>,
        /// Transaction id.
        txn: u64,
        /// Node to ack to.
        reply_to: NodeId,
    },
    /// NMS → TCSP or user: devices configured.
    NmsAck {
        /// Transaction id.
        txn: u64,
        /// Devices successfully configured.
        configured: usize,
        /// Installs rejected by device safety verifiers.
        rejected: usize,
    },
    /// TCSP → user: whole deployment confirmed.
    DeployConfirm {
        /// Transaction id.
        txn: u64,
        /// Total devices configured.
        configured: usize,
        /// Total rejected installs.
        rejected: usize,
        /// ISPs that acked.
        isps: usize,
    },
    /// User → NMS or TCSP: post-deployment operation (activate, tune,
    /// read logs) relayed to devices.
    OpRequest {
        /// Authorisation.
        cert: Certificate,
        /// Operation to apply on every device of the user's deployment.
        op: UserOp,
        /// Transaction id.
        txn: u64,
        /// Node to confirm to.
        reply_to: NodeId,
    },
}

/// Which control-plane role a message is addressed to. Several roles can
/// share one node (a transit AS may host both the TCSP and its own NMS),
/// and node-level control delivery reaches every agent on the node, so
/// messages carry an explicit addressee role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The traffic control service provider.
    Tcsp,
    /// An ISP network management system.
    Nms,
    /// A network user.
    User,
    /// The Internet number authority.
    Authority,
}

/// Role-addressed control-plane message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Addressee role.
    pub to: Role,
    /// Payload.
    pub msg: CpMsg,
}

/// Post-deployment operations (Sec. 5.1: "activate, modify specific
/// parameters or read logs").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UserOp {
    /// Activate or deactivate the service.
    SetActive(Stage, bool),
    /// Enable/disable one module.
    SetModule(Stage, usize, bool),
}

/// The number authority as an agent.
pub struct AuthorityAgent {
    registry: InternetNumberAuthority,
}

impl AuthorityAgent {
    /// Wrap a registry.
    pub fn new(registry: InternetNumberAuthority) -> AuthorityAgent {
        AuthorityAgent { registry }
    }
}

impl NodeAgent for AuthorityAgent {
    fn name(&self) -> &'static str {
        "number-authority"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Authority {
            return;
        }
        if let CpMsg::VerifyOwnership {
            txn,
            user,
            prefixes,
            reply_to,
        } = &env.msg
        {
            let ok = self.registry.verify_claim(*user, prefixes).is_ok();
            let delay = ctx.path_delay(*reply_to) + PROC_DELAY;
            ctx.send_control(
                *reply_to,
                delay,
                Envelope {
                    to: Role::Tcsp,
                    msg: CpMsg::OwnershipResult { txn: *txn, ok },
                },
            );
        }
    }
}

/// One contracted ISP from the TCSP's point of view.
#[derive(Clone, Debug)]
pub struct IspContract {
    /// Where the ISP's NMS agent lives.
    pub nms_node: NodeId,
    /// Routers (nodes) this ISP manages; each carries an adaptive device.
    pub managed: Vec<NodeId>,
}

struct PendingRegistration {
    user: UserId,
    claimed: Vec<Prefix>,
    reply_to: NodeId,
}

struct PendingDeploy {
    reply_to: NodeId,
    awaiting: usize,
    configured: usize,
    rejected: usize,
    isps_acked: usize,
}

/// TCSP observability.
#[derive(Clone, Debug, Default)]
pub struct TcspStats {
    /// Registrations completed successfully.
    pub registrations_ok: u64,
    /// Registrations denied.
    pub registrations_denied: u64,
    /// Deployment requests fanned out.
    pub deployments: u64,
    /// Requests dropped because the TCSP was marked unavailable.
    pub dropped_unavailable: u64,
}

/// Shared handle to TCSP stats.
pub type TcspHandle = Arc<Mutex<TcspStats>>;

/// The traffic control service provider.
pub struct TcspAgent {
    key: u64,
    authority_node: NodeId,
    cert_lifetime: SimDuration,
    isps: Vec<IspContract>,
    /// Availability switch: scenario code flips this to simulate a DDoS
    /// against the TCSP itself (requests are silently dropped).
    available: Arc<Mutex<bool>>,
    next_txn: u64,
    pending_reg: BTreeMap<u64, PendingRegistration>,
    pending_deploy: BTreeMap<u64, PendingDeploy>,
    stats: TcspHandle,
}

impl TcspAgent {
    /// New TCSP with signing `key` and contracted ISPs. Returns the agent,
    /// its stats handle, and the availability switch.
    pub fn new(
        key: u64,
        authority_node: NodeId,
        isps: Vec<IspContract>,
    ) -> (TcspAgent, TcspHandle, Arc<Mutex<bool>>) {
        let stats: TcspHandle = Arc::new(Mutex::new(TcspStats::default()));
        let available = Arc::new(Mutex::new(true));
        (
            TcspAgent {
                key,
                authority_node,
                cert_lifetime: SimDuration::from_secs(86_400),
                isps,
                available: available.clone(),
                next_txn: 1,
                pending_reg: BTreeMap::new(),
                pending_deploy: BTreeMap::new(),
                stats: stats.clone(),
            },
            stats,
            available,
        )
    }

    fn resolve_scope(ctx: &AgentCtx<'_>, managed: &[NodeId], scope: &DeployScope) -> Vec<NodeId> {
        match scope {
            DeployScope::AllManaged => managed.to_vec(),
            DeployScope::Nodes(set) => managed
                .iter()
                .copied()
                .filter(|n| set.contains(n))
                .collect(),
            DeployScope::StubBorders => managed
                .iter()
                .copied()
                .filter(|&n| {
                    ctx.topo.nodes[n.0].role == dtcs_netsim::NodeRole::Transit
                        && ctx
                            .topo
                            .neighbours(n)
                            .any(|(p, _)| ctx.topo.is_customer_of(p, n))
                })
                .collect(),
            DeployScope::TopDegree(k) => {
                let mut v: Vec<NodeId> = managed.to_vec();
                v.sort_by_key(|&n| (std::cmp::Reverse(ctx.topo.nodes[n.0].degree()), n.0));
                v.truncate(*k);
                v
            }
        }
    }
}

impl NodeAgent for TcspAgent {
    fn name(&self) -> &'static str {
        "tcsp"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Tcsp {
            return;
        }
        if !*self.available.lock() {
            self.stats.lock().dropped_unavailable += 1;
            return;
        }
        match &env.msg {
            CpMsg::RegisterRequest {
                user,
                claimed,
                reply_to,
            } => {
                let txn = self.next_txn;
                self.next_txn += 1;
                self.pending_reg.insert(
                    txn,
                    PendingRegistration {
                        user: *user,
                        claimed: claimed.clone(),
                        reply_to: *reply_to,
                    },
                );
                let delay = ctx.path_delay(self.authority_node) + PROC_DELAY;
                ctx.send_control(
                    self.authority_node,
                    delay,
                    Envelope {
                        to: Role::Authority,
                        msg: CpMsg::VerifyOwnership {
                            txn,
                            user: *user,
                            prefixes: claimed.clone(),
                            reply_to: ctx.node,
                        },
                    },
                );
            }
            CpMsg::OwnershipResult { txn, ok } => {
                let Some(pending) = self.pending_reg.remove(txn) else {
                    return;
                };
                let result = if *ok {
                    self.stats.lock().registrations_ok += 1;
                    Ok(Certificate::issue(
                        self.key,
                        pending.user,
                        pending.claimed,
                        ctx.now + self.cert_lifetime,
                    ))
                } else {
                    self.stats.lock().registrations_denied += 1;
                    Err(RegistrationError::OwnershipDenied)
                };
                let delay = ctx.path_delay(pending.reply_to) + PROC_DELAY;
                ctx.send_control(
                    pending.reply_to,
                    delay,
                    Envelope {
                        to: Role::User,
                        msg: CpMsg::RegisterConfirm { result },
                    },
                );
            }
            CpMsg::DeployRequest {
                cert,
                service,
                scope,
                txn,
                reply_to,
                ..
            } => {
                if !cert.verify(self.key, ctx.now) {
                    return;
                }
                self.stats.lock().deployments += 1;
                let mut awaiting = 0;
                let isps = self.isps.clone();
                for isp in &isps {
                    let nodes = Self::resolve_scope(ctx, &isp.managed, scope);
                    if nodes.is_empty() {
                        continue;
                    }
                    awaiting += 1;
                    let delay = ctx.path_delay(isp.nms_node) + PROC_DELAY;
                    ctx.send_control(
                        isp.nms_node,
                        delay,
                        Envelope {
                            to: Role::Nms,
                            msg: CpMsg::NmsDeploy {
                                cert: cert.clone(),
                                service: service.clone(),
                                nodes,
                                txn: *txn,
                                reply_to: ctx.node,
                            },
                        },
                    );
                }
                self.pending_deploy.insert(
                    *txn,
                    PendingDeploy {
                        reply_to: *reply_to,
                        awaiting,
                        configured: 0,
                        rejected: 0,
                        isps_acked: 0,
                    },
                );
                if awaiting == 0 {
                    // Nothing matched the scope: confirm immediately.
                    let delay = ctx.path_delay(*reply_to) + PROC_DELAY;
                    ctx.send_control(
                        *reply_to,
                        delay,
                        Envelope {
                            to: Role::User,
                            msg: CpMsg::DeployConfirm {
                                txn: *txn,
                                configured: 0,
                                rejected: 0,
                                isps: 0,
                            },
                        },
                    );
                    self.pending_deploy.remove(txn);
                }
            }
            CpMsg::NmsAck {
                txn,
                configured,
                rejected,
            } => {
                let done = {
                    let Some(p) = self.pending_deploy.get_mut(txn) else {
                        return;
                    };
                    p.configured += configured;
                    p.rejected += rejected;
                    p.isps_acked += 1;
                    p.isps_acked >= p.awaiting
                };
                if done {
                    let p = self.pending_deploy.remove(txn).expect("just checked");
                    let delay = ctx.path_delay(p.reply_to) + PROC_DELAY;
                    ctx.send_control(
                        p.reply_to,
                        delay,
                        Envelope {
                            to: Role::User,
                            msg: CpMsg::DeployConfirm {
                                txn: *txn,
                                configured: p.configured,
                                rejected: p.rejected,
                                isps: p.isps_acked,
                            },
                        },
                    );
                }
            }
            CpMsg::OpRequest {
                cert,
                op,
                txn,
                reply_to,
            } => {
                if !cert.verify(self.key, ctx.now) {
                    return;
                }
                // Relay to every contracted NMS.
                for isp in self.isps.clone() {
                    let delay = ctx.path_delay(isp.nms_node) + PROC_DELAY;
                    ctx.send_control(
                        isp.nms_node,
                        delay,
                        Envelope {
                            to: Role::Nms,
                            msg: CpMsg::OpRequest {
                                cert: cert.clone(),
                                op: *op,
                                txn: *txn,
                                reply_to: *reply_to,
                            },
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

struct NmsPendingDeploy {
    txn: u64,
    reply_to: NodeId,
    reply_role: Role,
    awaiting: usize,
    configured: usize,
    rejected: usize,
}

/// An ISP's network management system.
pub struct NmsAgent {
    tcsp_key: u64,
    /// Device-equipped routers this ISP manages.
    managed: Vec<NodeId>,
    /// Peer NMS nodes for ISP-to-ISP forwarding.
    peers: Vec<NodeId>,
    pending: Vec<NmsPendingDeploy>,
    /// Deployments this NMS has executed (service name, node count).
    pub log: Vec<(String, usize)>,
}

impl NmsAgent {
    /// New NMS managing `managed` routers.
    pub fn new(tcsp_key: u64, managed: Vec<NodeId>, peers: Vec<NodeId>) -> NmsAgent {
        NmsAgent {
            tcsp_key,
            managed,
            peers,
            pending: Vec::new(),
            log: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deploy_on(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        cert: &Certificate,
        service: &CatalogService,
        nodes: &[NodeId],
        txn: u64,
        reply_to: NodeId,
        reply_role: Role,
    ) {
        let owner = OwnerId(cert.user.0);
        let stage = service.stage();
        let spec = service.compile();
        let contact = reply_to; // telemetry goes to the requesting user
        let mut sent = 0;
        for &node in nodes {
            if !self.managed.contains(&node) {
                continue;
            }
            let delay = ctx.path_delay(node) + PROC_DELAY;
            ctx.send_control(
                node,
                delay,
                DeviceCommand::RegisterOwner {
                    owner,
                    prefixes: cert.prefixes.clone(),
                    contact,
                },
            );
            ctx.send_control(
                node,
                delay + PROC_DELAY,
                DeviceCommand::InstallService {
                    owner,
                    stage,
                    spec: spec.clone(),
                },
            );
            sent += 1;
        }
        self.log.push((spec.name.clone(), sent));
        self.pending.push(NmsPendingDeploy {
            txn,
            reply_to,
            reply_role,
            awaiting: sent,
            configured: 0,
            rejected: 0,
        });
        if sent == 0 {
            self.finish_if_done(ctx, self.pending.len() - 1);
        }
    }

    fn finish_if_done(&mut self, ctx: &mut AgentCtx<'_>, idx: usize) {
        let p = &self.pending[idx];
        if p.configured + p.rejected >= p.awaiting {
            let delay = ctx.path_delay(p.reply_to) + PROC_DELAY;
            ctx.send_control(
                p.reply_to,
                delay,
                Envelope {
                    to: p.reply_role,
                    msg: CpMsg::NmsAck {
                        txn: p.txn,
                        configured: p.configured,
                        rejected: p.rejected,
                    },
                },
            );
            self.pending.remove(idx);
        }
    }
}

impl NodeAgent for NmsAgent {
    fn name(&self) -> &'static str {
        "isp-nms"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        if let Some(reply) = msg.get::<DeviceReply>() {
            match reply {
                DeviceReply::InstallOk { .. } => {
                    if let Some(idx) = self
                        .pending
                        .iter()
                        .position(|p| p.configured + p.rejected < p.awaiting)
                    {
                        self.pending[idx].configured += 1;
                        self.finish_if_done(ctx, idx);
                    }
                }
                DeviceReply::InstallRejected { .. } => {
                    if let Some(idx) = self
                        .pending
                        .iter()
                        .position(|p| p.configured + p.rejected < p.awaiting)
                    {
                        self.pending[idx].rejected += 1;
                        self.finish_if_done(ctx, idx);
                    }
                }
                _ => {}
            }
            return;
        }
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Nms {
            return;
        }
        match &env.msg {
            CpMsg::NmsDeploy {
                cert,
                service,
                nodes,
                txn,
                reply_to,
            } => {
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let nodes = nodes.clone();
                self.deploy_on(
                    ctx,
                    &cert.clone(),
                    &service.clone(),
                    &nodes,
                    *txn,
                    *reply_to,
                    Role::Tcsp,
                );
            }
            CpMsg::DeployRequest {
                cert,
                service,
                scope,
                txn,
                reply_to,
                forward_to_peers,
            } => {
                // Direct user → ISP path (TCSP fallback).
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let nodes = TcspAgent::resolve_scope(ctx, &self.managed.clone(), scope);
                self.deploy_on(
                    ctx,
                    &cert.clone(),
                    &service.clone(),
                    &nodes,
                    *txn,
                    *reply_to,
                    Role::User,
                );
                if *forward_to_peers {
                    for peer in self.peers.clone() {
                        let delay = ctx.path_delay(peer) + PROC_DELAY;
                        ctx.send_control(
                            peer,
                            delay,
                            Envelope {
                                to: Role::Nms,
                                msg: CpMsg::DeployRequest {
                                    cert: cert.clone(),
                                    service: service.clone(),
                                    scope: scope.clone(),
                                    txn: *txn,
                                    reply_to: *reply_to,
                                    forward_to_peers: false, // one-hop fan-out
                                },
                            },
                        );
                    }
                }
            }
            CpMsg::OpRequest { cert, op, .. } => {
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let owner = OwnerId(cert.user.0);
                for &node in &self.managed.clone() {
                    let delay = ctx.path_delay(node) + PROC_DELAY;
                    let cmd = match op {
                        UserOp::SetActive(stage, active) => DeviceCommand::SetServiceActive {
                            owner,
                            stage: *stage,
                            active: *active,
                        },
                        UserOp::SetModule(stage, module, enabled) => {
                            DeviceCommand::SetModuleEnabled {
                                owner,
                                stage: *stage,
                                module: *module,
                                enabled: *enabled,
                            }
                        }
                    };
                    ctx.send_control(node, delay, cmd);
                }
            }
            _ => {}
        }
    }
}

/// What a user agent records, for experiment E7.
#[derive(Clone, Debug, Default)]
pub struct UserRecord {
    /// Certificate received at.
    pub registered_at: Option<SimTime>,
    /// The certificate.
    pub cert: Option<Certificate>,
    /// Registration denied?
    pub denied: bool,
    /// Deployment confirmed at.
    pub deploy_confirmed_at: Option<SimTime>,
    /// Devices configured per the confirmation.
    pub devices_configured: usize,
    /// Rejected installs per the confirmation.
    pub installs_rejected: usize,
    /// ISP acks received on the fallback path.
    pub fallback_acks: usize,
    /// Did the user fall back to direct-ISP deployment?
    pub used_fallback: bool,
}

/// Shared handle to a user's record.
pub type UserHandle = Arc<Mutex<UserRecord>>;

/// Timer token scenario code passes to
/// [`Simulator::schedule_agent_timer`](dtcs_netsim::Simulator::schedule_agent_timer)
/// to kick off a user agent's registration sequence.
pub const TOKEN_REGISTER: u64 = 1;
const T_DEPLOY: u64 = 2;
const T_TIMEOUT: u64 = 3;

/// A network user driving registration and deployment.
pub struct UserAgent {
    /// User identity.
    pub user: UserId,
    /// Prefixes to claim.
    pub claim: Vec<Prefix>,
    /// TCSP location.
    pub tcsp_node: NodeId,
    /// Service to deploy once registered.
    pub service: CatalogService,
    /// Deployment scope.
    pub scope: DeployScope,
    /// When to start registering.
    pub register_at: SimTime,
    /// Timeout before falling back to direct-ISP deployment.
    pub deploy_timeout: SimDuration,
    /// Pause between receiving the certificate and sending the deploy
    /// request (lets scenarios stage TCSP outages between the two).
    pub deploy_delay: SimDuration,
    /// NMS nodes for the fallback path (first entry is contacted, with
    /// peer forwarding on).
    pub fallback_nms: Vec<NodeId>,
    txn: u64,
    record: UserHandle,
    started_deploy: bool,
}

impl UserAgent {
    /// New user agent; returns the shared record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        user: UserId,
        claim: Vec<Prefix>,
        tcsp_node: NodeId,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
    ) -> (UserAgent, UserHandle) {
        let record: UserHandle = Arc::new(Mutex::new(UserRecord::default()));
        (
            UserAgent {
                user,
                claim,
                tcsp_node,
                service,
                scope,
                register_at,
                deploy_timeout: SimDuration::from_secs(5),
                deploy_delay: SimDuration::ZERO,
                fallback_nms: Vec::new(),
                txn: (user.0 << 16) | 1,
                record: record.clone(),
                started_deploy: false,
            },
            record,
        )
    }

    /// Configure the fallback NMS list.
    pub fn with_fallback(mut self, nms: Vec<NodeId>) -> UserAgent {
        self.fallback_nms = nms;
        self
    }

    /// Configure the pause between registration and deployment.
    pub fn with_deploy_delay(mut self, delay: SimDuration) -> UserAgent {
        self.deploy_delay = delay;
        self
    }
}

impl NodeAgent for UserAgent {
    fn name(&self) -> &'static str {
        "tcs-user"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        match token {
            TOKEN_REGISTER => {
                let delay = ctx.path_delay(self.tcsp_node) + PROC_DELAY;
                ctx.send_control(
                    self.tcsp_node,
                    delay,
                    Envelope {
                        to: Role::Tcsp,
                        msg: CpMsg::RegisterRequest {
                            user: self.user,
                            claimed: self.claim.clone(),
                            reply_to: ctx.node,
                        },
                    },
                );
            }
            T_DEPLOY => {
                let cert = { self.record.lock().cert.clone() };
                let Some(cert) = cert else { return };
                self.txn += 1;
                let delay = ctx.path_delay(self.tcsp_node) + PROC_DELAY;
                ctx.send_control(
                    self.tcsp_node,
                    delay,
                    Envelope {
                        to: Role::Tcsp,
                        msg: CpMsg::DeployRequest {
                            cert,
                            service: self.service.clone(),
                            scope: self.scope.clone(),
                            txn: self.txn,
                            reply_to: ctx.node,
                            forward_to_peers: false,
                        },
                    },
                );
                ctx.set_timer(self.deploy_timeout, T_TIMEOUT);
            }
            T_TIMEOUT => {
                let confirmed = self.record.lock().deploy_confirmed_at.is_some();
                if confirmed || self.fallback_nms.is_empty() {
                    return;
                }
                // TCSP unreachable: go straight to the ISPs.
                let cert = { self.record.lock().cert.clone() };
                let Some(cert) = cert else { return };
                self.record.lock().used_fallback = true;
                self.txn += 1;
                let first = self.fallback_nms[0];
                let delay = ctx.path_delay(first) + PROC_DELAY;
                ctx.send_control(
                    first,
                    delay,
                    Envelope {
                        to: Role::Nms,
                        msg: CpMsg::DeployRequest {
                            cert,
                            service: self.service.clone(),
                            scope: self.scope.clone(),
                            txn: self.txn,
                            reply_to: ctx.node,
                            forward_to_peers: true,
                        },
                    },
                );
            }
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::User {
            return;
        }
        match &env.msg {
            CpMsg::RegisterConfirm { result } => match result {
                Ok(cert) => {
                    {
                        let mut r = self.record.lock();
                        r.registered_at = Some(ctx.now);
                        r.cert = Some(cert.clone());
                    }
                    if !self.started_deploy {
                        self.started_deploy = true;
                        ctx.set_timer(self.deploy_delay, T_DEPLOY);
                    }
                }
                Err(_) => {
                    self.record.lock().denied = true;
                }
            },
            CpMsg::DeployConfirm {
                configured,
                rejected,
                ..
            } => {
                let mut r = self.record.lock();
                if r.deploy_confirmed_at.is_none() {
                    r.deploy_confirmed_at = Some(ctx.now);
                }
                r.devices_configured += configured;
                r.installs_rejected += rejected;
            }
            CpMsg::NmsAck {
                configured,
                rejected,
                ..
            } => {
                // Fallback path: NMS acks come straight to the user.
                let mut r = self.record.lock();
                r.fallback_acks += 1;
                r.devices_configured += configured;
                r.installs_rejected += rejected;
                if r.deploy_confirmed_at.is_none() {
                    r.deploy_confirmed_at = Some(ctx.now);
                }
            }
            _ => {}
        }
    }
}
