//! Service graphs: composed module chains (Click-style composition,
//! Sec. 5.2 — "services are composed of components that are arranged as
//! directed graphs"). The runtime graph is a sequence of modules with
//! per-module enable bits; triggers flip those bits at run time, which is
//! how "predefined additional configurations" are staged dormant and
//! activated under attack (Sec. 4.2).

use dtcs_netsim::{LinkId, SimTime};

use crate::modules::{instantiate, Module, ModuleAction};
use crate::owner::OwnerId;
use crate::spec::ServiceSpec;
use crate::support::LogEntry;
use crate::view::{DeviceContext, DeviceEvent, EntryKind, ModuleEnv, PacketView};

struct GraphNode {
    module: Box<dyn Module>,
    enabled: bool,
}

/// An instantiated service graph for one `(owner, stage)` slot.
pub struct ServiceGraph {
    /// Service name from the spec.
    pub name: String,
    /// Whole-service activation switch (control plane sets this).
    pub active: bool,
    /// Primitive rule count (E6 scalability unit).
    pub rule_count: usize,
    /// Fingerprint of the installing spec
    /// ([`ServiceSpec::content_hash`]) — the install idempotency key and
    /// the unit the NMS reconciliation sweep compares.
    pub spec_hash: u64,
    nodes: Vec<GraphNode>,
    activations: Vec<(usize, bool)>,
    /// Packets that traversed this graph.
    pub packets: u64,
    /// Packets this graph dropped.
    pub dropped: u64,
}

impl ServiceGraph {
    /// Instantiate a spec. The caller must have run the
    /// [`SafetyVerifier`](crate::safety::SafetyVerifier) first; forbidden
    /// modules panic in [`instantiate`].
    pub fn from_spec(spec: &ServiceSpec) -> ServiceGraph {
        ServiceGraph {
            name: spec.name.clone(),
            active: true,
            rule_count: spec.rule_count(),
            spec_hash: spec.content_hash(),
            nodes: spec
                .modules
                .iter()
                .map(|n| GraphNode {
                    module: instantiate(&n.module),
                    enabled: n.enabled,
                })
                .collect(),
            activations: Vec::new(),
            packets: 0,
            dropped: 0,
        }
    }

    /// Run one packet through the graph.
    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        now: SimTime,
        ctx: &DeviceContext,
        entry: &EntryKind,
        spoof_suspect: bool,
        from: Option<LinkId>,
        owner: OwnerId,
        events: &mut Vec<DeviceEvent>,
        view: &mut PacketView<'_>,
    ) -> ModuleAction {
        if !self.active {
            return ModuleAction::Pass;
        }
        self.packets += 1;
        let mut action = ModuleAction::Pass;
        for node in &mut self.nodes {
            if !node.enabled {
                continue;
            }
            let mut env = ModuleEnv {
                now,
                ctx,
                entry,
                spoof_suspect,
                from,
                owner,
                events,
                activations: &mut self.activations,
            };
            action = node.module.process(&mut env, view);
            if let ModuleAction::Drop(_) = action {
                self.dropped += 1;
                break;
            }
        }
        // Apply trigger (de)activations after the packet completes, so a
        // trigger cannot change what the *current* packet experiences.
        let acts: Vec<_> = self.activations.drain(..).collect();
        for (idx, enable) in acts {
            if let Some(n) = self.nodes.get_mut(idx) {
                n.enabled = enable;
            }
        }
        action
    }

    /// Directly flip a module's enable bit (control-plane operation).
    pub fn set_module_enabled(&mut self, idx: usize, enabled: bool) -> bool {
        match self.nodes.get_mut(idx) {
            Some(n) => {
                n.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Is the module at `idx` currently enabled?
    pub fn module_enabled(&self, idx: usize) -> Option<bool> {
        self.nodes.get(idx).map(|n| n.enabled)
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward a traceback digest query to the graph's backlog modules.
    pub fn query_digest(&self, digest: u64, from: SimTime, to: SimTime) -> Option<bool> {
        let mut any_backlog = false;
        for n in &self.nodes {
            if let Some(hit) = n.module.query_digest(digest, from, to) {
                any_backlog = true;
                if hit {
                    return Some(true);
                }
            }
        }
        if any_backlog {
            Some(false)
        } else {
            None
        }
    }

    /// Drain every logger module's entries.
    pub fn drain_logs(&mut self) -> Vec<LogEntry> {
        let mut out = Vec::new();
        for n in &mut self.nodes {
            if let Some(mut entries) = n.module.drain_log() {
                out.append(&mut entries);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FilterRule, GraphNodeSpec, MatchExpr, ModuleSpec};
    use dtcs_netsim::{Addr, NodeId, Packet, PacketBuilder, Prefix, Proto, TrafficClass};

    fn mk_pkt(proto: Proto) -> Packet {
        PacketBuilder::new(
            Addr::new(NodeId(1), 1),
            Addr::new(NodeId(2), 1),
            proto,
            TrafficClass::Background,
        )
        .size(100)
        .build(1, NodeId(1))
    }

    fn dctx() -> DeviceContext {
        DeviceContext {
            node: NodeId(0),
            local_prefixes: vec![Prefix::of_node(NodeId(0))],
            is_transit: true,
        }
    }

    fn run(
        g: &mut ServiceGraph,
        pkt: &mut Packet,
        now: SimTime,
        events: &mut Vec<DeviceEvent>,
    ) -> ModuleAction {
        let ctx = dctx();
        let entry = EntryKind::Transit;
        let mut view = PacketView::new(pkt);
        g.process(
            now,
            &ctx,
            &entry,
            false,
            None,
            OwnerId(1),
            events,
            &mut view,
        )
    }

    fn drop_udp_spec() -> ServiceSpec {
        ServiceSpec::chain(
            "drop-udp",
            vec![ModuleSpec::Filter {
                rules: vec![FilterRule {
                    expr: MatchExpr::proto(Proto::Udp),
                    drop: true,
                }],
            }],
        )
    }

    #[test]
    fn graph_drops_and_counts() {
        let mut g = ServiceGraph::from_spec(&drop_udp_spec());
        let mut events = Vec::new();
        let mut p = mk_pkt(Proto::Udp);
        assert!(matches!(
            run(&mut g, &mut p, SimTime::ZERO, &mut events),
            ModuleAction::Drop(_)
        ));
        let mut p = mk_pkt(Proto::TcpData);
        assert_eq!(
            run(&mut g, &mut p, SimTime::ZERO, &mut events),
            ModuleAction::Pass
        );
        assert_eq!(g.packets, 2);
        assert_eq!(g.dropped, 1);
    }

    #[test]
    fn inactive_graph_passes_everything() {
        let mut g = ServiceGraph::from_spec(&drop_udp_spec());
        g.active = false;
        let mut events = Vec::new();
        let mut p = mk_pkt(Proto::Udp);
        assert_eq!(
            run(&mut g, &mut p, SimTime::ZERO, &mut events),
            ModuleAction::Pass
        );
        assert_eq!(g.packets, 0);
    }

    #[test]
    fn disabled_module_is_skipped_until_enabled() {
        let spec = ServiceSpec {
            name: "staged".into(),
            modules: vec![GraphNodeSpec {
                module: ModuleSpec::Filter {
                    rules: vec![FilterRule {
                        expr: MatchExpr::any(),
                        drop: true,
                    }],
                },
                enabled: false,
            }],
        };
        let mut g = ServiceGraph::from_spec(&spec);
        let mut events = Vec::new();
        let mut p = mk_pkt(Proto::Udp);
        assert_eq!(
            run(&mut g, &mut p, SimTime::ZERO, &mut events),
            ModuleAction::Pass
        );
        assert!(g.set_module_enabled(0, true));
        let mut p = mk_pkt(Proto::Udp);
        assert!(matches!(
            run(&mut g, &mut p, SimTime::ZERO, &mut events),
            ModuleAction::Drop(_)
        ));
        assert!(!g.set_module_enabled(9, true));
    }

    #[test]
    fn query_digest_none_without_backlog() {
        let g = ServiceGraph::from_spec(&drop_udp_spec());
        assert_eq!(g.query_digest(1, SimTime::ZERO, SimTime::ZERO), None);
    }

    #[test]
    fn drain_logs_collects_from_loggers() {
        let spec = ServiceSpec::chain(
            "log",
            vec![ModuleSpec::Logger {
                capacity: 8,
                sample_one_in: 1,
            }],
        );
        let mut g = ServiceGraph::from_spec(&spec);
        let mut events = Vec::new();
        for _ in 0..5 {
            let mut p = mk_pkt(Proto::Udp);
            run(&mut g, &mut p, SimTime::ZERO, &mut events);
        }
        assert_eq!(g.drain_logs().len(), 5);
        assert_eq!(g.drain_logs().len(), 0);
    }
}
