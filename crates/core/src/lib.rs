//! # dtcs — Adaptive Distributed Traffic Control Service
//!
//! Umbrella crate of the reproduction of *Adaptive Distributed Traffic
//! Control Service for DDoS Attack Mitigation* (Dübendorfer, Bossardt,
//! Plattner — IPPS 2005). It ties the workspace together:
//!
//! * [`dtcs_netsim`] — the deterministic packet-level Internet simulator;
//! * [`dtcs_device`] — the adaptive traffic-processing device (the
//!   paper's core mechanism);
//! * [`dtcs_control`] — TCSP / number authority / ISP NMS control plane;
//! * [`dtcs_attack`] — reflector attacks, floods, botnets, workloads;
//! * [`dtcs_mitigation`] — the prior-art baselines of the paper's Sec. 3;
//!
//! and adds the comparison machinery: [`Scheme`] (every defense as one
//! enum), [`run_scenario`] (one attack + one workload + one scheme →
//! metrics row), and [`deploy_tcs_static`] (standing TCS deployments for
//! sweeps).
//!
//! ```no_run
//! use dtcs::{run_scenario, ScenarioConfig, Scheme, TcsStaticConfig};
//!
//! let cfg = ScenarioConfig::default();
//! let out = run_scenario(&cfg, &Scheme::Tcs(TcsStaticConfig::default()));
//! println!("legit success under TCS: {:.3}", out.row.legit_success);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod scenario;
pub mod schemes;
pub mod tcs;

pub use metrics::{drop_fraction, print_table, OutcomeRow};
pub use scenario::{
    pick_nodes, run_scenario, AttackKind, BackgroundSpec, ScenarioConfig, ScenarioOutput,
    TopologyChoice, TraceSpec,
};
pub use schemes::Scheme;
pub use tcs::{deploy_tcs_static, reflected_reply_protos, TcsDeployment, TcsStaticConfig};

pub use dtcs_attack as attack;
pub use dtcs_control as control;
pub use dtcs_device as device;
pub use dtcs_mitigation as mitigation;
pub use dtcs_netsim as netsim;
