//! # dtcs-bench — experiment harness
//!
//! One module per experiment of EXPERIMENTS.md (E1–E11), each regenerating
//! a table/figure-equivalent of the reproduced paper. The `experiments`
//! binary runs them and writes JSON reports under `results/`.

#![warn(missing_docs)]

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod equivalence;
pub mod sweep;
pub mod trace_report;
pub mod util;

use util::Report;

/// Options shared by every experiment runner.
#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Shrunk sweeps suitable for CI (`--quick`).
    pub quick: bool,
    /// Write a JSONL packet trace of a designated run to this path
    /// (`--trace PATH`). Only experiments that wire a flight recorder
    /// honour it (currently e2 and e3). Each traced experiment truncates
    /// and rewrites the file, so the `experiments` binary refuses
    /// `--trace` with more than one experiment id rather than silently
    /// keeping only the last trace.
    pub trace: Option<std::path::PathBuf>,
    /// Write a JSONL *control-plane* flight record (`--cp-trace PATH`):
    /// every register → deploy → install → confirm lifecycle event of one
    /// designated run, captured with full (1-in-1) transaction sampling.
    /// Only experiments that wire the control recorder honour it
    /// (currently e13, which traces its 20%-loss crash-churn cell, and
    /// e14, which traces its longest-partition shortest-lease cell).
    /// Alongside `PATH` the traced experiment writes `PATH.metrics.json`
    /// and `PATH.prom` — the unified [`dtcs::netsim::MetricsSnapshot`]
    /// registry of that run in JSON and Prometheus text form. Tracing is
    /// observation-only: golden report JSON is byte-identical with it on
    /// or off. Same single-id rule as `trace`.
    pub cp_trace: Option<std::path::PathBuf>,
    /// Swap the scenario graph for a transit-stub internet of at least
    /// this many nodes (`--topology transit-stub:<n>`). `None` keeps
    /// each experiment's default topology family, so golden reports are
    /// untouched.
    pub transit_stub: Option<usize>,
    /// Carry scenario background traffic on the fluid aggregate layer
    /// (`--fluid`) instead of as discrete CBR packets.
    pub fluid: bool,
}

impl RunOpts {
    /// Quick-mode options with no tracing.
    pub fn quick() -> RunOpts {
        RunOpts {
            quick: true,
            ..Default::default()
        }
    }

    /// Apply the scale axes to a scenario config. Default options leave
    /// the config untouched (golden reports stay byte-identical);
    /// `--topology transit-stub:<n>` swaps the graph and installs a
    /// node-proportional background workload so the larger internet
    /// actually carries load, and `--fluid` moves that background onto
    /// the fluid engine with a 50 ms admission tick.
    pub fn apply_scale(&self, cfg: &mut dtcs::ScenarioConfig) {
        if let Some(n) = self.transit_stub {
            cfg.topology = dtcs::TopologyChoice::TransitStub { n };
            cfg.background.n_flows = (n / 20).clamp(100, 5_000);
        }
        if self.fluid {
            if cfg.background.n_flows == 0 {
                cfg.background.n_flows = 100;
            }
            cfg.fluid = Some(dtcs::netsim::SimDuration::from_millis(50));
        }
    }
}

/// One registered experiment: its id and runner.
type ExperimentEntry = (&'static str, fn(&RunOpts) -> Report);

/// The experiment registry — the *single* source of truth for dispatch.
/// [`ALL`] and [`run_experiment`] both derive from this table, so adding
/// an experiment (say e13) is one new row here plus its module; the id
/// list and the dispatch can no longer drift apart.
pub const EXPERIMENTS: [ExperimentEntry; 14] = [
    ("e1", e1::run),
    ("e2", e2::run),
    ("e3", e3::run),
    ("e4", e4::run),
    ("e5", e5::run),
    ("e6", e6::run),
    ("e7", e7::run),
    ("e8", e8::run),
    ("e9", e9::run),
    ("e10", e10::run),
    ("e11", e11::run),
    ("e12", e12::run),
    ("e13", e13::run),
    ("e14", e14::run),
];

/// All experiment ids in order (derived from [`EXPERIMENTS`]).
pub const ALL: [&str; EXPERIMENTS.len()] = {
    let mut ids = [""; EXPERIMENTS.len()];
    let mut i = 0;
    while i < EXPERIMENTS.len() {
        ids[i] = EXPERIMENTS[i].0;
        i += 1;
    }
    ids
};

/// Run one experiment by id.
pub fn run_experiment(id: &str, opts: &RunOpts) -> Option<Report> {
    EXPERIMENTS
        .iter()
        .find(|(eid, _)| *eid == id)
        .map(|&(_, run)| run(opts))
}

/// Experiments ported onto the sweep engine's [`sweep::GridExperiment`]
/// trait (`--sweep` mode). Every registered experiment is sweep-capable;
/// a new experiment must ship its cell adapter alongside its `run()`
/// (enforced by the registry-completeness test in [`sweep`]).
pub static SWEEP_EXPERIMENTS: [&dyn sweep::GridExperiment; 14] = [
    &e1::Sweep,
    &e2::Sweep,
    &e3::Sweep,
    &e4::Sweep,
    &e5::Sweep,
    &e6::Sweep,
    &e7::Sweep,
    &e8::Sweep,
    &e9::Sweep,
    &e10::Sweep,
    &e11::Sweep,
    &e12::Sweep,
    &e13::Sweep,
    &e14::Sweep,
];

/// Look up a sweep-capable experiment by id.
pub fn sweep_experiment(id: &str) -> Option<&'static dyn sweep::GridExperiment> {
    SWEEP_EXPERIMENTS.iter().find(|e| e.id() == id).copied()
}
