//! Packet flight recorder and telemetry: deterministic lifecycle tracing,
//! log2 histograms and per-link utilization sampling (DESIGN.md §6.4).
//!
//! The simulator emits a [`TraceEvent`] at each step of a packet's life —
//! emission, per-hop link admission or tail drop (with the instantaneous
//! virtual-queue backlog), module verdicts from agents (ingress filters,
//! adaptive devices), and final delivery. Events flow into a [`TraceSink`];
//! the stock sink is a bounded ring buffer ([`FlightRecorder`]) exportable
//! as JSONL.
//!
//! Determinism is load-bearing: whether a packet is traced is decided by a
//! [`Sampler`] hashing the packet id against a seed-derived salt — never by
//! wall-clock, thread identity or sink back-pressure — so the same topology
//! + seed + sampling rate reproduces a byte-identical JSONL file on every
//! platform, and a sampled trace is an exact subset of the full trace.
//!
//! The disabled path is one branch: with no sink installed,
//! [`Tracer::wants`] is a `None` check and no event is ever constructed.
//! The `trace_overhead` bench in `dtcs-bench` holds this to ≤2% on the
//! engine hot path.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::sync::{Arc, Mutex};

use crate::node::{LinkId, NodeId};
use crate::packet::{Packet, Proto, TrafficClass};
use crate::rng::child_seed;
use crate::stats::DropReason;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Stream label used to derive the trace sampler's salt from the simulator
/// seed (see [`crate::rng::child_seed`]); distinct from every workload
/// stream so enabling tracing perturbs no other randomness.
pub const TRACE_STREAM_LABEL: u64 = 0x7472_6163_653a_3031; // "trace:01"

/// One step in a traced packet's life.
///
/// Every variant carries the wall-sim timestamp `t` (nanoseconds) and the
/// packet id `pkt`; drop-flavoured variants also carry the ground-truth
/// class, size and hop count so traces reconcile exactly with
/// [`crate::stats::Stats`] counters without a join against `Emit` events
/// (the emission may have been evicted from the ring).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Packet entered the network at `node`.
    Emit {
        /// Timestamp (ns).
        t: u64,
        /// Packet id.
        pkt: u64,
        /// Emitting node.
        node: NodeId,
        /// Claimed source address.
        src: crate::addr::Addr,
        /// Destination address.
        dst: crate::addr::Addr,
        /// Protocol.
        proto: Proto,
        /// Ground-truth class.
        class: TrafficClass,
        /// Wire size (bytes).
        size: u32,
        /// Flow id.
        flow: u64,
    },
    /// Packet admitted to a link's virtual queue while being forwarded out
    /// of `from`.
    LinkAdmit {
        /// Timestamp (ns).
        t: u64,
        /// Packet id.
        pkt: u64,
        /// Link traversed.
        link: LinkId,
        /// Forwarding node.
        from: NodeId,
        /// Far endpoint the packet is now in flight toward.
        to: NodeId,
        /// Virtual-queue backlog (bytes) ahead of this packet at admission.
        backlog: u64,
        /// Arrival instant at the far end (ns).
        arrive: u64,
    },
    /// Packet tail-dropped at a link queue (maps to
    /// [`DropReason::QueueOverflow`] in [`crate::stats::Stats`]).
    LinkDrop {
        /// Timestamp (ns).
        t: u64,
        /// Packet id.
        pkt: u64,
        /// Congested link.
        link: LinkId,
        /// Forwarding node that lost the packet.
        from: NodeId,
        /// Virtual-queue backlog (bytes) that forced the drop.
        backlog: u64,
        /// Ground-truth class.
        class: TrafficClass,
        /// Wire size (bytes).
        size: u32,
        /// Hops traversed before the drop.
        hops: u8,
    },
    /// A module (agent chain entry, host, or the engine itself) decided to
    /// drop the packet at `node`.
    ModuleVerdict {
        /// Timestamp (ns).
        t: u64,
        /// Packet id.
        pkt: u64,
        /// Node where the verdict was rendered.
        node: NodeId,
        /// Stable module name ([`crate::agent::NodeAgent::name`], `"host"`
        /// for receiver overload, `"engine"` for TTL/route/listener drops).
        module: &'static str,
        /// Optional module-provided detail (e.g. which filter stage fired),
        /// staged via [`crate::agent::AgentCtx::trace_verdict_detail`].
        detail: Option<String>,
        /// Drop reason recorded in stats.
        reason: DropReason,
        /// Ground-truth class.
        class: TrafficClass,
        /// Wire size (bytes).
        size: u32,
        /// Hops traversed before the drop.
        hops: u8,
    },
    /// Packet consumed by the application at `node`.
    Deliver {
        /// Timestamp (ns).
        t: u64,
        /// Packet id.
        pkt: u64,
        /// Delivering node.
        node: NodeId,
        /// Ground-truth class.
        class: TrafficClass,
        /// Wire size (bytes).
        size: u32,
        /// Path length.
        hops: u8,
        /// End-to-end latency (ns) since emission.
        latency: u64,
    },
}

impl TraceEvent {
    /// Stable kind tag used in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Emit { .. } => "emit",
            TraceEvent::LinkAdmit { .. } => "link_admit",
            TraceEvent::LinkDrop { .. } => "link_drop",
            TraceEvent::ModuleVerdict { .. } => "module_verdict",
            TraceEvent::Deliver { .. } => "deliver",
        }
    }

    /// Packet id this event belongs to.
    pub fn packet_id(&self) -> u64 {
        match self {
            TraceEvent::Emit { pkt, .. }
            | TraceEvent::LinkAdmit { pkt, .. }
            | TraceEvent::LinkDrop { pkt, .. }
            | TraceEvent::ModuleVerdict { pkt, .. }
            | TraceEvent::Deliver { pkt, .. } => *pkt,
        }
    }

    /// Timestamp in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        match self {
            TraceEvent::Emit { t, .. }
            | TraceEvent::LinkAdmit { t, .. }
            | TraceEvent::LinkDrop { t, .. }
            | TraceEvent::ModuleVerdict { t, .. }
            | TraceEvent::Deliver { t, .. } => *t,
        }
    }

    /// For drop-flavoured events, the `(class, reason)` bucket the drop was
    /// accounted under in [`crate::stats::Stats::drops`].
    pub fn drop_bucket(&self) -> Option<(TrafficClass, DropReason)> {
        match self {
            TraceEvent::LinkDrop { class, .. } => Some((*class, DropReason::QueueOverflow)),
            TraceEvent::ModuleVerdict { class, reason, .. } => Some((*class, *reason)),
            _ => None,
        }
    }

    /// Serialise as a single JSON object (one JSONL line, no trailing
    /// newline). Field order is fixed, integers only plus escaped strings,
    /// so output is byte-deterministic.
    pub fn write_json(&self, out: &mut String) {
        match self {
            TraceEvent::Emit {
                t,
                pkt,
                node,
                src,
                dst,
                proto,
                class,
                size,
                flow,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"emit\",\"pkt\":{pkt},\"node\":{},\
                     \"src\":\"{:?}\",\"dst\":\"{:?}\",\"proto\":\"{proto:?}\",\
                     \"class\":\"{class:?}\",\"size\":{size},\"flow\":{flow}}}",
                    node.0, src, dst
                );
            }
            TraceEvent::LinkAdmit {
                t,
                pkt,
                link,
                from,
                to,
                backlog,
                arrive,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"link_admit\",\"pkt\":{pkt},\
                     \"link\":{},\"from\":{},\"to\":{},\"backlog\":{backlog},\
                     \"arrive\":{arrive}}}",
                    link.0, from.0, to.0
                );
            }
            TraceEvent::LinkDrop {
                t,
                pkt,
                link,
                from,
                backlog,
                class,
                size,
                hops,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"link_drop\",\"pkt\":{pkt},\
                     \"link\":{},\"from\":{},\"backlog\":{backlog},\
                     \"class\":\"{class:?}\",\"size\":{size},\"hops\":{hops}}}",
                    link.0, from.0
                );
            }
            TraceEvent::ModuleVerdict {
                t,
                pkt,
                node,
                module,
                detail,
                reason,
                class,
                size,
                hops,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"module_verdict\",\"pkt\":{pkt},\
                     \"node\":{},\"module\":\"",
                    node.0
                );
                json_escape_into(module, out);
                out.push('"');
                if let Some(d) = detail {
                    out.push_str(",\"detail\":\"");
                    json_escape_into(d, out);
                    out.push('"');
                }
                let _ = write!(
                    out,
                    ",\"reason\":\"{reason:?}\",\"class\":\"{class:?}\",\
                     \"size\":{size},\"hops\":{hops}}}"
                );
            }
            TraceEvent::Deliver {
                t,
                pkt,
                node,
                class,
                size,
                hops,
                latency,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"deliver\",\"pkt\":{pkt},\"node\":{},\
                     \"class\":\"{class:?}\",\"size\":{size},\"hops\":{hops},\
                     \"latency_ns\":{latency}}}",
                    node.0
                );
            }
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Receiver of trace events. Implementations must not feed decisions back
/// into the simulation (observation only) — determinism of the simulated
/// world never depends on the sink.
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: TraceEvent);
}

/// Bounded ring-buffer flight recorder: keeps the most recent `capacity`
/// events, evicting the oldest (and counting evictions) when full.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    recorded: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// Recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            cap,
            // Pre-size moderately; very large caps grow on demand so an
            // over-provisioned recorder costs nothing up front.
            buf: VecDeque::with_capacity(cap.min(4096)),
            recorded: 0,
            evicted: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to make room (oldest-first policy).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Serialise the held events as JSONL (one event per line, oldest
    /// first, trailing newline).
    pub fn export_jsonl_string(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 96);
        for ev in &self.buf {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Write the held events as JSONL to `w`.
    pub fn export_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.export_jsonl_string().as_bytes())
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }
}

/// Shared-handle sink: scenario code keeps one `Arc` clone to read the
/// recorder after the run while the simulator owns the other.
impl TraceSink for Arc<Mutex<FlightRecorder>> {
    fn record(&mut self, ev: TraceEvent) {
        self.lock()
            .expect("flight recorder mutex poisoned")
            .record(ev);
    }
}

/// Deterministic per-packet sampling decision: a packet is traced iff a
/// SplitMix64 hash of its id against a seed-derived salt falls in the
/// configured residue class. No state, no wall-clock — the decision for a
/// given `(seed, rate, packet id)` is a pure function, so sampled traces
/// are reproducible and are subsets of fuller traces at the same seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sampler {
    one_in: u64,
    salt: u64,
}

impl Sampler {
    /// Trace every packet.
    pub fn all() -> Sampler {
        Sampler { one_in: 1, salt: 0 }
    }

    /// Trace one packet in `n` (n ≥ 1), keyed by `salt`.
    pub fn one_in(n: u64, salt: u64) -> Sampler {
        Sampler {
            one_in: n.max(1),
            salt,
        }
    }

    /// Sampling denominator (1 = every packet).
    pub fn rate(&self) -> u64 {
        self.one_in
    }

    /// Is this packet id in the sample?
    #[inline]
    pub fn admits(&self, pkt_id: u64) -> bool {
        if self.one_in <= 1 {
            return true;
        }
        child_seed(self.salt, pkt_id) % self.one_in == 0
    }
}

/// The simulator's trace front-end: owns the optional sink, the sampler,
/// and a one-slot staging area for module verdict detail strings.
///
/// With no sink installed every entry point reduces to a single branch on
/// `Option::None`; no event is constructed and nothing allocates.
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    sampler: Sampler,
    /// Salt reserved at construction (from the simulator seed) so the
    /// sampler keys off simulation identity, never the enabling call site.
    salt: u64,
    detail: Option<String>,
}

impl Tracer {
    /// Disabled tracer for a simulation seeded with `seed`.
    pub(crate) fn disabled(seed: u64) -> Tracer {
        Tracer {
            sink: None,
            sampler: Sampler::all(),
            salt: child_seed(seed, TRACE_STREAM_LABEL),
            detail: None,
        }
    }

    /// Install `sink`, tracing one packet in `one_in` (1 = every packet).
    pub(crate) fn enable(&mut self, sink: Box<dyn TraceSink>, one_in: u64) {
        self.sampler = Sampler::one_in(one_in, self.salt);
        self.sink = Some(sink);
    }

    /// Remove and return the sink, disabling tracing.
    pub(crate) fn disable(&mut self) -> Option<Box<dyn TraceSink>> {
        self.detail = None;
        self.sink.take()
    }

    /// Is tracing enabled at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Should events for this packet id be recorded? One branch when
    /// disabled — this is the hot-path gate.
    #[inline]
    pub fn wants(&self, pkt_id: u64) -> bool {
        match self.sink {
            None => false,
            Some(_) => self.sampler.admits(pkt_id),
        }
    }

    /// Record an event (caller has already checked [`Tracer::wants`]).
    #[inline]
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(ev);
        }
    }

    /// Stage a detail string for the next module verdict event.
    pub(crate) fn stage_detail(&mut self, detail: String) {
        self.detail = Some(detail);
    }

    /// Take (and clear) any staged verdict detail.
    #[inline]
    pub(crate) fn take_detail(&mut self) -> Option<String> {
        self.detail.take()
    }

    /// Drop any staged detail (a module staged detail but then forwarded).
    #[inline]
    pub(crate) fn clear_detail(&mut self) {
        if self.detail.is_some() {
            self.detail = None;
        }
    }
}

/// Power-of-two-bucket histogram over `u64` values, allocation-free on
/// record: bucket `0` holds exact zeros, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Bucket index for a value.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket (used for conservative percentile
    /// estimates).
    pub fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Record one value. No allocation, no branching beyond the zero check.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.counts
    }

    /// Conservative (upper-bound) estimate of the `q`-quantile,
    /// `0.0 ≤ q ≤ 1.0`: the upper edge of the first bucket whose cumulative
    /// count reaches `q · n`. Returns 0 when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The top occupied bucket is bounded by the exact max.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (sweep aggregation).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// One-line summary: `n=…, mean=…, p50≤…, p99≤…, max=…`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.quantile_upper(0.50),
            self.quantile_upper(0.99),
            self.max
        )
    }
}

/// Always-on engine telemetry histograms, embedded in
/// [`crate::stats::Stats`]. Recording is allocation-free and cheap enough
/// to leave enabled unconditionally (a few adds per packet event).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryHistograms {
    /// Per-hop virtual-queue wait experienced by admitted packets (ns).
    pub queue_delay_ns: Log2Histogram,
    /// End-to-end latency of delivered packets (ns since emission).
    pub e2e_latency_ns: Log2Histogram,
    /// Path length of delivered packets (hops).
    pub hop_count: Log2Histogram,
}

impl TelemetryHistograms {
    /// Merge another set into this one (sweep aggregation).
    pub fn merge(&mut self, other: &TelemetryHistograms) {
        self.queue_delay_ns.merge(&other.queue_delay_ns);
        self.e2e_latency_ns.merge(&other.e2e_latency_ns);
        self.hop_count.merge(&other.hop_count);
    }
}

/// Per-direction activity in one utilization sampling window.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkDirUtil {
    /// Link index.
    pub link: usize,
    /// Direction index ([`crate::link::Link::dir_index`]).
    pub dir: usize,
    /// Bytes admitted during the window.
    pub bytes: u64,
    /// Packets tail-dropped during the window.
    pub dropped_pkts: u64,
    /// Window utilization in `[0, 1]` (admitted bits over capacity·window).
    pub util: f64,
}

/// One utilization snapshot: all link directions that saw traffic or drops
/// during the window ending at `t`.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilSnapshot {
    /// Window end (ns).
    pub t: u64,
    /// Window length (ns).
    pub window_ns: u64,
    /// Active directions, ascending `(link, dir)`.
    pub dirs: Vec<LinkDirUtil>,
}

/// Samples [`crate::link::LinkDir`] counters on a fixed cadence and turns
/// the deltas into per-window utilization snapshots. Driven by the
/// simulator's event loop (see `Simulator::enable_util_probe`) so sampling
/// instants are simulated time, deterministic, and bounded by an explicit
/// horizon — the probe never keeps an otherwise-idle simulation alive
/// past `until`.
#[derive(Debug)]
pub struct LinkUtilProbe {
    cadence: SimDuration,
    until: SimTime,
    last_sample: SimTime,
    /// `(bytes_sent, pkts_dropped)` per direction at the previous sample.
    prev: Vec<[(u64, u64); 2]>,
    snapshots: Vec<UtilSnapshot>,
}

impl LinkUtilProbe {
    /// Probe sampling every `cadence` until (and including) `until`.
    pub fn new(cadence: SimDuration, until: SimTime) -> LinkUtilProbe {
        LinkUtilProbe {
            cadence: SimDuration(cadence.0.max(1)),
            until,
            last_sample: SimTime::ZERO,
            prev: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Sampling horizon.
    pub fn until(&self) -> SimTime {
        self.until
    }

    /// Record the current counters as the window baseline without emitting
    /// a snapshot (called once when the probe is enabled mid-run, so the
    /// first window does not absorb pre-probe traffic).
    pub fn baseline(&mut self, topo: &Topology, now: SimTime) {
        self.prev.clear();
        self.prev.extend(
            topo.links
                .iter()
                .map(|l| [0, 1].map(|di| (l.dirs[di].bytes_sent, l.dirs[di].pkts_dropped))),
        );
        self.last_sample = now;
    }

    /// Take one sample of every link direction at `now`.
    pub fn sample(&mut self, topo: &Topology, now: SimTime) {
        if self.prev.len() != topo.links.len() {
            self.prev.resize(topo.links.len(), [(0, 0); 2]);
        }
        let window_ns = now.saturating_since(self.last_sample).0;
        let window_s = SimDuration(window_ns).as_secs_f64();
        let mut dirs = Vec::new();
        for (li, link) in topo.links.iter().enumerate() {
            for di in 0..2 {
                let d = &link.dirs[di];
                let (pb, pd) = self.prev[li][di];
                let bytes = d.bytes_sent.saturating_sub(pb);
                let dropped_pkts = d.pkts_dropped.saturating_sub(pd);
                self.prev[li][di] = (d.bytes_sent, d.pkts_dropped);
                if bytes == 0 && dropped_pkts == 0 {
                    continue;
                }
                let util = if window_s > 0.0 {
                    (bytes as f64 * 8.0) / (link.bandwidth_bps * window_s)
                } else {
                    0.0
                };
                dirs.push(LinkDirUtil {
                    link: li,
                    dir: di,
                    bytes,
                    dropped_pkts,
                    util,
                });
            }
        }
        self.last_sample = now;
        self.snapshots.push(UtilSnapshot {
            t: now.0,
            window_ns,
            dirs,
        });
    }

    /// Snapshots taken so far, chronological.
    pub fn snapshots(&self) -> &[UtilSnapshot] {
        &self.snapshots
    }

    /// Highest single-window direction utilization observed (0.0 when no
    /// traffic was sampled).
    pub fn peak_util(&self) -> f64 {
        self.snapshots
            .iter()
            .flat_map(|s| s.dirs.iter())
            .map(|d| d.util)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn ev(pkt: u64) -> TraceEvent {
        TraceEvent::Deliver {
            t: 10,
            pkt,
            node: NodeId(1),
            class: TrafficClass::Background,
            size: 64,
            hops: 3,
            latency: 1000,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.evicted(), 2);
        let ids: Vec<u64> = r.events().map(|e| e.packet_id()).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let mut r = FlightRecorder::new(8);
        r.record(TraceEvent::Emit {
            t: 0,
            pkt: 7,
            node: NodeId(2),
            src: Addr::new(NodeId(2), 1),
            dst: Addr::new(NodeId(5), 1),
            proto: Proto::Udp,
            class: TrafficClass::LegitRequest,
            size: 100,
            flow: 9,
        });
        r.record(TraceEvent::ModuleVerdict {
            t: 5,
            pkt: 7,
            node: NodeId(3),
            module: "dev\"ice",
            detail: Some("stage \\1\n".into()),
            reason: DropReason::DeviceFilter,
            class: TrafficClass::LegitRequest,
            size: 100,
            hops: 1,
        });
        let out = r.export_jsonl_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":0,\"kind\":\"emit\",\"pkt\":7,"));
        assert!(lines[0].contains("\"src\":\"2.1\""));
        assert!(lines[1].contains("\"module\":\"dev\\\"ice\""));
        assert!(lines[1].contains("\"detail\":\"stage \\\\1\\n\""));
        assert!(lines[1].contains("\"reason\":\"DeviceFilter\""));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn sampler_is_deterministic_and_roughly_fair() {
        let s = Sampler::one_in(8, 0xABCD);
        let picks: Vec<bool> = (0..10_000).map(|id| s.admits(id)).collect();
        let again: Vec<bool> = (0..10_000).map(|id| s.admits(id)).collect();
        assert_eq!(picks, again);
        let hits = picks.iter().filter(|&&b| b).count();
        // 1/8 of 10k = 1250; allow generous slack for hash variance.
        assert!((900..=1600).contains(&hits), "hits={hits}");
        assert!(Sampler::all().admits(12345));
        // Different salts select different subsets.
        let other = Sampler::one_in(8, 0xEF01);
        assert_ne!(
            picks,
            (0..10_000).map(|id| other.admits(id)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_upper(0), 0);
        assert_eq!(Log2Histogram::bucket_upper(2), 3);
        for v in [0u64, 1, 2, 3, 4, 255, 256, u64::MAX] {
            let b = Log2Histogram::bucket_of(v);
            assert!(v <= Log2Histogram::bucket_upper(b));
            if b > 0 {
                assert!(v > Log2Histogram::bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        // p50: 3rd of 5 values (sorted: 0,1,2,3,100) is 2 -> bucket [2,3].
        assert_eq!(h.quantile_upper(0.5), 3);
        assert_eq!(h.quantile_upper(1.0), 100);
        let mut other = Log2Histogram::new();
        other.record(7);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets()[3], 1, "the merged 7 lands in the [4,7] bucket");
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile_upper(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
