//! Control-plane flight recorder: deterministic lifecycle tracing for
//! control transactions (DESIGN.md §6.9).
//!
//! The packet-plane recorder in [`crate::trace`] answers "what happened to
//! packet N"; this module answers the symmetric question for control
//! transactions — register → deploy → install → ack/confirm, plus
//! anti-entropy reconcile rounds. Every control message pushed through the
//! simulator's single control funnel emits a [`CpTraceEvent::Send`] and a
//! fault-plane [`CpTraceEvent::Verdict`]; protocol agents add dedup hits,
//! retry lifecycle events, state transitions, and terminal outcomes via
//! [`crate::agent::AgentCtx::cp_event`]. Events are keyed by the control
//! plane's `(origin, txn, attempt)` message identity, carried across the
//! crate boundary as a plain-data [`CpMeta`] (the `control` crate's
//! `MsgKey` cannot be seen from here).
//!
//! Determinism is load-bearing, exactly as in `trace.rs`: whether a
//! transaction is traced is a pure hash of `(seed, origin, txn)` against a
//! dedicated stream label — never wall-clock or sink state — so the same
//! seed reproduces a byte-identical JSONL file, and a sampled trace is an
//! exact subset of the full trace. Events without a transaction key
//! (sweeps, crashes, stale retry timers, unkeyed messages) are always
//! admitted, preserving the subset property.
//!
//! The disabled path is one branch: with no sink installed,
//! [`CpTracer::enabled`] is a `None` check and the simulator constructs no
//! event. The `cp_trace_overhead` bench in `dtcs-bench` holds this to ≤2%
//! over an E13 fault-sweep cell.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::sync::{Arc, Mutex};

use crate::node::NodeId;
use crate::rng::child_seed;

/// Stream label used to derive the control-trace sampler's salt from the
/// simulator seed; distinct from [`crate::trace::TRACE_STREAM_LABEL`] and
/// every workload stream, so enabling control tracing perturbs nothing.
pub const CP_TRACE_STREAM_LABEL: u64 = 0x6370_7472_6163_6531; // "cptrace1"

/// Plain-data mirror of the control plane's message identity, attached to
/// keyed control sends via
/// [`crate::agent::AgentCtx::send_control_keyed`]. `origin` + `txn` name
/// the transaction (stable across retries); `attempt` distinguishes
/// retransmits; `kind` is the sender's stable message-kind id (the
/// `control` crate's `CpMsg::kind_id` values 1–9, device commands 10–12,
/// device replies 13–16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpMeta {
    /// Stable id of the requesting principal (0 for infrastructure).
    pub origin: u64,
    /// Transaction id, stable across retries.
    pub txn: u64,
    /// Retransmit counter: 0 for the first send.
    pub attempt: u32,
    /// Message-kind id (see struct docs).
    pub kind: u8,
}

/// Fault-plane verdict on one control message, recorded alongside the
/// send so traces reconcile exactly with the `cp_*` counters in
/// [`crate::stats::Stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpVerdict {
    /// The message will be delivered at `deliver_ns` (after any jitter).
    Deliver {
        /// Delivery instant (ns), jitter included.
        deliver_ns: u64,
        /// Jitter added by the fault plane (0 = none; nonzero increments
        /// `cp_fault_jittered`).
        jitter_ns: u64,
        /// When the fault plane duplicated the message, the extra delay of
        /// the second copy past `deliver_ns` (increments
        /// `cp_fault_duplicated`).
        dup_extra_ns: Option<u64>,
    },
    /// Dropped by the loss hash (increments `cp_fault_dropped`).
    Drop,
    /// Swallowed by an outage window at the sender or receiver
    /// (increments `cp_outage_dropped`).
    Outage {
        /// Index of the matching outage window in the fault plane's
        /// schedule, when known.
        window: Option<u64>,
    },
    /// Swallowed by a directed partition window between the sender's and
    /// receiver's node sets (increments `cp_partition_dropped`). Both
    /// endpoints are up; the cut between them was open at push time.
    Partition {
        /// Index of the matching partition window in the fault plane's
        /// schedule.
        window: u64,
    },
}

/// One step in a control transaction's life.
///
/// `Send` and `Verdict` are emitted by the simulator's control funnel;
/// the rest come from protocol agents through
/// [`crate::agent::AgentCtx::cp_event`]. Events carrying `origin`/`txn`
/// are sampled per transaction; `RetryStale`, `Sweep` and `Crash` (and
/// unkeyed sends) have no transaction identity and are always admitted.
#[derive(Clone, Debug, PartialEq)]
pub enum CpTraceEvent {
    /// A control message entered the funnel at `from`, addressed to `to`.
    Send {
        /// Timestamp (ns).
        t: u64,
        /// Message identity (None for unkeyed control messages).
        meta: Option<CpMeta>,
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// The fault plane's decision for the send recorded just before.
    Verdict {
        /// Timestamp (ns).
        t: u64,
        /// Message identity (None for unkeyed control messages).
        meta: Option<CpMeta>,
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The decision.
        verdict: CpVerdict,
    },
    /// A receiver suppressed a duplicate receipt (`response` = true) or
    /// re-answered a duplicate request from a done-cache (false).
    DedupHit {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Message-kind id of the duplicate.
        kind: u8,
        /// Node that detected the duplicate.
        node: NodeId,
        /// True for duplicate responses (`dup_responses`), false for
        /// duplicate requests (`dup_requests`).
        response: bool,
    },
    /// A retransmitter began tracking a transaction and armed its first
    /// retry timer.
    RetrySchedule {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Tracking node.
        node: NodeId,
        /// Destination that must ack.
        dest: NodeId,
    },
    /// A retry timer fired and the message was retransmitted
    /// (increments `CpStats::retransmits`).
    RetryFire {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Attempt number stamped on the resend (1-based).
        attempt: u32,
        /// Retransmitting node.
        node: NodeId,
        /// Destination that has not acked.
        dest: NodeId,
    },
    /// A retry timer fired for an already-acked transaction (no-op).
    /// The slot is gone, so the key is unknowable — always admitted.
    RetryStale {
        /// Timestamp (ns).
        t: u64,
        /// Node whose timer fired.
        node: NodeId,
        /// Timer family the token belonged to.
        family: u64,
    },
    /// Retry budget exhausted; the transaction was dropped from tracking
    /// (increments `CpStats::give_ups`).
    RetryGaveUp {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Node that gave up.
        node: NodeId,
        /// Destination that never acked.
        dest: NodeId,
    },
    /// A protocol actor moved a transaction through a named state
    /// (`"verify_sent"`, `"device_installed"`, `"partial_confirm"`,
    /// `"reinstall"`, …; vocabulary in DESIGN.md §6.9).
    State {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Node where the transition happened.
        node: NodeId,
        /// Actor role: `"tcsp"`, `"nms"`, `"device"`, or `"user"`.
        actor: &'static str,
        /// State entered.
        state: &'static str,
    },
    /// An NMS anti-entropy inventory round started
    /// (increments `CpStats::reconcile_sweeps`). Keyless: the sweep spans
    /// all reconcile traffic.
    Sweep {
        /// Timestamp (ns).
        t: u64,
        /// Sweeping NMS node.
        node: NodeId,
    },
    /// A node crashed, wiping volatile device state
    /// (increments `Stats::node_crashes`).
    Crash {
        /// Timestamp (ns).
        t: u64,
        /// Crashed node.
        node: NodeId,
        /// Index of the fault-plane outage window that scheduled the
        /// crash; None for ad-hoc `crash_node` calls.
        window: Option<u64>,
    },
    /// A transaction reached a terminal outcome (`"confirmed"`,
    /// `"denied"`, `"partial"`, `"gave_up"`, `"abandoned"`, `"verified"`,
    /// `"fallback_confirmed"`, `"reconciled"`). The `trace-report`
    /// analyzer hard-fails any transaction group without one.
    Terminal {
        /// Timestamp (ns).
        t: u64,
        /// Transaction origin.
        origin: u64,
        /// Transaction id.
        txn: u64,
        /// Node where the outcome was decided.
        node: NodeId,
        /// Terminal outcome.
        outcome: &'static str,
    },
}

impl CpTraceEvent {
    /// Stable kind tag used in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            CpTraceEvent::Send { .. } => "send",
            CpTraceEvent::Verdict { .. } => "verdict",
            CpTraceEvent::DedupHit { .. } => "dedup_hit",
            CpTraceEvent::RetrySchedule { .. } => "retry_schedule",
            CpTraceEvent::RetryFire { .. } => "retry_fire",
            CpTraceEvent::RetryStale { .. } => "retry_stale",
            CpTraceEvent::RetryGaveUp { .. } => "retry_give_up",
            CpTraceEvent::State { .. } => "state",
            CpTraceEvent::Sweep { .. } => "sweep",
            CpTraceEvent::Crash { .. } => "crash",
            CpTraceEvent::Terminal { .. } => "terminal",
        }
    }

    /// Timestamp in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        match self {
            CpTraceEvent::Send { t, .. }
            | CpTraceEvent::Verdict { t, .. }
            | CpTraceEvent::DedupHit { t, .. }
            | CpTraceEvent::RetrySchedule { t, .. }
            | CpTraceEvent::RetryFire { t, .. }
            | CpTraceEvent::RetryStale { t, .. }
            | CpTraceEvent::RetryGaveUp { t, .. }
            | CpTraceEvent::State { t, .. }
            | CpTraceEvent::Sweep { t, .. }
            | CpTraceEvent::Crash { t, .. }
            | CpTraceEvent::Terminal { t, .. } => *t,
        }
    }

    /// The `(origin, txn)` transaction identity this event is sampled
    /// under; None for keyless events (always admitted).
    pub fn key(&self) -> Option<(u64, u64)> {
        match self {
            CpTraceEvent::Send { meta, .. } | CpTraceEvent::Verdict { meta, .. } => {
                meta.map(|m| (m.origin, m.txn))
            }
            CpTraceEvent::DedupHit { origin, txn, .. }
            | CpTraceEvent::RetrySchedule { origin, txn, .. }
            | CpTraceEvent::RetryFire { origin, txn, .. }
            | CpTraceEvent::RetryGaveUp { origin, txn, .. }
            | CpTraceEvent::State { origin, txn, .. }
            | CpTraceEvent::Terminal { origin, txn, .. } => Some((*origin, *txn)),
            CpTraceEvent::RetryStale { .. }
            | CpTraceEvent::Sweep { .. }
            | CpTraceEvent::Crash { .. } => None,
        }
    }

    /// Serialise as a single JSON object (one JSONL line, no trailing
    /// newline). Field order is fixed, integers and literal strings only,
    /// so output is byte-deterministic.
    pub fn write_json(&self, out: &mut String) {
        fn meta_fields(meta: &Option<CpMeta>, out: &mut String) {
            if let Some(m) = meta {
                let _ = write!(
                    out,
                    ",\"origin\":{},\"txn\":{},\"attempt\":{},\"mkind\":{}",
                    m.origin, m.txn, m.attempt, m.kind
                );
            }
        }
        match self {
            CpTraceEvent::Send { t, meta, from, to } => {
                let _ = write!(out, "{{\"t\":{t},\"kind\":\"send\"");
                meta_fields(meta, out);
                let _ = write!(out, ",\"from\":{},\"to\":{}}}", from.0, to.0);
            }
            CpTraceEvent::Verdict {
                t,
                meta,
                from,
                to,
                verdict,
            } => {
                let _ = write!(out, "{{\"t\":{t},\"kind\":\"verdict\"");
                meta_fields(meta, out);
                let _ = write!(out, ",\"from\":{},\"to\":{}", from.0, to.0);
                match verdict {
                    CpVerdict::Deliver {
                        deliver_ns,
                        jitter_ns,
                        dup_extra_ns,
                    } => {
                        let _ = write!(
                            out,
                            ",\"outcome\":\"deliver\",\"deliver\":{deliver_ns},\
                             \"jitter\":{jitter_ns}"
                        );
                        if let Some(d) = dup_extra_ns {
                            let _ = write!(out, ",\"dup_extra\":{d}");
                        }
                    }
                    CpVerdict::Drop => out.push_str(",\"outcome\":\"drop\""),
                    CpVerdict::Outage { window } => {
                        out.push_str(",\"outcome\":\"outage\"");
                        if let Some(w) = window {
                            let _ = write!(out, ",\"window\":{w}");
                        }
                    }
                    CpVerdict::Partition { window } => {
                        let _ = write!(out, ",\"outcome\":\"partition\",\"window\":{window}");
                    }
                }
                out.push('}');
            }
            CpTraceEvent::DedupHit {
                t,
                origin,
                txn,
                kind,
                node,
                response,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"dedup_hit\",\"origin\":{origin},\
                     \"txn\":{txn},\"mkind\":{kind},\"node\":{},\
                     \"response\":{response}}}",
                    node.0
                );
            }
            CpTraceEvent::RetrySchedule {
                t,
                origin,
                txn,
                node,
                dest,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"retry_schedule\",\"origin\":{origin},\
                     \"txn\":{txn},\"node\":{},\"dest\":{}}}",
                    node.0, dest.0
                );
            }
            CpTraceEvent::RetryFire {
                t,
                origin,
                txn,
                attempt,
                node,
                dest,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"retry_fire\",\"origin\":{origin},\
                     \"txn\":{txn},\"attempt\":{attempt},\"node\":{},\"dest\":{}}}",
                    node.0, dest.0
                );
            }
            CpTraceEvent::RetryStale { t, node, family } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"retry_stale\",\"node\":{},\
                     \"family\":{family}}}",
                    node.0
                );
            }
            CpTraceEvent::RetryGaveUp {
                t,
                origin,
                txn,
                node,
                dest,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"retry_give_up\",\"origin\":{origin},\
                     \"txn\":{txn},\"node\":{},\"dest\":{}}}",
                    node.0, dest.0
                );
            }
            CpTraceEvent::State {
                t,
                origin,
                txn,
                node,
                actor,
                state,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"state\",\"origin\":{origin},\
                     \"txn\":{txn},\"node\":{},\"actor\":\"{actor}\",\
                     \"state\":\"{state}\"}}",
                    node.0
                );
            }
            CpTraceEvent::Sweep { t, node } => {
                let _ = write!(out, "{{\"t\":{t},\"kind\":\"sweep\",\"node\":{}}}", node.0);
            }
            CpTraceEvent::Crash { t, node, window } => {
                let _ = write!(out, "{{\"t\":{t},\"kind\":\"crash\",\"node\":{}", node.0);
                if let Some(w) = window {
                    let _ = write!(out, ",\"window\":{w}");
                }
                out.push('}');
            }
            CpTraceEvent::Terminal {
                t,
                origin,
                txn,
                node,
                outcome,
            } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"kind\":\"terminal\",\"origin\":{origin},\
                     \"txn\":{txn},\"node\":{},\"outcome\":\"{outcome}\"}}",
                    node.0
                );
            }
        }
    }
}

/// Receiver of control-trace events. Implementations must not feed
/// decisions back into the simulation (observation only).
pub trait CpTraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: CpTraceEvent);
}

/// Bounded ring-buffer flight recorder for control-trace events: keeps
/// the most recent `capacity` events, evicting the oldest (and counting
/// evictions) when full.
#[derive(Debug, Default)]
pub struct CpFlightRecorder {
    cap: usize,
    buf: VecDeque<CpTraceEvent>,
    recorded: u64,
    evicted: u64,
}

impl CpFlightRecorder {
    /// Recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> CpFlightRecorder {
        let cap = capacity.max(1);
        CpFlightRecorder {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            recorded: 0,
            evicted: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to make room (oldest-first policy).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &CpTraceEvent> {
        self.buf.iter()
    }

    /// Serialise the held events as JSONL (one event per line, oldest
    /// first, trailing newline).
    pub fn export_jsonl_string(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 96);
        for ev in &self.buf {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Write the held events as JSONL to `w`.
    pub fn export_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.export_jsonl_string().as_bytes())
    }
}

impl CpTraceSink for CpFlightRecorder {
    fn record(&mut self, ev: CpTraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }
}

/// Shared-handle sink: scenario code keeps one `Arc` clone to read the
/// recorder after the run while the simulator owns the other.
impl CpTraceSink for Arc<Mutex<CpFlightRecorder>> {
    fn record(&mut self, ev: CpTraceEvent) {
        self.lock()
            .expect("cp flight recorder mutex poisoned")
            .record(ev);
    }
}

/// The simulator's control-trace front-end: owns the optional sink and
/// the per-transaction sampling decision.
///
/// With no sink installed every entry point reduces to a single branch on
/// `Option::None`; the simulator constructs no event on the funnel path.
pub struct CpTracer {
    sink: Option<Box<dyn CpTraceSink>>,
    one_in: u64,
    /// Salt reserved at construction (from the simulator seed) so the
    /// sampler keys off simulation identity, never the enabling call site.
    salt: u64,
}

impl CpTracer {
    /// Disabled tracer for a simulation seeded with `seed`.
    pub(crate) fn disabled(seed: u64) -> CpTracer {
        CpTracer {
            sink: None,
            one_in: 1,
            salt: child_seed(seed, CP_TRACE_STREAM_LABEL),
        }
    }

    /// Install `sink`, tracing one transaction in `one_in` (1 = all).
    pub(crate) fn enable(&mut self, sink: Box<dyn CpTraceSink>, one_in: u64) {
        self.one_in = one_in.max(1);
        self.sink = Some(sink);
    }

    /// Remove and return the sink, disabling tracing.
    pub(crate) fn disable(&mut self) -> Option<Box<dyn CpTraceSink>> {
        self.sink.take()
    }

    /// Is control tracing enabled at all? One branch — the hot-path gate.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Is transaction `(origin, txn)` in the sample? Pure hash of the
    /// construction seed — no state, no wall-clock.
    #[inline]
    pub fn admits(&self, origin: u64, txn: u64) -> bool {
        if self.one_in <= 1 {
            return true;
        }
        child_seed(child_seed(self.salt, origin), txn) % self.one_in == 0
    }

    /// Record an event if tracing is enabled and the event's transaction
    /// is in the sample (keyless events always are).
    #[inline]
    pub fn record(&mut self, ev: CpTraceEvent) {
        if self.sink.is_none() {
            return;
        }
        let admitted = match ev.key() {
            Some((origin, txn)) => self.admits(origin, txn),
            None => true,
        };
        if admitted {
            if let Some(sink) = &mut self.sink {
                sink.record(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(t: u64, origin: u64, txn: u64) -> CpTraceEvent {
        CpTraceEvent::Terminal {
            t,
            origin,
            txn,
            node: NodeId(1),
            outcome: "confirmed",
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut r = CpFlightRecorder::new(3);
        for i in 0..5 {
            r.record(keyed(i, 7, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.evicted(), 2);
        let ts: Vec<u64> = r.events().map(|e| e.time_ns()).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn jsonl_shape_keyed_and_keyless() {
        let mut r = CpFlightRecorder::new(8);
        r.record(CpTraceEvent::Send {
            t: 5,
            meta: Some(CpMeta {
                origin: 0xAA01,
                txn: 9,
                attempt: 2,
                kind: 5,
            }),
            from: NodeId(1),
            to: NodeId(4),
        });
        r.record(CpTraceEvent::Send {
            t: 6,
            meta: None,
            from: NodeId(2),
            to: NodeId(3),
        });
        r.record(CpTraceEvent::Verdict {
            t: 7,
            meta: None,
            from: NodeId(2),
            to: NodeId(3),
            verdict: CpVerdict::Deliver {
                deliver_ns: 1000,
                jitter_ns: 30,
                dup_extra_ns: Some(12),
            },
        });
        r.record(CpTraceEvent::Crash {
            t: 8,
            node: NodeId(5),
            window: Some(3),
        });
        let out = r.export_jsonl_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"t\":5,\"kind\":\"send\",\"origin\":43521,\"txn\":9,\
             \"attempt\":2,\"mkind\":5,\"from\":1,\"to\":4}"
        );
        assert_eq!(lines[1], "{\"t\":6,\"kind\":\"send\",\"from\":2,\"to\":3}");
        assert_eq!(
            lines[2],
            "{\"t\":7,\"kind\":\"verdict\",\"from\":2,\"to\":3,\
             \"outcome\":\"deliver\",\"deliver\":1000,\"jitter\":30,\
             \"dup_extra\":12}"
        );
        assert_eq!(
            lines[3],
            "{\"t\":8,\"kind\":\"crash\",\"node\":5,\"window\":3}"
        );
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn sampling_is_per_transaction_and_deterministic() {
        let mut t = CpTracer::disabled(42);
        t.enable(Box::new(CpFlightRecorder::new(16)), 4);
        let picks: Vec<bool> = (0..64).map(|txn| t.admits(0xAA01, txn)).collect();
        let again: Vec<bool> = (0..64).map(|txn| t.admits(0xAA01, txn)).collect();
        assert_eq!(picks, again, "pure function of (seed, origin, txn)");
        assert!(picks.iter().any(|&b| b) && picks.iter().any(|&b| !b));
        // A different seed selects a different subset.
        let mut o = CpTracer::disabled(43);
        o.enable(Box::new(CpFlightRecorder::new(16)), 4);
        assert_ne!(
            picks,
            (0..64).map(|txn| o.admits(0xAA01, txn)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn record_gates_on_key_but_admits_keyless() {
        let rec = Arc::new(Mutex::new(CpFlightRecorder::new(64)));
        let mut t = CpTracer::disabled(42);
        t.enable(Box::new(rec.clone()), 1_000_000_007);
        // With an absurd rate almost no transaction is admitted…
        let mut admitted = 0;
        for txn in 0..32 {
            if t.admits(1, txn) {
                admitted += 1;
            }
            t.record(keyed(txn, 1, txn));
        }
        assert_eq!(rec.lock().unwrap().recorded(), admitted);
        // …but keyless events always are.
        t.record(CpTraceEvent::Sweep {
            t: 1,
            node: NodeId(2),
        });
        assert_eq!(rec.lock().unwrap().recorded(), admitted + 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = CpTracer::disabled(1);
        assert!(!t.enabled());
        t.record(keyed(1, 2, 3)); // no sink: no-op
        t.enable(Box::new(CpFlightRecorder::new(4)), 1);
        assert!(t.enabled());
        let sink = t.disable();
        assert!(sink.is_some());
        assert!(!t.enabled());
    }
}
