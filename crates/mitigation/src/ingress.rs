//! Static ingress filtering (RFC 2267 / BCP 38), the proactive baseline of
//! Sec. 3.2.
//!
//! An AS that deploys ingress filtering rejects packets entering from its
//! customer side (or emitted locally) whose source address does not belong
//! to that customer's address space. Unlike the TCS anti-spoofing service
//! — which a victim deploys on demand for *its own* prefix — static ingress
//! filtering checks *every* source, but only at ASes whose operator chose
//! to run it, which historically is a minority ("it was only partially
//! applied worldwide as current attacks show").

use dtcs_netsim::{
    AgentCtx, DropReason, LinkId, NodeAgent, NodeId, Packet, Prefix, RouteOracle, Simulator,
    Verdict,
};

use crate::deploy::{choose_nodes, Placement};

/// RFC 2267-style ingress filter at one AS.
pub struct IngressFilterAgent {
    node: NodeId,
    local: Prefix,
    /// Memoizes the per-packet route-consistency query; answers are
    /// identical to walking the routing table and survive failure injection
    /// via the routing epoch's delta protocol: a localized link flip only
    /// evicts cached answers whose destination the flip actually damaged,
    /// so under flap churn most of the cache stays warm (see
    /// `dtcs_netsim::oracle`).
    oracle: RouteOracle,
}

impl IngressFilterAgent {
    /// Filter for `node`.
    pub fn new(node: NodeId) -> IngressFilterAgent {
        IngressFilterAgent {
            node,
            local: Prefix::of_node(node),
            oracle: RouteOracle::new(node),
        }
    }
}

impl NodeAgent for IngressFilterAgent {
    fn name(&self) -> &'static str {
        "ingress-filter"
    }

    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        from: Option<LinkId>,
    ) -> Verdict {
        match from {
            // Locally-emitted traffic must carry a local source.
            None => {
                if self.local.contains(pkt.src) {
                    Verdict::Forward
                } else {
                    if ctx.trace_wants(pkt) {
                        ctx.trace_verdict_detail("local-src-mismatch");
                    }
                    Verdict::Drop(DropReason::IngressFilter)
                }
            }
            Some(link) => {
                let peer = ctx.topo.links[link.0].other(self.node);
                if !ctx.topo.is_customer_of(peer, self.node) {
                    return Verdict::Forward; // transit: never judged
                }
                // Route-based check (Park & Lee): a packet claiming `src`
                // and heading for `dst` may enter this node via `peer`
                // only if the real route from `src` actually does so.
                // This accepts multi-AS customer cones (a stub behind a
                // stub) that a bare prefix check would false-positive on.
                let expected =
                    self.oracle
                        .enters_via(ctx.routing, ctx.topo, pkt.src.node(), pkt.dst.node());
                if expected == Some(peer) {
                    Verdict::Forward
                } else {
                    if ctx.trace_wants(pkt) {
                        ctx.trace_verdict_detail("route-mismatch");
                    }
                    Verdict::Drop(DropReason::IngressFilter)
                }
            }
        }
    }
}

/// Install ingress filters on a fraction of ASes; returns the deployed set.
pub fn deploy_ingress(
    sim: &mut Simulator,
    fraction: f64,
    placement: Placement,
    seed: u64,
) -> Vec<NodeId> {
    let nodes = choose_nodes(&sim.topo, fraction, placement, seed);
    for &n in &nodes {
        sim.add_agent(n, Box::new(IngressFilterAgent::new(n)));
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, PacketBuilder, Proto, SimTime, Topology, TrafficClass};

    fn spoofed(from_node: NodeId, claimed: Addr, dst: Addr) -> (NodeId, PacketBuilder) {
        (
            from_node,
            PacketBuilder::new(claimed, dst, Proto::TcpSyn, TrafficClass::AttackDirect).size(40),
        )
    }

    #[test]
    fn local_spoof_blocked_at_origin() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        sim.add_agent(NodeId(0), Box::new(IngressFilterAgent::new(NodeId(0))));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        // Spoofed: claims node 1's address space.
        let (n, b) = spoofed(NodeId(0), Addr::new(NodeId(1), 9), Addr::new(NodeId(2), 1));
        sim.emit_now(n, b);
        // Honest packet passes.
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                Addr::new(NodeId(2), 1),
                Proto::TcpSyn,
                TrafficClass::LegitRequest,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::IngressFilter).pkts,
            1
        );
        assert_eq!(
            sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
            1
        );
    }

    #[test]
    fn customer_spoof_blocked_at_provider() {
        // Star: hub 0 (transit) with stub leaves 1..=3.
        let topo = Topology::star(3);
        let mut sim = Simulator::new(topo, 1);
        sim.add_agent(NodeId(0), Box::new(IngressFilterAgent::new(NodeId(0))));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        // Leaf 1 claims leaf 2's address: dropped at the hub.
        let (n, b) = spoofed(NodeId(1), Addr::new(NodeId(2), 9), Addr::new(NodeId(3), 1));
        sim.emit_now(n, b);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::IngressFilter).pkts,
            1
        );
    }

    #[test]
    fn transit_traffic_untouched() {
        // Line 0-1-2-3: deploy at node 2 (both neighbours non-stub-ish by
        // degree: node 1 and 3; node 3 is a leaf stub though).
        let topo = Topology::line(4);
        let mut sim = Simulator::new(topo, 1);
        sim.add_agent(NodeId(1), Box::new(IngressFilterAgent::new(NodeId(1))));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        // Spoofed packet enters at node 0 and transits node 1. Node 0 is a
        // stub leaf with degree 1 < node 1's degree 2 => customer side =>
        // caught. This is the desired behaviour for a line: node 1 is node
        // 0's provider.
        let (n, b) = spoofed(NodeId(0), Addr::new(NodeId(9), 1), Addr::new(NodeId(3), 1));
        sim.emit_now(n, b);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::IngressFilter).pkts,
            1
        );

        // But traffic between equal-degree transit nodes is not judged:
        // spoofed packet entering node 2 from node 1 (degree 2 == 2).
        let mut sim = Simulator::new(Topology::line(4), 1);
        sim.add_agent(NodeId(2), Box::new(IngressFilterAgent::new(NodeId(2))));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        let (n, b) = spoofed(NodeId(1), Addr::new(NodeId(9), 1), Addr::new(NodeId(3), 1));
        sim.emit_now(n, b);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::IngressFilter).pkts,
            0,
            "transit path must not be filtered"
        );
    }

    #[test]
    fn traced_drop_carries_module_and_detail() {
        use dtcs_netsim::FlightRecorder;
        use std::sync::{Arc, Mutex};

        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        sim.add_agent(NodeId(0), Box::new(IngressFilterAgent::new(NodeId(0))));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        let rec = Arc::new(Mutex::new(FlightRecorder::new(1024)));
        sim.set_trace_sink(Box::new(Arc::clone(&rec)), 1);
        let (n, b) = spoofed(NodeId(0), Addr::new(NodeId(1), 9), Addr::new(NodeId(2), 1));
        sim.emit_now(n, b);
        sim.run_until(SimTime::from_secs(1));
        let jsonl = rec.lock().unwrap().export_jsonl_string();
        let verdict_line = jsonl
            .lines()
            .find(|l| l.contains("\"kind\":\"module_verdict\""))
            .expect("the ingress-filter drop must appear in the trace");
        assert!(
            verdict_line.contains("\"module\":\"ingress-filter\""),
            "bad line: {verdict_line}"
        );
        assert!(
            verdict_line.contains("\"detail\":\"local-src-mismatch\""),
            "bad line: {verdict_line}"
        );
        assert!(
            verdict_line.contains("\"reason\":\"IngressFilter\""),
            "bad line: {verdict_line}"
        );
    }

    #[test]
    fn deploy_fraction_counts() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 3);
        let mut sim = Simulator::new(topo, 1);
        let deployed = deploy_ingress(&mut sim, 0.25, Placement::Random, 5);
        assert_eq!(deployed.len(), 25);
    }
}
