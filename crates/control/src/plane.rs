//! The live control plane: protocol agents for the Fig. 4 registration and
//! Fig. 5 deployment sequences.
//!
//! Four roles from the paper's network model (Fig. 3) run as simulator
//! agents exchanging out-of-band control messages with realistic
//! path-propagation delays, so experiment E7 can measure real end-to-end
//! control-plane latency:
//!
//! * [`AuthorityAgent`] — the Internet number authority;
//! * [`TcspAgent`] — the traffic control service provider (one-stop
//!   registration, request fan-out to ISPs);
//! * [`NmsAgent`] — an ISP's network management system, driving the
//!   adaptive devices on that ISP's routers;
//! * [`UserAgent`] — a network user executing register → deploy →
//!   confirm, with a timeout fallback straight to the ISPs when the TCSP
//!   is unreachable (Sec. 5.1: "particularly useful if … the TCSP can no
//!   longer be reached, e.g. because of an ongoing DDoS attack on the
//!   TCSP").
//!
//! The channel between agents is *faulty* when a
//! [`FaultPlane`](dtcs_netsim::FaultPlane) is installed: any message may
//! be dropped, duplicated, or delayed, and devices may crash. Every
//! request therefore carries a [`MsgKey`] and is retransmitted on a capped
//! exponential backoff until acked (see [`retry`](crate::retry));
//! receivers deduplicate by key and answer duplicate requests from
//! done-caches, so the end-to-end effect of every transaction is
//! exactly-once. Services lost to device crashes are re-provisioned by the
//! NMS anti-entropy sweep ([`NmsAgent::with_reconcile`]).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_device::{DeviceCommand, DeviceReply, OwnerId, ServiceSpec, Stage};
use dtcs_netsim::{
    AgentCtx, ControlMsg, CpMeta, CpTraceEvent, LinkId, NodeAgent, NodeId, Packet, Prefix,
    SimDuration, SimTime, Verdict,
};

use crate::authority::InternetNumberAuthority;
use crate::catalog::CatalogService;
use crate::identity::{Certificate, UserId};
use crate::retry::{CpStatsHandle, Dedup, MsgKey, Retransmitter, RetryEvent, RetryPolicy};

/// Per-message processing overhead added on top of path propagation.
const PROC_DELAY: SimDuration = SimDuration(2_000_000); // 2 ms

/// Scope of a deployment request (Fig. 5: "the network user may scope the
/// deployment according to different criteria (e.g. only on border routers
/// of stub networks)").
#[derive(Clone, Debug, PartialEq)]
pub enum DeployScope {
    /// Every device-equipped router of every contracted ISP.
    AllManaged,
    /// Only transit routers with stub customers (stub borders).
    StubBorders,
    /// The `k` highest-degree managed routers.
    TopDegree(usize),
    /// An explicit node set.
    Nodes(Vec<NodeId>),
}

/// Why a registration failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistrationError {
    /// The number authority denied ownership of a claimed prefix.
    OwnershipDenied,
}

/// Control-plane messages.
#[derive(Clone, Debug)]
pub enum CpMsg {
    /// User → TCSP: register for the TC service (Fig. 4). The
    /// transaction is identified by the envelope's [`MsgKey`].
    RegisterRequest {
        /// The requesting user.
        user: UserId,
        /// Claimed prefixes.
        claimed: Vec<Prefix>,
        /// Node to confirm to.
        reply_to: NodeId,
    },
    /// TCSP → authority: verify claimed ownership.
    VerifyOwnership {
        /// Transaction id.
        txn: u64,
        /// The claiming user.
        user: UserId,
        /// Claimed prefixes.
        prefixes: Vec<Prefix>,
        /// Node to answer to.
        reply_to: NodeId,
    },
    /// Authority → TCSP: verification result.
    OwnershipResult {
        /// Transaction id.
        txn: u64,
        /// Ownership confirmed?
        ok: bool,
    },
    /// TCSP → user: registration outcome with certificate.
    RegisterConfirm {
        /// The certificate, or the failure reason.
        result: Result<Certificate, RegistrationError>,
    },
    /// User → TCSP, or user → NMS (fallback): deploy a catalog service.
    DeployRequest {
        /// Authorisation.
        cert: Certificate,
        /// Service to deploy.
        service: CatalogService,
        /// Deployment scope.
        scope: DeployScope,
        /// Transaction id (chosen by the user).
        txn: u64,
        /// Node to confirm to.
        reply_to: NodeId,
        /// When true, the receiving NMS forwards the request to its peer
        /// NMSes (ISP-to-ISP propagation, Sec. 5.1).
        forward_to_peers: bool,
    },
    /// TCSP → NMS: deploy on this ISP's listed routers.
    NmsDeploy {
        /// Authorisation.
        cert: Certificate,
        /// Service to deploy.
        service: CatalogService,
        /// Managed nodes to configure.
        nodes: Vec<NodeId>,
        /// Transaction id.
        txn: u64,
        /// Node to ack to.
        reply_to: NodeId,
    },
    /// NMS → TCSP or user: devices configured.
    NmsAck {
        /// Transaction id.
        txn: u64,
        /// The acking NMS node (dedup key for multi-ISP fan-in).
        from_nms: NodeId,
        /// Devices successfully configured.
        configured: usize,
        /// Installs rejected by device safety verifiers.
        rejected: usize,
    },
    /// TCSP → user: whole deployment confirmed.
    DeployConfirm {
        /// Transaction id.
        txn: u64,
        /// Total devices configured.
        configured: usize,
        /// Total rejected installs.
        rejected: usize,
        /// ISPs that acked.
        isps: usize,
        /// ISPs that never acked within the deadline / retry budget
        /// (non-zero marks a *partial* confirmation; the reconciliation
        /// sweep repairs the gap later).
        isps_missing: usize,
    },
    /// User → NMS or TCSP: post-deployment operation (activate, tune,
    /// read logs) relayed to devices.
    OpRequest {
        /// Authorisation.
        cert: Certificate,
        /// Operation to apply on every device of the user's deployment.
        op: UserOp,
        /// Transaction id.
        txn: u64,
        /// Node to confirm to.
        reply_to: NodeId,
    },
    /// User → TCSP: tear down every service deployed under this
    /// certificate. Accepted on an *authentic* certificate even past its
    /// expiry — reducing one's own footprint is always safe (see
    /// [`Certificate::authentic`]).
    WithdrawRequest {
        /// Authorisation (signature checked; freshness deliberately not).
        cert: Certificate,
        /// Transaction id (chosen by the user).
        txn: u64,
        /// Node to confirm to.
        reply_to: NodeId,
    },
    /// TCSP → NMS: remove this owner's services from every managed
    /// device and drop them from desired state.
    NmsWithdraw {
        /// Owner whose services are withdrawn.
        owner: OwnerId,
        /// Transaction id.
        txn: u64,
        /// Node to ack to.
        reply_to: NodeId,
    },
    /// NMS → TCSP: withdrawal executed on this ISP.
    NmsWithdrawAck {
        /// Transaction id.
        txn: u64,
        /// The acking NMS node (dedup key for multi-ISP fan-in).
        from_nms: NodeId,
        /// Device removals confirmed by this ISP.
        removed: usize,
    },
    /// TCSP → user: whole withdrawal confirmed.
    WithdrawConfirm {
        /// Transaction id.
        txn: u64,
        /// Total device removals confirmed.
        removed: usize,
        /// ISPs that acked.
        isps: usize,
        /// ISPs that never acked within the retry budget. Their devices
        /// still converge: every leased install reaps itself within one
        /// lease length of losing renewals.
        isps_missing: usize,
    },
}

impl CpMsg {
    /// Stable discriminant for dedup keys (one transaction can produce
    /// several message kinds; each deduplicates independently).
    pub fn kind_id(&self) -> u8 {
        match self {
            CpMsg::RegisterRequest { .. } => 1,
            CpMsg::VerifyOwnership { .. } => 2,
            CpMsg::OwnershipResult { .. } => 3,
            CpMsg::RegisterConfirm { .. } => 4,
            CpMsg::DeployRequest { .. } => 5,
            CpMsg::NmsDeploy { .. } => 6,
            CpMsg::NmsAck { .. } => 7,
            CpMsg::DeployConfirm { .. } => 8,
            CpMsg::OpRequest { .. } => 9,
            CpMsg::WithdrawRequest { .. } => 17,
            CpMsg::NmsWithdraw { .. } => 18,
            CpMsg::NmsWithdrawAck { .. } => 19,
            CpMsg::WithdrawConfirm { .. } => 20,
        }
    }
}

/// Which control-plane role a message is addressed to. Several roles can
/// share one node (a transit AS may host both the TCSP and its own NMS),
/// and node-level control delivery reaches every agent on the node, so
/// messages carry an explicit addressee role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The traffic control service provider.
    Tcsp,
    /// An ISP network management system.
    Nms,
    /// A network user.
    User,
    /// The Internet number authority.
    Authority,
}

/// Role-addressed control-plane message. `key` names the transaction
/// (responses echo the request's origin/txn) so receivers can deduplicate
/// under at-least-once delivery.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Addressee role.
    pub to: Role,
    /// Transaction identity (origin, txn, attempt).
    pub key: MsgKey,
    /// Payload.
    pub msg: CpMsg,
}

/// Send an [`Envelope`] tagged with its transaction identity so the
/// control-plane flight recorder (DESIGN.md §6.9) can follow the message
/// through the fault plane. Identical delivery semantics to a plain
/// `send_control`; the tag is observation-only.
fn send_env(ctx: &mut AgentCtx<'_>, to: NodeId, delay: SimDuration, env: Envelope) {
    let meta = CpMeta {
        origin: env.key.origin,
        txn: env.key.txn,
        attempt: env.key.attempt,
        kind: env.msg.kind_id(),
    };
    ctx.send_control_keyed(to, delay, env, meta);
}

/// Record a [`CpTraceEvent::DedupHit`] for a duplicate receipt of `env`
/// (`response` mirrors the `dup_responses` / `dup_requests` split).
fn dup_hit(ctx: &mut AgentCtx<'_>, env: &Envelope, response: bool) {
    if ctx.cp_trace_enabled() {
        ctx.cp_event(CpTraceEvent::DedupHit {
            t: ctx.now.0,
            origin: env.key.origin,
            txn: env.key.txn,
            kind: env.msg.kind_id(),
            node: ctx.node,
            response,
        });
    }
}

/// Record a [`CpTraceEvent::DedupHit`] for a duplicated / late device
/// reply (origin recovered from the message's trace tag when present).
fn reply_dup_hit(ctx: &mut AgentCtx<'_>, msg: &ControlMsg, txn: u64, kind: u8) {
    if ctx.cp_trace_enabled() {
        ctx.cp_event(CpTraceEvent::DedupHit {
            t: ctx.now.0,
            origin: msg.meta.map_or(0, |m| m.origin),
            txn,
            kind,
            node: ctx.node,
            response: true,
        });
    }
}

/// Post-deployment operations (Sec. 5.1: "activate, modify specific
/// parameters or read logs").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UserOp {
    /// Activate or deactivate the service.
    SetActive(Stage, bool),
    /// Enable/disable one module.
    SetModule(Stage, usize, bool),
}

// ---------------------------------------------------------------------
// Timer-token families. Low plain tokens (TOKEN_REGISTER…) keep their
// historical values; retransmitters and housekeeping timers live in the
// high 16 bits so they can never collide (see retry::FAMILY_MASK).
// ---------------------------------------------------------------------

const FAM_USER_REG: u64 = 0x0001 << 48;
const FAM_USER_DEPLOY: u64 = 0x0002 << 48;
const FAM_TCSP_VERIFY: u64 = 0x0003 << 48;
const FAM_TCSP_DEPLOY: u64 = 0x0004 << 48;
const FAM_TCSP_DEADLINE: u64 = 0x0005 << 48;
const FAM_NMS_INSTALL: u64 = 0x0006 << 48;
const FAM_NMS_RENEW: u64 = 0x0008 << 48;
const FAM_TCSP_WITHDRAW: u64 = 0x0009 << 48;
const FAM_NMS_REMOVE: u64 = 0x000A << 48;
const FAM_USER_WITHDRAW: u64 = 0x000B << 48;

/// Timer token that starts one NMS anti-entropy inventory sweep (the
/// scenario schedules the first; the agent re-arms itself).
pub const TOKEN_SWEEP: u64 = 0x0007 << 48;

/// Timer token that starts one NMS lease-renewal round (the scenario
/// schedules the first; the agent re-arms itself every
/// [`NmsAgent::with_leases`] `renew_every`).
pub const TOKEN_RENEW: u64 = 0x000C << 48;

/// Marker transaction id stamped on reconciliation re-installs. Replies
/// to these are intentionally untracked: a sweep repairs by repetition —
/// if the re-install is lost too, the next sweep finds the gap again.
pub const RECONCILE_TXN: u64 = u64::MAX;

/// Base of the transaction-id range used for NMS-initiated lease
/// renewals (origin 0): renewal `k` is `RENEW_TXN_BASE + k`. Disjoint
/// from user txns (`user << 16 | n`) and TCSP verify txns (small
/// counters); [`RECONCILE_TXN`] sits above the range and keeps its
/// untracked repair-by-repetition semantics.
pub const RENEW_TXN_BASE: u64 = 1 << 62;

use crate::retry::FAMILY_MASK;

// Flight-recorder message-kind ids for raw device commands, continuing
// [`CpMsg::kind_id`]'s 1–9 numbering (device replies answer with 13–16
// and 22, see `DeviceReply::kind_id`; withdrawal CpMsgs use 17–20).
const KIND_REGISTER_OWNER: u8 = 10;
const KIND_INSTALL_SERVICE: u8 = 11;
const KIND_QUERY_INVENTORY: u8 = 12;
const KIND_REMOVE_SERVICE: u8 = 21;

/// The number authority as an agent. Verification is pure, so the agent
/// is naturally idempotent: a duplicated request just recomputes and
/// re-sends the same result.
pub struct AuthorityAgent {
    registry: InternetNumberAuthority,
}

impl AuthorityAgent {
    /// Wrap a registry.
    pub fn new(registry: InternetNumberAuthority) -> AuthorityAgent {
        AuthorityAgent { registry }
    }
}

impl NodeAgent for AuthorityAgent {
    fn name(&self) -> &'static str {
        "number-authority"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Authority {
            return;
        }
        if let CpMsg::VerifyOwnership {
            txn,
            user,
            prefixes,
            reply_to,
        } = &env.msg
        {
            let ok = self.registry.verify_claim(*user, prefixes).is_ok();
            let delay = ctx.path_delay(*reply_to) + PROC_DELAY;
            send_env(
                ctx,
                *reply_to,
                delay,
                Envelope {
                    to: Role::Tcsp,
                    key: MsgKey::first(env.key.origin, env.key.txn),
                    msg: CpMsg::OwnershipResult { txn: *txn, ok },
                },
            );
        }
    }
}

/// One contracted ISP from the TCSP's point of view.
#[derive(Clone, Debug)]
pub struct IspContract {
    /// Where the ISP's NMS agent lives.
    pub nms_node: NodeId,
    /// Routers (nodes) this ISP manages; each carries an adaptive device.
    pub managed: Vec<NodeId>,
}

struct PendingRegistration {
    user: UserId,
    claimed: Vec<Prefix>,
    reply_to: NodeId,
    /// `(origin, txn)` of the user's request, for the done-cache.
    user_key: (u64, u64),
}

struct PendingDeploy {
    origin: u64,
    reply_to: NodeId,
    awaiting: usize,
    acked: BTreeSet<NodeId>,
    missing: usize,
    configured: usize,
    rejected: usize,
}

/// Cached outcome of a completed deployment, for re-acking duplicates.
#[derive(Clone, Copy)]
struct DeployOutcome {
    origin: u64,
    reply_to: NodeId,
    configured: usize,
    rejected: usize,
    isps: usize,
    isps_missing: usize,
}

struct PendingWithdraw {
    origin: u64,
    reply_to: NodeId,
    awaiting: usize,
    acked: BTreeSet<NodeId>,
    missing: usize,
    removed: usize,
}

/// Cached outcome of a completed withdrawal, for re-acking duplicates.
#[derive(Clone, Copy)]
struct WithdrawOutcome {
    origin: u64,
    reply_to: NodeId,
    removed: usize,
    isps: usize,
    isps_missing: usize,
}

/// TCSP observability.
#[derive(Clone, Debug, Default)]
pub struct TcspStats {
    /// Registrations completed successfully.
    pub registrations_ok: u64,
    /// Registrations denied.
    pub registrations_denied: u64,
    /// Deployment requests fanned out.
    pub deployments: u64,
    /// Requests dropped because the TCSP was marked unavailable.
    pub dropped_unavailable: u64,
    /// Deployments confirmed with at least one ISP missing.
    pub partial_confirms: u64,
}

/// Shared handle to TCSP stats.
pub type TcspHandle = Arc<Mutex<TcspStats>>;

/// The traffic control service provider.
pub struct TcspAgent {
    key: u64,
    authority_node: NodeId,
    cert_lifetime: SimDuration,
    isps: Vec<IspContract>,
    /// Availability switch: scenario code flips this to simulate a DDoS
    /// against the TCSP itself (requests are silently dropped).
    available: Arc<Mutex<bool>>,
    /// How long a deployment may stay pending before the TCSP confirms
    /// partially with whatever acks it has (`isps_missing` > 0).
    pub deploy_deadline: SimDuration,
    next_txn: u64,
    pending_reg: BTreeMap<u64, PendingRegistration>,
    reg_in_flight: BTreeMap<(u64, u64), u64>,
    reg_done: BTreeMap<(u64, u64), Result<Certificate, RegistrationError>>,
    pending_deploy: BTreeMap<u64, PendingDeploy>,
    deploy_done: BTreeMap<u64, DeployOutcome>,
    pending_withdraw: BTreeMap<u64, PendingWithdraw>,
    withdraw_done: BTreeMap<u64, WithdrawOutcome>,
    verify_rt: Retransmitter<u64, (UserId, Vec<Prefix>)>,
    deploy_rt: Retransmitter<(u64, NodeId), (u64, Certificate, CatalogService, Vec<NodeId>)>,
    withdraw_rt: Retransmitter<(u64, NodeId), (u64, OwnerId)>,
    stats: TcspHandle,
    cp: CpStatsHandle,
}

impl TcspAgent {
    /// New TCSP with signing `key` and contracted ISPs. Returns the agent,
    /// its stats handle, and the availability switch.
    pub fn new(
        key: u64,
        authority_node: NodeId,
        isps: Vec<IspContract>,
    ) -> (TcspAgent, TcspHandle, Arc<Mutex<bool>>) {
        let stats: TcspHandle = Arc::new(Mutex::new(TcspStats::default()));
        let available = Arc::new(Mutex::new(true));
        (
            TcspAgent {
                key,
                authority_node,
                cert_lifetime: SimDuration::from_secs(86_400),
                isps,
                available: available.clone(),
                deploy_deadline: SimDuration::from_secs(30),
                next_txn: 1,
                pending_reg: BTreeMap::new(),
                reg_in_flight: BTreeMap::new(),
                reg_done: BTreeMap::new(),
                pending_deploy: BTreeMap::new(),
                deploy_done: BTreeMap::new(),
                pending_withdraw: BTreeMap::new(),
                withdraw_done: BTreeMap::new(),
                verify_rt: Retransmitter::new(FAM_TCSP_VERIFY, RetryPolicy::default(), key ^ 0xA),
                deploy_rt: Retransmitter::new(FAM_TCSP_DEPLOY, RetryPolicy::default(), key ^ 0xB),
                withdraw_rt: Retransmitter::new(
                    FAM_TCSP_WITHDRAW,
                    RetryPolicy::default(),
                    key ^ 0x1F,
                ),
                stats: stats.clone(),
                cp: CpStatsHandle::default(),
            },
            stats,
            available,
        )
    }

    /// Share the control-plane-wide reliability counters.
    pub fn with_cp_stats(mut self, cp: CpStatsHandle) -> TcspAgent {
        self.cp = cp;
        self
    }

    /// Override the lifetime of issued certificates (default 24 h).
    /// Short lifetimes let scenarios exercise mid-flight credential
    /// expiry: deploys presented (or retried) past the expiry are
    /// rejected and counted in `CpStats::expired_deploys`.
    pub fn with_cert_lifetime(mut self, lifetime: SimDuration) -> TcspAgent {
        self.cert_lifetime = lifetime;
        self
    }

    fn resolve_scope(ctx: &AgentCtx<'_>, managed: &[NodeId], scope: &DeployScope) -> Vec<NodeId> {
        match scope {
            DeployScope::AllManaged => managed.to_vec(),
            DeployScope::Nodes(set) => managed
                .iter()
                .copied()
                .filter(|n| set.contains(n))
                .collect(),
            DeployScope::StubBorders => managed
                .iter()
                .copied()
                .filter(|&n| {
                    ctx.topo.nodes[n.0].role == dtcs_netsim::NodeRole::Transit
                        && ctx
                            .topo
                            .neighbours(n)
                            .any(|(p, _)| ctx.topo.is_customer_of(p, n))
                })
                .collect(),
            DeployScope::TopDegree(k) => {
                let mut v: Vec<NodeId> = managed.to_vec();
                v.sort_by_key(|&n| (std::cmp::Reverse(ctx.topo.nodes[n.0].degree()), n.0));
                v.truncate(*k);
                v
            }
        }
    }

    fn send_register_confirm(
        &self,
        ctx: &mut AgentCtx<'_>,
        reply_to: NodeId,
        user_key: (u64, u64),
        result: Result<Certificate, RegistrationError>,
    ) {
        let delay = ctx.path_delay(reply_to) + PROC_DELAY;
        send_env(
            ctx,
            reply_to,
            delay,
            Envelope {
                to: Role::User,
                key: MsgKey::first(user_key.0, user_key.1),
                msg: CpMsg::RegisterConfirm { result },
            },
        );
    }

    fn send_deploy_confirm(&self, ctx: &mut AgentCtx<'_>, txn: u64, out: DeployOutcome) {
        let delay = ctx.path_delay(out.reply_to) + PROC_DELAY;
        send_env(
            ctx,
            out.reply_to,
            delay,
            Envelope {
                to: Role::User,
                key: MsgKey::first(out.origin, txn),
                msg: CpMsg::DeployConfirm {
                    txn,
                    configured: out.configured,
                    rejected: out.rejected,
                    isps: out.isps,
                    isps_missing: out.isps_missing,
                },
            },
        );
    }

    /// Close out a pending deployment: cache the outcome, confirm to the
    /// user, and count a partial confirmation when ISPs are missing.
    fn finish_deploy(&mut self, ctx: &mut AgentCtx<'_>, txn: u64, extra_missing: usize) {
        let Some(p) = self.pending_deploy.remove(&txn) else {
            return;
        };
        let out = DeployOutcome {
            origin: p.origin,
            reply_to: p.reply_to,
            configured: p.configured,
            rejected: p.rejected,
            isps: p.acked.len(),
            isps_missing: p.missing + extra_missing,
        };
        if out.isps_missing > 0 {
            self.stats.lock().partial_confirms += 1;
            self.cp.lock().partial_confirms += 1;
            if ctx.cp_trace_enabled() {
                ctx.cp_event(CpTraceEvent::State {
                    t: ctx.now.0,
                    origin: out.origin,
                    txn,
                    node: ctx.node,
                    actor: "tcsp",
                    state: "partial_confirm",
                });
            }
        }
        self.deploy_done.insert(txn, out);
        self.send_deploy_confirm(ctx, txn, out);
    }

    fn send_withdraw_confirm(&self, ctx: &mut AgentCtx<'_>, txn: u64, out: WithdrawOutcome) {
        let delay = ctx.path_delay(out.reply_to) + PROC_DELAY;
        send_env(
            ctx,
            out.reply_to,
            delay,
            Envelope {
                to: Role::User,
                key: MsgKey::first(out.origin, txn),
                msg: CpMsg::WithdrawConfirm {
                    txn,
                    removed: out.removed,
                    isps: out.isps,
                    isps_missing: out.isps_missing,
                },
            },
        );
    }

    /// Close out a pending withdrawal: cache the outcome and confirm to
    /// the user. Missing ISPs are not chased further — their devices
    /// reap the orphaned filters themselves when the lease runs out.
    fn finish_withdraw(&mut self, ctx: &mut AgentCtx<'_>, txn: u64) {
        let Some(p) = self.pending_withdraw.remove(&txn) else {
            return;
        };
        let out = WithdrawOutcome {
            origin: p.origin,
            reply_to: p.reply_to,
            removed: p.removed,
            isps: p.acked.len(),
            isps_missing: p.missing,
        };
        self.withdraw_done.insert(txn, out);
        self.send_withdraw_confirm(ctx, txn, out);
    }

    /// Record a credential rejected for staleness (authentic signature,
    /// expired lifetime): counter and trace event stay 1:1.
    fn note_expired_deploy(&mut self, ctx: &mut AgentCtx<'_>, origin: u64, txn: u64) {
        self.cp.lock().expired_deploys += 1;
        if ctx.cp_trace_enabled() {
            ctx.cp_event(CpTraceEvent::State {
                t: ctx.now.0,
                origin,
                txn,
                node: ctx.node,
                actor: "tcsp",
                state: "cert_expired",
            });
        }
    }
}

impl NodeAgent for TcspAgent {
    fn name(&self) -> &'static str {
        "tcsp"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token & FAMILY_MASK == FAM_TCSP_DEADLINE {
            let txn = token & !FAMILY_MASK;
            if self.pending_deploy.contains_key(&txn) {
                // Stop chasing the silent ISPs and confirm partially.
                for isp in self.isps.clone() {
                    self.deploy_rt.ack(&(txn, isp.nms_node));
                }
                let missing = {
                    let p = &self.pending_deploy[&txn];
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::State {
                            t: ctx.now.0,
                            origin: p.origin,
                            txn,
                            node: ctx.node,
                            actor: "tcsp",
                            state: "deadline_partial",
                        });
                    }
                    p.awaiting - p.acked.len() - p.missing
                };
                self.finish_deploy(ctx, txn, missing);
            }
            return;
        }
        match self.verify_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
                return;
            }
            RetryEvent::Resend {
                key: txn,
                dest,
                payload: (user, prefixes),
                attempt,
            } => {
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest,
                    });
                }
                let delay = ctx.path_delay(dest) + PROC_DELAY;
                send_env(
                    ctx,
                    dest,
                    delay,
                    Envelope {
                        to: Role::Authority,
                        key: MsgKey {
                            origin: 0,
                            txn,
                            attempt,
                        },
                        msg: CpMsg::VerifyOwnership {
                            txn,
                            user,
                            prefixes,
                            reply_to: ctx.node,
                        },
                    },
                );
                return;
            }
            RetryEvent::GaveUp { key: txn, dest, .. } => {
                // Authority unreachable: forget the attempt so a fresh
                // user retry can restart verification.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        dest,
                    });
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        outcome: "gave_up",
                    });
                }
                if let Some(p) = self.pending_reg.remove(&txn) {
                    self.reg_in_flight.remove(&p.user_key);
                }
                return;
            }
        }
        match self.deploy_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: (txn, nms),
                payload: (origin, cert, service, nodes),
                attempt,
                ..
            } => {
                if !cert.verify(self.key, ctx.now) && cert.authentic(self.key) {
                    // The credential expired while this leg was still
                    // retrying: no filter may be installed under a dead
                    // authority. Stop chasing the ISP and count the leg
                    // missing (partial confirm once the rest resolve).
                    self.deploy_rt.ack(&(txn, nms));
                    self.note_expired_deploy(ctx, origin, txn);
                    let finish = match self.pending_deploy.get_mut(&txn) {
                        Some(p) => {
                            p.missing += 1;
                            p.acked.len() + p.missing >= p.awaiting
                        }
                        None => false,
                    };
                    if finish {
                        self.finish_deploy(ctx, txn, 0);
                    }
                    return;
                }
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: nms,
                    });
                }
                let delay = ctx.path_delay(nms) + PROC_DELAY;
                send_env(
                    ctx,
                    nms,
                    delay,
                    Envelope {
                        to: Role::Nms,
                        key: MsgKey {
                            origin,
                            txn,
                            attempt,
                        },
                        msg: CpMsg::NmsDeploy {
                            cert,
                            service,
                            nodes,
                            txn,
                            reply_to: ctx.node,
                        },
                    },
                );
                return;
            }
            RetryEvent::GaveUp {
                key: (txn, nms),
                payload: (origin, ..),
                ..
            } => {
                // This ISP never acked: count it missing; confirm
                // partially once every other ISP resolved.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin,
                        txn,
                        node: ctx.node,
                        dest: nms,
                    });
                }
                let finish = match self.pending_deploy.get_mut(&txn) {
                    Some(p) => {
                        p.missing += 1;
                        let _ = nms;
                        p.acked.len() + p.missing >= p.awaiting
                    }
                    None => false,
                };
                if finish {
                    self.finish_deploy(ctx, txn, 0);
                }
                return;
            }
        }
        match self.withdraw_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: (txn, nms),
                payload: (origin, owner),
                attempt,
                ..
            } => {
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: nms,
                    });
                }
                let delay = ctx.path_delay(nms) + PROC_DELAY;
                send_env(
                    ctx,
                    nms,
                    delay,
                    Envelope {
                        to: Role::Nms,
                        key: MsgKey {
                            origin,
                            txn,
                            attempt,
                        },
                        msg: CpMsg::NmsWithdraw {
                            owner,
                            txn,
                            reply_to: ctx.node,
                        },
                    },
                );
            }
            RetryEvent::GaveUp {
                key: (txn, nms),
                payload: (origin, ..),
                ..
            } => {
                // Partition-tolerant teardown: the unreachable ISP's
                // devices still reap their filters when the lease runs
                // out, so give up here and confirm with what we have.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin,
                        txn,
                        node: ctx.node,
                        dest: nms,
                    });
                }
                let finish = match self.pending_withdraw.get_mut(&txn) {
                    Some(p) => {
                        p.missing += 1;
                        p.acked.len() + p.missing >= p.awaiting
                    }
                    None => false,
                };
                if finish {
                    self.finish_withdraw(ctx, txn);
                }
            }
        }
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Tcsp {
            return;
        }
        if !*self.available.lock() {
            self.stats.lock().dropped_unavailable += 1;
            return;
        }
        match &env.msg {
            CpMsg::RegisterRequest {
                user,
                claimed,
                reply_to,
            } => {
                let user_key = env.key.identity();
                if let Some(result) = self.reg_done.get(&user_key) {
                    // Completed transaction, duplicated request (the
                    // confirm was probably lost): re-ack from cache.
                    self.cp.lock().dup_requests += 1;
                    let result = result.clone();
                    dup_hit(ctx, env, false);
                    self.send_register_confirm(ctx, *reply_to, user_key, result);
                    return;
                }
                if self.reg_in_flight.contains_key(&user_key) {
                    // Verification already running; its own retransmit
                    // chain covers the authority leg.
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                let txn = self.next_txn;
                self.next_txn += 1;
                self.reg_in_flight.insert(user_key, txn);
                self.pending_reg.insert(
                    txn,
                    PendingRegistration {
                        user: *user,
                        claimed: claimed.clone(),
                        reply_to: *reply_to,
                        user_key,
                    },
                );
                self.verify_rt
                    .track(ctx, txn, self.authority_node, (*user, claimed.clone()));
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetrySchedule {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        dest: self.authority_node,
                    });
                    ctx.cp_event(CpTraceEvent::State {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        actor: "tcsp",
                        state: "verify_sent",
                    });
                }
                let delay = ctx.path_delay(self.authority_node) + PROC_DELAY;
                send_env(
                    ctx,
                    self.authority_node,
                    delay,
                    Envelope {
                        to: Role::Authority,
                        key: MsgKey::first(0, txn),
                        msg: CpMsg::VerifyOwnership {
                            txn,
                            user: *user,
                            prefixes: claimed.clone(),
                            reply_to: ctx.node,
                        },
                    },
                );
            }
            CpMsg::OwnershipResult { txn, ok } => {
                self.verify_rt.ack(txn);
                let Some(pending) = self.pending_reg.remove(txn) else {
                    self.cp.lock().dup_responses += 1;
                    dup_hit(ctx, env, true);
                    return;
                };
                self.reg_in_flight.remove(&pending.user_key);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: 0,
                        txn: *txn,
                        node: ctx.node,
                        outcome: "verified",
                    });
                    ctx.cp_event(CpTraceEvent::State {
                        t: ctx.now.0,
                        origin: pending.user_key.0,
                        txn: pending.user_key.1,
                        node: ctx.node,
                        actor: "tcsp",
                        state: if *ok {
                            "register_confirmed"
                        } else {
                            "register_denied"
                        },
                    });
                }
                let result = if *ok {
                    self.stats.lock().registrations_ok += 1;
                    Ok(Certificate::issue(
                        self.key,
                        pending.user,
                        pending.claimed,
                        ctx.now + self.cert_lifetime,
                    ))
                } else {
                    self.stats.lock().registrations_denied += 1;
                    Err(RegistrationError::OwnershipDenied)
                };
                self.reg_done.insert(pending.user_key, result.clone());
                self.send_register_confirm(ctx, pending.reply_to, pending.user_key, result);
            }
            CpMsg::DeployRequest {
                cert,
                service,
                scope,
                txn,
                reply_to,
                ..
            } => {
                if let Some(out) = self.deploy_done.get(txn).copied() {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    self.send_deploy_confirm(ctx, *txn, out);
                    return;
                }
                if self.pending_deploy.contains_key(txn) {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                if !cert.verify(self.key, ctx.now) {
                    if cert.authentic(self.key) {
                        // Genuine credential whose lifetime ran out
                        // (e.g. while the request sat in a retry queue):
                        // refuse to extend a dead authority's footprint,
                        // and account for it so the gap is observable.
                        self.note_expired_deploy(ctx, env.key.origin, *txn);
                    }
                    return;
                }
                self.stats.lock().deployments += 1;
                let origin = env.key.origin;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::State {
                        t: ctx.now.0,
                        origin,
                        txn: *txn,
                        node: ctx.node,
                        actor: "tcsp",
                        state: "deploy_fanout",
                    });
                }
                let mut awaiting = 0;
                let isps = self.isps.clone();
                for isp in &isps {
                    let nodes = Self::resolve_scope(ctx, &isp.managed, scope);
                    if nodes.is_empty() {
                        continue;
                    }
                    awaiting += 1;
                    self.deploy_rt.track(
                        ctx,
                        (*txn, isp.nms_node),
                        isp.nms_node,
                        (origin, cert.clone(), service.clone(), nodes.clone()),
                    );
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::RetrySchedule {
                            t: ctx.now.0,
                            origin,
                            txn: *txn,
                            node: ctx.node,
                            dest: isp.nms_node,
                        });
                    }
                    let delay = ctx.path_delay(isp.nms_node) + PROC_DELAY;
                    send_env(
                        ctx,
                        isp.nms_node,
                        delay,
                        Envelope {
                            to: Role::Nms,
                            key: MsgKey::first(origin, *txn),
                            msg: CpMsg::NmsDeploy {
                                cert: cert.clone(),
                                service: service.clone(),
                                nodes,
                                txn: *txn,
                                reply_to: ctx.node,
                            },
                        },
                    );
                }
                self.pending_deploy.insert(
                    *txn,
                    PendingDeploy {
                        origin,
                        reply_to: *reply_to,
                        awaiting,
                        acked: BTreeSet::new(),
                        missing: 0,
                        configured: 0,
                        rejected: 0,
                    },
                );
                if awaiting == 0 {
                    // Nothing matched the scope: confirm immediately.
                    self.finish_deploy(ctx, *txn, 0);
                } else {
                    ctx.set_timer(self.deploy_deadline, FAM_TCSP_DEADLINE | *txn);
                }
            }
            CpMsg::NmsAck {
                txn,
                from_nms,
                configured,
                rejected,
            } => {
                self.deploy_rt.ack(&(*txn, *from_nms));
                let done = {
                    let Some(p) = self.pending_deploy.get_mut(txn) else {
                        // Late or duplicated ack after completion.
                        self.cp.lock().dup_responses += 1;
                        dup_hit(ctx, env, true);
                        return;
                    };
                    if !p.acked.insert(*from_nms) {
                        self.cp.lock().dup_responses += 1;
                        dup_hit(ctx, env, true);
                        return;
                    }
                    p.configured += configured;
                    p.rejected += rejected;
                    p.acked.len() + p.missing >= p.awaiting
                };
                if done {
                    self.finish_deploy(ctx, *txn, 0);
                }
            }
            CpMsg::OpRequest {
                cert,
                op,
                txn,
                reply_to,
            } => {
                if !cert.verify(self.key, ctx.now) {
                    return;
                }
                // Relay to every contracted NMS.
                for isp in self.isps.clone() {
                    let delay = ctx.path_delay(isp.nms_node) + PROC_DELAY;
                    send_env(
                        ctx,
                        isp.nms_node,
                        delay,
                        Envelope {
                            to: Role::Nms,
                            key: env.key,
                            msg: CpMsg::OpRequest {
                                cert: cert.clone(),
                                op: *op,
                                txn: *txn,
                                reply_to: *reply_to,
                            },
                        },
                    );
                }
            }
            CpMsg::WithdrawRequest {
                cert,
                txn,
                reply_to,
            } => {
                if let Some(out) = self.withdraw_done.get(txn).copied() {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    self.send_withdraw_confirm(ctx, *txn, out);
                    return;
                }
                if self.pending_withdraw.contains_key(txn) {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                // Withdrawal only *shrinks* the owner's footprint, so an
                // expired-but-genuine certificate is still honoured; a
                // forged one is not.
                if !cert.authentic(self.key) {
                    return;
                }
                self.cp.lock().withdrawals += 1;
                let origin = env.key.origin;
                let owner = OwnerId(cert.user.0);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::State {
                        t: ctx.now.0,
                        origin,
                        txn: *txn,
                        node: ctx.node,
                        actor: "tcsp",
                        state: "withdraw_fanout",
                    });
                }
                let isps = self.isps.clone();
                let mut awaiting = 0;
                for isp in &isps {
                    awaiting += 1;
                    self.withdraw_rt.track(
                        ctx,
                        (*txn, isp.nms_node),
                        isp.nms_node,
                        (origin, owner),
                    );
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::RetrySchedule {
                            t: ctx.now.0,
                            origin,
                            txn: *txn,
                            node: ctx.node,
                            dest: isp.nms_node,
                        });
                    }
                    let delay = ctx.path_delay(isp.nms_node) + PROC_DELAY;
                    send_env(
                        ctx,
                        isp.nms_node,
                        delay,
                        Envelope {
                            to: Role::Nms,
                            key: MsgKey::first(origin, *txn),
                            msg: CpMsg::NmsWithdraw {
                                owner,
                                txn: *txn,
                                reply_to: ctx.node,
                            },
                        },
                    );
                }
                self.pending_withdraw.insert(
                    *txn,
                    PendingWithdraw {
                        origin,
                        reply_to: *reply_to,
                        awaiting,
                        acked: BTreeSet::new(),
                        missing: 0,
                        removed: 0,
                    },
                );
                if awaiting == 0 {
                    self.finish_withdraw(ctx, *txn);
                }
            }
            CpMsg::NmsWithdrawAck {
                txn,
                from_nms,
                removed,
            } => {
                self.withdraw_rt.ack(&(*txn, *from_nms));
                let done = {
                    let Some(p) = self.pending_withdraw.get_mut(txn) else {
                        self.cp.lock().dup_responses += 1;
                        dup_hit(ctx, env, true);
                        return;
                    };
                    if !p.acked.insert(*from_nms) {
                        self.cp.lock().dup_responses += 1;
                        dup_hit(ctx, env, true);
                        return;
                    }
                    p.removed += removed;
                    p.acked.len() + p.missing >= p.awaiting
                };
                if done {
                    self.finish_withdraw(ctx, *txn);
                }
            }
            _ => {}
        }
    }
}

/// Everything an NMS needs to (re-)provision one service on one device:
/// registration context plus the compiled spec. Stored per in-flight
/// install and, once confirmed, in the desired-state map the
/// reconciliation sweep checks against.
#[derive(Clone)]
struct InstallJob {
    /// Origin of the deployment transaction the install belongs to (the
    /// flight-recorder trace key; reconcile re-installs re-key to 0).
    origin: u64,
    owner: OwnerId,
    prefixes: Vec<Prefix>,
    contact: NodeId,
    stage: Stage,
    spec: ServiceSpec,
    /// Expiry of the authorising certificate. Leases granted to devices
    /// never extend past it: no filter outlives its authority.
    expires_at: SimTime,
}

/// One NMS-side withdrawal fan-out in flight: which `(device, stage)`
/// removals are still unacknowledged.
struct NmsPendingWithdraw {
    origin: u64,
    reply_to: NodeId,
    awaiting: BTreeSet<(NodeId, Stage)>,
    removed: usize,
    lost: usize,
}

#[derive(Clone, Copy)]
struct NmsWithdrawDone {
    origin: u64,
    reply_to: NodeId,
    removed: usize,
}

struct NmsPendingDeploy {
    origin: u64,
    reply_to: NodeId,
    reply_role: Role,
    awaiting: BTreeSet<NodeId>,
    configured: usize,
    rejected: usize,
    lost: usize,
}

#[derive(Clone, Copy)]
struct NmsDoneAck {
    origin: u64,
    reply_to: NodeId,
    reply_role: Role,
    configured: usize,
    rejected: usize,
}

/// An ISP's network management system.
pub struct NmsAgent {
    tcsp_key: u64,
    /// Device-equipped routers this ISP manages.
    managed: Vec<NodeId>,
    /// Peer NMS nodes for ISP-to-ISP forwarding.
    peers: Vec<NodeId>,
    pending: BTreeMap<u64, NmsPendingDeploy>,
    done: BTreeMap<u64, NmsDoneAck>,
    install_rt: Retransmitter<(u64, NodeId), InstallJob>,
    /// Services this NMS has confirmed installed, per device — the
    /// reference the anti-entropy sweep compares inventories against.
    desired: BTreeMap<(NodeId, OwnerId, Stage, u64), InstallJob>,
    reconcile_every: Option<SimDuration>,
    /// Lease length granted with each install (None = lease only to the
    /// certificate expiry). See [`NmsAgent::with_leases`].
    lease_len: Option<SimDuration>,
    /// Renewal cadence; the scenario schedules the first [`TOKEN_RENEW`]
    /// timer and the agent re-arms itself every `renew_every`.
    renew_every: Option<SimDuration>,
    /// Retransmit chains for in-flight lease renewals, keyed
    /// `(renew txn, device)`.
    renew_rt: Retransmitter<(u64, NodeId), InstallJob>,
    /// Monotonic sequence for renewal transactions
    /// (`RENEW_TXN_BASE + seq`).
    next_renew_seq: u64,
    /// Retransmit chains for withdrawal removals, keyed
    /// `(withdraw txn, device, stage)`.
    remove_rt: Retransmitter<(u64, NodeId, Stage), OwnerId>,
    pending_withdraw: BTreeMap<u64, NmsPendingWithdraw>,
    withdraw_done: BTreeMap<u64, NmsWithdrawDone>,
    /// When true the anti-entropy sweep also *removes* device-resident
    /// services absent from desired state (bidirectional reconcile).
    sweep_removes: bool,
    /// Installs currently in flight — the sweep must not treat a service
    /// as orphaned while its confirming ack is still on the wire.
    installing: BTreeSet<(NodeId, OwnerId, Stage)>,
    /// Owners withdrawn on this NMS: a late `InstallOk` for one must not
    /// resurrect a desired-state entry. Cleared on a fresh deploy.
    withdrawn: BTreeSet<OwnerId>,
    cp: CpStatsHandle,
    /// Deployments this NMS has executed (service name, node count).
    pub log: Vec<(String, usize)>,
}

impl NmsAgent {
    /// New NMS managing `managed` routers.
    pub fn new(tcsp_key: u64, managed: Vec<NodeId>, peers: Vec<NodeId>) -> NmsAgent {
        NmsAgent {
            tcsp_key,
            managed,
            peers,
            pending: BTreeMap::new(),
            done: BTreeMap::new(),
            install_rt: Retransmitter::new(FAM_NMS_INSTALL, RetryPolicy::default(), tcsp_key ^ 0xC),
            desired: BTreeMap::new(),
            reconcile_every: None,
            lease_len: None,
            renew_every: None,
            renew_rt: Retransmitter::new(FAM_NMS_RENEW, RetryPolicy::default(), tcsp_key ^ 0x2D),
            next_renew_seq: 0,
            remove_rt: Retransmitter::new(FAM_NMS_REMOVE, RetryPolicy::default(), tcsp_key ^ 0x3E),
            pending_withdraw: BTreeMap::new(),
            withdraw_done: BTreeMap::new(),
            sweep_removes: false,
            installing: BTreeSet::new(),
            withdrawn: BTreeSet::new(),
            cp: CpStatsHandle::default(),
            log: Vec::new(),
        }
    }

    /// Enable the periodic anti-entropy sweep. The scenario must also
    /// schedule the first [`TOKEN_SWEEP`] timer; the agent re-arms itself
    /// every `every` thereafter.
    pub fn with_reconcile(mut self, every: SimDuration) -> NmsAgent {
        self.reconcile_every = Some(every);
        self
    }

    /// Grant every install a lease of `lease_len` (clamped to the
    /// credential expiry) and renew the whole desired state every
    /// `renew_every`. The scenario must schedule the first
    /// [`TOKEN_RENEW`] timer; the agent re-arms itself thereafter.
    /// Devices reap any service whose lease lapses — an NMS partitioned
    /// away from its devices can therefore never strand a filter for
    /// longer than one lease length.
    pub fn with_leases(mut self, lease_len: SimDuration, renew_every: SimDuration) -> NmsAgent {
        self.lease_len = Some(lease_len);
        self.renew_every = Some(renew_every);
        self
    }

    /// Make the anti-entropy sweep bidirectional: device-resident
    /// services with no desired-state entry (and no install in flight)
    /// are removed, not just missing ones re-installed.
    pub fn with_sweep_removals(mut self) -> NmsAgent {
        self.sweep_removes = true;
        self
    }

    /// Share the control-plane-wide reliability counters.
    pub fn with_cp_stats(mut self, cp: CpStatsHandle) -> NmsAgent {
        self.cp = cp;
        self
    }

    fn send_install(
        &self,
        ctx: &mut AgentCtx<'_>,
        node: NodeId,
        txn: u64,
        attempt: u32,
        job: &InstallJob,
    ) {
        // Reconcile re-installs and lease renewals trace under origin 0
        // (`RECONCILE_TXN` / `RENEW_TXN_BASE + seq`); tracked installs
        // keep their deploy key.
        let origin = if txn >= RENEW_TXN_BASE { 0 } else { job.origin };
        // Lease: never past the authorising credential's expiry; without
        // explicit leasing the certificate lifetime alone bounds the
        // install.
        let lease_until = match self.lease_len {
            Some(len) => (ctx.now + len).min(job.expires_at),
            None => job.expires_at,
        };
        let delay = ctx.path_delay(node) + PROC_DELAY;
        ctx.send_control_keyed(
            node,
            delay,
            DeviceCommand::RegisterOwner {
                owner: job.owner,
                prefixes: job.prefixes.clone(),
                contact: job.contact,
            },
            CpMeta {
                origin,
                txn,
                attempt,
                kind: KIND_REGISTER_OWNER,
            },
        );
        ctx.send_control_keyed(
            node,
            delay + PROC_DELAY,
            DeviceCommand::InstallService {
                txn,
                owner: job.owner,
                stage: job.stage,
                spec: job.spec.clone(),
                lease_until,
            },
            CpMeta {
                origin,
                txn,
                attempt,
                kind: KIND_INSTALL_SERVICE,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn deploy_on(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        cert: &Certificate,
        service: &CatalogService,
        nodes: &[NodeId],
        origin: u64,
        txn: u64,
        reply_to: NodeId,
        reply_role: Role,
    ) {
        let job = InstallJob {
            origin,
            owner: OwnerId(cert.user.0),
            prefixes: cert.prefixes.clone(),
            contact: reply_to, // telemetry goes to the requesting user
            stage: service.stage(),
            spec: service.compile(),
            expires_at: cert.expires_at,
        };
        // A fresh deployment supersedes any earlier withdrawal.
        self.withdrawn.remove(&job.owner);
        if ctx.cp_trace_enabled() {
            ctx.cp_event(CpTraceEvent::State {
                t: ctx.now.0,
                origin,
                txn,
                node: ctx.node,
                actor: "nms",
                state: "deploy_accepted",
            });
        }
        let mut awaiting = BTreeSet::new();
        for &node in nodes {
            if !self.managed.contains(&node) {
                continue;
            }
            self.send_install(ctx, node, txn, 0, &job);
            self.install_rt.track(ctx, (txn, node), node, job.clone());
            self.installing.insert((node, job.owner, job.stage));
            if ctx.cp_trace_enabled() {
                ctx.cp_event(CpTraceEvent::RetrySchedule {
                    t: ctx.now.0,
                    origin,
                    txn,
                    node: ctx.node,
                    dest: node,
                });
            }
            awaiting.insert(node);
        }
        self.log.push((job.spec.name.clone(), awaiting.len()));
        self.pending.insert(
            txn,
            NmsPendingDeploy {
                origin,
                reply_to,
                reply_role,
                awaiting,
                configured: 0,
                rejected: 0,
                lost: 0,
            },
        );
        self.finish_if_done(ctx, txn);
    }

    fn send_nms_ack(&self, ctx: &mut AgentCtx<'_>, txn: u64, ack: NmsDoneAck) {
        let delay = ctx.path_delay(ack.reply_to) + PROC_DELAY;
        send_env(
            ctx,
            ack.reply_to,
            delay,
            Envelope {
                to: ack.reply_role,
                key: MsgKey::first(ack.origin, txn),
                msg: CpMsg::NmsAck {
                    txn,
                    from_nms: ctx.node,
                    configured: ack.configured,
                    rejected: ack.rejected,
                },
            },
        );
    }

    fn finish_if_done(&mut self, ctx: &mut AgentCtx<'_>, txn: u64) {
        let finished = self
            .pending
            .get(&txn)
            .is_some_and(|p| p.awaiting.is_empty());
        if !finished {
            return;
        }
        let p = self.pending.remove(&txn).expect("just checked");
        let ack = NmsDoneAck {
            origin: p.origin,
            reply_to: p.reply_to,
            reply_role: p.reply_role,
            configured: p.configured,
            rejected: p.rejected,
        };
        self.done.insert(txn, ack);
        self.send_nms_ack(ctx, txn, ack);
    }

    /// One anti-entropy round: ask every managed device for its inventory;
    /// [`DeviceReply::Inventory`] answers are diffed against the
    /// desired-state map and gaps re-installed.
    fn sweep(&mut self, ctx: &mut AgentCtx<'_>) {
        self.cp.lock().reconcile_sweeps += 1;
        if ctx.cp_trace_enabled() {
            ctx.cp_event(CpTraceEvent::Sweep {
                t: ctx.now.0,
                node: ctx.node,
            });
        }
        for &node in &self.managed.clone() {
            let delay = ctx.path_delay(node) + PROC_DELAY;
            ctx.send_control_keyed(
                node,
                delay,
                DeviceCommand::QueryInventory { reply_to: ctx.node },
                CpMeta {
                    origin: 0,
                    txn: RECONCILE_TXN,
                    attempt: 0,
                    kind: KIND_QUERY_INVENTORY,
                },
            );
        }
        if ctx.cp_trace_enabled() {
            // Each round is terminal by construction — repair is by
            // repetition, so the round closes when its queries are out.
            ctx.cp_event(CpTraceEvent::Terminal {
                t: ctx.now.0,
                origin: 0,
                txn: RECONCILE_TXN,
                node: ctx.node,
                outcome: "reconciled",
            });
        }
    }

    fn send_remove(
        &self,
        ctx: &mut AgentCtx<'_>,
        node: NodeId,
        txn: u64,
        attempt: u32,
        origin: u64,
        owner: OwnerId,
        stage: Stage,
    ) {
        let delay = ctx.path_delay(node) + PROC_DELAY;
        ctx.send_control_keyed(
            node,
            delay,
            DeviceCommand::RemoveService { owner, stage, txn },
            CpMeta {
                origin,
                txn,
                attempt,
                kind: KIND_REMOVE_SERVICE,
            },
        );
    }

    fn send_withdraw_ack(&self, ctx: &mut AgentCtx<'_>, txn: u64, done: NmsWithdrawDone) {
        let delay = ctx.path_delay(done.reply_to) + PROC_DELAY;
        send_env(
            ctx,
            done.reply_to,
            delay,
            Envelope {
                to: Role::Tcsp,
                key: MsgKey::first(done.origin, txn),
                msg: CpMsg::NmsWithdrawAck {
                    txn,
                    from_nms: ctx.node,
                    removed: done.removed,
                },
            },
        );
    }

    fn finish_withdraw_if_done(&mut self, ctx: &mut AgentCtx<'_>, txn: u64) {
        let finished = self
            .pending_withdraw
            .get(&txn)
            .is_some_and(|p| p.awaiting.is_empty());
        if !finished {
            return;
        }
        let p = self.pending_withdraw.remove(&txn).expect("just checked");
        let done = NmsWithdrawDone {
            origin: p.origin,
            reply_to: p.reply_to,
            removed: p.removed,
        };
        self.withdraw_done.insert(txn, done);
        self.send_withdraw_ack(ctx, txn, done);
    }

    /// One renewal round: expire desired-state entries whose authorising
    /// certificate lapsed, then re-install (and thereby re-lease) every
    /// surviving entry under a fresh tracked renewal transaction.
    fn renew_round(&mut self, ctx: &mut AgentCtx<'_>) {
        let expired: Vec<(NodeId, OwnerId, Stage, u64)> = self
            .desired
            .iter()
            .filter(|(_, job)| job.expires_at <= ctx.now)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            self.desired.remove(&key);
            self.cp.lock().lease_expirations += 1;
            let txn = RENEW_TXN_BASE + self.next_renew_seq;
            self.next_renew_seq += 1;
            if ctx.cp_trace_enabled() {
                ctx.cp_event(CpTraceEvent::State {
                    t: ctx.now.0,
                    origin: 0,
                    txn,
                    node: ctx.node,
                    actor: "nms",
                    state: "desired_expired",
                });
                ctx.cp_event(CpTraceEvent::Terminal {
                    t: ctx.now.0,
                    origin: 0,
                    txn,
                    node: ctx.node,
                    outcome: "expired",
                });
            }
        }
        let live: Vec<(NodeId, InstallJob)> = self
            .desired
            .iter()
            .map(|((node, ..), job)| (*node, job.clone()))
            .collect();
        for (node, job) in live {
            self.cp.lock().lease_renewals += 1;
            let txn = RENEW_TXN_BASE + self.next_renew_seq;
            self.next_renew_seq += 1;
            if ctx.cp_trace_enabled() {
                ctx.cp_event(CpTraceEvent::State {
                    t: ctx.now.0,
                    origin: 0,
                    txn,
                    node: ctx.node,
                    actor: "nms",
                    state: "renew",
                });
                ctx.cp_event(CpTraceEvent::RetrySchedule {
                    t: ctx.now.0,
                    origin: 0,
                    txn,
                    node: ctx.node,
                    dest: node,
                });
            }
            self.send_install(ctx, node, txn, 0, &job);
            self.renew_rt.track(ctx, (txn, node), node, job);
        }
    }
}

impl NodeAgent for NmsAgent {
    fn name(&self) -> &'static str {
        "isp-nms"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token == TOKEN_SWEEP {
            self.sweep(ctx);
            if let Some(every) = self.reconcile_every {
                ctx.set_timer(every, TOKEN_SWEEP);
            }
            return;
        }
        if token == TOKEN_RENEW {
            self.renew_round(ctx);
            if let Some(every) = self.renew_every {
                ctx.set_timer(every, TOKEN_RENEW);
            }
            return;
        }
        match self.install_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: (txn, node),
                payload: job,
                attempt,
                ..
            } => {
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: job.origin,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: node,
                    });
                }
                self.send_install(ctx, node, txn, attempt, &job);
                return;
            }
            RetryEvent::GaveUp {
                key: (txn, node),
                payload: job,
                ..
            } => {
                // Device unreachable past the retry budget: report what
                // we have; the reconciliation sweep repairs it later.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: job.origin,
                        txn,
                        node: ctx.node,
                        dest: node,
                    });
                    ctx.cp_event(CpTraceEvent::State {
                        t: ctx.now.0,
                        origin: job.origin,
                        txn,
                        node: ctx.node,
                        actor: "nms",
                        state: "device_lost",
                    });
                }
                self.installing.remove(&(node, job.owner, job.stage));
                if let Some(p) = self.pending.get_mut(&txn) {
                    if p.awaiting.remove(&node) {
                        p.lost += 1;
                    }
                }
                self.finish_if_done(ctx, txn);
                return;
            }
        }
        match self.renew_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: (txn, node),
                payload: job,
                attempt,
                ..
            } => {
                if self.withdrawn.contains(&job.owner) {
                    // The owner withdrew while this renewal was in
                    // flight: retransmitting would re-install the filter
                    // we just tore down. Abandon the chain instead.
                    self.renew_rt.ack(&(txn, node));
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::Terminal {
                            t: ctx.now.0,
                            origin: 0,
                            txn,
                            node: ctx.node,
                            outcome: "abandoned",
                        });
                    }
                    return;
                }
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: node,
                    });
                }
                self.send_install(ctx, node, txn, attempt, &job);
                return;
            }
            RetryEvent::GaveUp {
                key: (txn, node), ..
            } => {
                // A renewal that never lands is self-correcting: the
                // device reaps the unrenewed lease, and the next sweep
                // re-installs once the device is reachable again.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        dest: node,
                    });
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: 0,
                        txn,
                        node: ctx.node,
                        outcome: "gave_up",
                    });
                }
                return;
            }
        }
        match self.remove_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: (txn, node, stage),
                payload: owner,
                attempt,
                ..
            } => {
                let origin = self
                    .pending_withdraw
                    .get(&txn)
                    .map(|p| p.origin)
                    .unwrap_or(0);
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: node,
                    });
                }
                self.send_remove(ctx, node, txn, attempt, origin, owner, stage);
            }
            RetryEvent::GaveUp {
                key: (txn, node, stage),
                payload: owner,
                ..
            } => {
                // Device unreachable: count the leg lost and let its
                // lease reap the filter device-side.
                self.cp.lock().give_ups += 1;
                let origin = self
                    .pending_withdraw
                    .get(&txn)
                    .map(|p| p.origin)
                    .unwrap_or(0);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin,
                        txn,
                        node: ctx.node,
                        dest: node,
                    });
                }
                let _ = owner;
                if let Some(p) = self.pending_withdraw.get_mut(&txn) {
                    if p.awaiting.remove(&(node, stage)) {
                        p.lost += 1;
                    }
                }
                self.finish_withdraw_if_done(ctx, txn);
            }
        }
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        if let Some(reply) = msg.get::<DeviceReply>() {
            match reply {
                DeviceReply::InstallOk { node, txn, .. } => {
                    if *txn == RECONCILE_TXN {
                        return; // repair-by-repetition: untracked
                    }
                    if *txn >= RENEW_TXN_BASE {
                        // Lease renewal acknowledged.
                        if self.renew_rt.take(&(*txn, *node)).is_some() {
                            if ctx.cp_trace_enabled() {
                                ctx.cp_event(CpTraceEvent::Terminal {
                                    t: ctx.now.0,
                                    origin: 0,
                                    txn: *txn,
                                    node: ctx.node,
                                    outcome: "renewed",
                                });
                            }
                        } else {
                            self.cp.lock().dup_responses += 1;
                            reply_dup_hit(ctx, msg, *txn, reply.kind_id());
                        }
                        return;
                    }
                    if let Some(job) = self.install_rt.take(&(*txn, *node)) {
                        self.installing.remove(&(*node, job.owner, job.stage));
                        if !self.withdrawn.contains(&job.owner) {
                            let hash = job.spec.content_hash();
                            self.desired
                                .insert((*node, job.owner, job.stage, hash), job);
                        }
                    }
                    match self.pending.get_mut(txn) {
                        Some(p) if p.awaiting.contains(node) => {
                            p.awaiting.remove(node);
                            p.configured += 1;
                            let origin = p.origin;
                            if ctx.cp_trace_enabled() {
                                ctx.cp_event(CpTraceEvent::State {
                                    t: ctx.now.0,
                                    origin,
                                    txn: *txn,
                                    node: ctx.node,
                                    actor: "nms",
                                    state: "device_installed",
                                });
                            }
                            self.finish_if_done(ctx, *txn);
                        }
                        _ => {
                            self.cp.lock().dup_responses += 1;
                            reply_dup_hit(ctx, msg, *txn, reply.kind_id());
                        }
                    }
                }
                DeviceReply::InstallRejected { node, txn, .. } => {
                    if *txn == RECONCILE_TXN {
                        return;
                    }
                    if *txn >= RENEW_TXN_BASE {
                        if self.renew_rt.take(&(*txn, *node)).is_some() {
                            if ctx.cp_trace_enabled() {
                                ctx.cp_event(CpTraceEvent::Terminal {
                                    t: ctx.now.0,
                                    origin: 0,
                                    txn: *txn,
                                    node: ctx.node,
                                    outcome: "renew_rejected",
                                });
                            }
                        } else {
                            self.cp.lock().dup_responses += 1;
                            reply_dup_hit(ctx, msg, *txn, reply.kind_id());
                        }
                        return;
                    }
                    if let Some(job) = self.install_rt.take(&(*txn, *node)) {
                        self.installing.remove(&(*node, job.owner, job.stage));
                    }
                    match self.pending.get_mut(txn) {
                        Some(p) if p.awaiting.contains(node) => {
                            p.awaiting.remove(node);
                            p.rejected += 1;
                            let origin = p.origin;
                            if ctx.cp_trace_enabled() {
                                ctx.cp_event(CpTraceEvent::State {
                                    t: ctx.now.0,
                                    origin,
                                    txn: *txn,
                                    node: ctx.node,
                                    actor: "nms",
                                    state: "device_rejected",
                                });
                            }
                            self.finish_if_done(ctx, *txn);
                        }
                        _ => {
                            self.cp.lock().dup_responses += 1;
                            reply_dup_hit(ctx, msg, *txn, reply.kind_id());
                        }
                    }
                }
                DeviceReply::Inventory { node, installed } => {
                    let installed: BTreeSet<(OwnerId, Stage, u64)> =
                        installed.iter().copied().collect();
                    let gaps: Vec<(NodeId, InstallJob)> = self
                        .desired
                        .iter()
                        .filter(|((n, owner, stage, hash), _)| {
                            n == node && !installed.contains(&(*owner, *stage, *hash))
                        })
                        .map(|((n, ..), job)| (*n, job.clone()))
                        .collect();
                    for (n, job) in gaps {
                        self.cp.lock().reconcile_reinstalls += 1;
                        if ctx.cp_trace_enabled() {
                            ctx.cp_event(CpTraceEvent::State {
                                t: ctx.now.0,
                                origin: 0,
                                txn: RECONCILE_TXN,
                                node: ctx.node,
                                actor: "nms",
                                state: "reinstall",
                            });
                        }
                        self.send_install(ctx, n, RECONCILE_TXN, 0, &job);
                    }
                    if self.sweep_removes {
                        // Bidirectional pass: device-resident services
                        // with no desired-state entry (any spec hash) and
                        // no install in flight are orphans — remove them.
                        let orphans: Vec<(OwnerId, Stage)> = installed
                            .iter()
                            .filter(|(owner, stage, _)| {
                                !self.installing.contains(&(*node, *owner, *stage))
                                    && self
                                        .desired
                                        .range(
                                            (*node, *owner, *stage, 0)
                                                ..=(*node, *owner, *stage, u64::MAX),
                                        )
                                        .next()
                                        .is_none()
                            })
                            .map(|(owner, stage, _)| (*owner, *stage))
                            .collect();
                        for (owner, stage) in orphans {
                            self.cp.lock().reconcile_removals += 1;
                            if ctx.cp_trace_enabled() {
                                ctx.cp_event(CpTraceEvent::State {
                                    t: ctx.now.0,
                                    origin: 0,
                                    txn: RECONCILE_TXN,
                                    node: ctx.node,
                                    actor: "nms",
                                    state: "remove_orphan",
                                });
                            }
                            // Untracked, like reinstalls: repair is by
                            // repetition on the next sweep.
                            self.send_remove(ctx, *node, RECONCILE_TXN, 0, 0, owner, stage);
                        }
                    }
                }
                DeviceReply::RemoveOk {
                    node,
                    owner,
                    stage,
                    txn,
                } => {
                    if *txn == RECONCILE_TXN {
                        return; // sweep removal: untracked
                    }
                    if self.remove_rt.take(&(*txn, *node, *stage)).is_none() {
                        self.cp.lock().dup_responses += 1;
                        reply_dup_hit(ctx, msg, *txn, reply.kind_id());
                        return;
                    }
                    let _ = owner;
                    self.cp.lock().withdraw_removes += 1;
                    let origin = self
                        .pending_withdraw
                        .get(txn)
                        .map(|p| p.origin)
                        .unwrap_or(0);
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::State {
                            t: ctx.now.0,
                            origin,
                            txn: *txn,
                            node: ctx.node,
                            actor: "nms",
                            state: "device_removed",
                        });
                    }
                    if let Some(p) = self.pending_withdraw.get_mut(txn) {
                        if p.awaiting.remove(&(*node, *stage)) {
                            p.removed += 1;
                        }
                    }
                    self.finish_withdraw_if_done(ctx, *txn);
                }
                _ => {}
            }
            return;
        }
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::Nms {
            return;
        }
        match &env.msg {
            CpMsg::NmsDeploy {
                cert,
                service,
                nodes,
                txn,
                reply_to,
            } => {
                if let Some(ack) = self.done.get(txn).copied() {
                    // Our ack was lost; the TCSP retransmitted. Re-ack.
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    self.send_nms_ack(ctx, *txn, ack);
                    return;
                }
                if self.pending.contains_key(txn) {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let nodes = nodes.clone();
                self.deploy_on(
                    ctx,
                    &cert.clone(),
                    &service.clone(),
                    &nodes,
                    env.key.origin,
                    *txn,
                    *reply_to,
                    Role::Tcsp,
                );
            }
            CpMsg::DeployRequest {
                cert,
                service,
                scope,
                txn,
                reply_to,
                forward_to_peers,
            } => {
                // Direct user → ISP path (TCSP fallback).
                if let Some(ack) = self.done.get(txn).copied() {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    self.send_nms_ack(ctx, *txn, ack);
                    return;
                }
                if self.pending.contains_key(txn) {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let nodes = TcspAgent::resolve_scope(ctx, &self.managed.clone(), scope);
                self.deploy_on(
                    ctx,
                    &cert.clone(),
                    &service.clone(),
                    &nodes,
                    env.key.origin,
                    *txn,
                    *reply_to,
                    Role::User,
                );
                if *forward_to_peers {
                    for peer in self.peers.clone() {
                        let delay = ctx.path_delay(peer) + PROC_DELAY;
                        send_env(
                            ctx,
                            peer,
                            delay,
                            Envelope {
                                to: Role::Nms,
                                key: env.key,
                                msg: CpMsg::DeployRequest {
                                    cert: cert.clone(),
                                    service: service.clone(),
                                    scope: scope.clone(),
                                    txn: *txn,
                                    reply_to: *reply_to,
                                    forward_to_peers: false, // one-hop fan-out
                                },
                            },
                        );
                    }
                }
            }
            CpMsg::OpRequest { cert, op, .. } => {
                if !cert.verify(self.tcsp_key, ctx.now) {
                    return;
                }
                let owner = OwnerId(cert.user.0);
                for &node in &self.managed.clone() {
                    let delay = ctx.path_delay(node) + PROC_DELAY;
                    let cmd = match op {
                        UserOp::SetActive(stage, active) => DeviceCommand::SetServiceActive {
                            owner,
                            stage: *stage,
                            active: *active,
                        },
                        UserOp::SetModule(stage, module, enabled) => {
                            DeviceCommand::SetModuleEnabled {
                                owner,
                                stage: *stage,
                                module: *module,
                                enabled: *enabled,
                            }
                        }
                    };
                    ctx.send_control(node, delay, cmd);
                }
            }
            CpMsg::NmsWithdraw {
                owner,
                txn,
                reply_to,
            } => {
                if let Some(done) = self.withdraw_done.get(txn).copied() {
                    // Our ack was lost; the TCSP retransmitted. Re-ack.
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    self.send_withdraw_ack(ctx, *txn, done);
                    return;
                }
                if self.pending_withdraw.contains_key(txn) {
                    self.cp.lock().dup_requests += 1;
                    dup_hit(ctx, env, false);
                    return;
                }
                let origin = env.key.origin;
                self.withdrawn.insert(*owner);
                // Drop the owner from desired state first so neither the
                // sweep nor a renewal round re-installs mid-teardown.
                let victims: BTreeSet<(NodeId, Stage)> = self
                    .desired
                    .keys()
                    .filter(|(_, o, ..)| o == owner)
                    .map(|(n, _, s, _)| (*n, *s))
                    .collect();
                self.desired.retain(|(_, o, ..), _| o != owner);
                for &(node, stage) in &victims {
                    self.remove_rt.track(ctx, (*txn, node, stage), node, *owner);
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::RetrySchedule {
                            t: ctx.now.0,
                            origin,
                            txn: *txn,
                            node: ctx.node,
                            dest: node,
                        });
                    }
                    self.send_remove(ctx, node, *txn, 0, origin, *owner, stage);
                }
                self.pending_withdraw.insert(
                    *txn,
                    NmsPendingWithdraw {
                        origin,
                        reply_to: *reply_to,
                        awaiting: victims,
                        removed: 0,
                        lost: 0,
                    },
                );
                self.finish_withdraw_if_done(ctx, *txn);
            }
            _ => {}
        }
    }
}

/// What a user agent records, for experiment E7.
#[derive(Clone, Debug, Default)]
pub struct UserRecord {
    /// Certificate received at.
    pub registered_at: Option<SimTime>,
    /// The certificate.
    pub cert: Option<Certificate>,
    /// Registration denied?
    pub denied: bool,
    /// RegisterRequest retransmits sent before the confirm arrived.
    pub register_retries: usize,
    /// Deployment confirmed at.
    pub deploy_confirmed_at: Option<SimTime>,
    /// Devices configured per the confirmation.
    pub devices_configured: usize,
    /// Rejected installs per the confirmation.
    pub installs_rejected: usize,
    /// ISPs the TCSP reported missing (partial confirmation).
    pub isps_missing: usize,
    /// ISP acks received on the fallback path.
    pub fallback_acks: usize,
    /// Did the user fall back to direct-ISP deployment?
    pub used_fallback: bool,
    /// Withdrawal confirmed at (scheduled via [`TOKEN_WITHDRAW`]).
    pub withdraw_confirmed_at: Option<SimTime>,
    /// Device removals the withdrawal confirmation reported.
    pub services_removed: usize,
}

/// Shared handle to a user's record.
pub type UserHandle = Arc<Mutex<UserRecord>>;

/// Timer token scenario code passes to
/// [`Simulator::schedule_agent_timer`](dtcs_netsim::Simulator::schedule_agent_timer)
/// to kick off a user agent's registration sequence.
pub const TOKEN_REGISTER: u64 = 1;
const T_DEPLOY: u64 = 2;
const T_TIMEOUT: u64 = 3;
/// Timer token scenario code schedules on a user agent to make it tear
/// down its deployment (a keyed, retried [`CpMsg::WithdrawRequest`]).
pub const TOKEN_WITHDRAW: u64 = 4;

/// A network user driving registration and deployment.
pub struct UserAgent {
    /// User identity.
    pub user: UserId,
    /// Prefixes to claim.
    pub claim: Vec<Prefix>,
    /// TCSP location.
    pub tcsp_node: NodeId,
    /// Service to deploy once registered.
    pub service: CatalogService,
    /// Deployment scope.
    pub scope: DeployScope,
    /// When to start registering.
    pub register_at: SimTime,
    /// Timeout before falling back to direct-ISP deployment.
    pub deploy_timeout: SimDuration,
    /// Pause between receiving the certificate and sending the deploy
    /// request (lets scenarios stage TCSP outages between the two).
    pub deploy_delay: SimDuration,
    /// NMS nodes for the fallback path (first entry is contacted, with
    /// peer forwarding on).
    pub fallback_nms: Vec<NodeId>,
    txn: u64,
    reg_txn: u64,
    record: UserHandle,
    started_deploy: bool,
    reg_rt: Retransmitter<u64, ()>,
    deploy_rt: Retransmitter<u64, ()>,
    withdraw_rt: Retransmitter<u64, ()>,
    dedup: Dedup,
    cp: CpStatsHandle,
}

impl UserAgent {
    /// New user agent; returns the shared record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        user: UserId,
        claim: Vec<Prefix>,
        tcsp_node: NodeId,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
    ) -> (UserAgent, UserHandle) {
        let record: UserHandle = Arc::new(Mutex::new(UserRecord::default()));
        let txn = (user.0 << 16) | 1;
        (
            UserAgent {
                user,
                claim,
                tcsp_node,
                service,
                scope,
                register_at,
                deploy_timeout: SimDuration::from_secs(5),
                deploy_delay: SimDuration::ZERO,
                fallback_nms: Vec::new(),
                txn,
                reg_txn: txn,
                record: record.clone(),
                started_deploy: false,
                reg_rt: Retransmitter::new(FAM_USER_REG, RetryPolicy::default(), user.0 ^ 0xD),
                deploy_rt: Retransmitter::new(
                    FAM_USER_DEPLOY,
                    RetryPolicy::default(),
                    user.0 ^ 0xE,
                ),
                withdraw_rt: Retransmitter::new(
                    FAM_USER_WITHDRAW,
                    RetryPolicy::default(),
                    user.0 ^ 0xF,
                ),
                dedup: Dedup::new(),
                cp: CpStatsHandle::default(),
            },
            record,
        )
    }

    /// Configure the fallback NMS list.
    pub fn with_fallback(mut self, nms: Vec<NodeId>) -> UserAgent {
        self.fallback_nms = nms;
        self
    }

    /// Configure the pause between registration and deployment.
    pub fn with_deploy_delay(mut self, delay: SimDuration) -> UserAgent {
        self.deploy_delay = delay;
        self
    }

    /// Share the control-plane-wide reliability counters.
    pub fn with_cp_stats(mut self, cp: CpStatsHandle) -> UserAgent {
        self.cp = cp;
        self
    }

    fn send_register(&self, ctx: &mut AgentCtx<'_>, attempt: u32) {
        let delay = ctx.path_delay(self.tcsp_node) + PROC_DELAY;
        send_env(
            ctx,
            self.tcsp_node,
            delay,
            Envelope {
                to: Role::Tcsp,
                key: MsgKey {
                    origin: self.user.0,
                    txn: self.reg_txn,
                    attempt,
                },
                msg: CpMsg::RegisterRequest {
                    user: self.user,
                    claimed: self.claim.clone(),
                    reply_to: ctx.node,
                },
            },
        );
    }

    fn send_deploy(
        &self,
        ctx: &mut AgentCtx<'_>,
        dest: NodeId,
        to: Role,
        txn: u64,
        attempt: u32,
        forward_to_peers: bool,
    ) {
        let cert = { self.record.lock().cert.clone() };
        let Some(cert) = cert else { return };
        let delay = ctx.path_delay(dest) + PROC_DELAY;
        send_env(
            ctx,
            dest,
            delay,
            Envelope {
                to,
                key: MsgKey {
                    origin: self.user.0,
                    txn,
                    attempt,
                },
                msg: CpMsg::DeployRequest {
                    cert,
                    service: self.service.clone(),
                    scope: self.scope.clone(),
                    txn,
                    reply_to: ctx.node,
                    forward_to_peers,
                },
            },
        );
    }

    fn send_withdraw(&self, ctx: &mut AgentCtx<'_>, txn: u64, attempt: u32) {
        let cert = { self.record.lock().cert.clone() };
        let Some(cert) = cert else { return };
        let delay = ctx.path_delay(self.tcsp_node) + PROC_DELAY;
        send_env(
            ctx,
            self.tcsp_node,
            delay,
            Envelope {
                to: Role::Tcsp,
                key: MsgKey {
                    origin: self.user.0,
                    txn,
                    attempt,
                },
                msg: CpMsg::WithdrawRequest {
                    cert,
                    txn,
                    reply_to: ctx.node,
                },
            },
        );
    }
}

impl NodeAgent for UserAgent {
    fn name(&self) -> &'static str {
        "tcs-user"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        match token {
            TOKEN_REGISTER => {
                self.send_register(ctx, 0);
                self.reg_rt.track(ctx, self.reg_txn, self.tcsp_node, ());
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetrySchedule {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn: self.reg_txn,
                        node: ctx.node,
                        dest: self.tcsp_node,
                    });
                }
                return;
            }
            T_DEPLOY => {
                if self.record.lock().cert.is_none() {
                    return;
                }
                self.txn += 1;
                let txn = self.txn;
                self.send_deploy(ctx, self.tcsp_node, Role::Tcsp, txn, 0, false);
                self.deploy_rt.track(ctx, txn, self.tcsp_node, ());
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetrySchedule {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest: self.tcsp_node,
                    });
                }
                ctx.set_timer(self.deploy_timeout, T_TIMEOUT);
                return;
            }
            T_TIMEOUT => {
                let confirmed = self.record.lock().deploy_confirmed_at.is_some();
                if confirmed || self.fallback_nms.is_empty() {
                    return;
                }
                if self.record.lock().cert.is_none() {
                    return;
                }
                // TCSP unreachable: stop chasing it and go straight to
                // the ISPs under a fresh transaction.
                self.deploy_rt.ack(&self.txn);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn: self.txn,
                        node: ctx.node,
                        outcome: "abandoned",
                    });
                }
                self.record.lock().used_fallback = true;
                self.txn += 1;
                let txn = self.txn;
                let first = self.fallback_nms[0];
                self.send_deploy(ctx, first, Role::Nms, txn, 0, true);
                self.deploy_rt.track(ctx, txn, first, ());
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetrySchedule {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest: first,
                    });
                }
                return;
            }
            TOKEN_WITHDRAW => {
                if self.record.lock().cert.is_none() {
                    return;
                }
                self.txn += 1;
                let txn = self.txn;
                self.send_withdraw(ctx, txn, 0);
                self.withdraw_rt.track(ctx, txn, self.tcsp_node, ());
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetrySchedule {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest: self.tcsp_node,
                    });
                }
                return;
            }
            _ => {}
        }
        match self.reg_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
                return;
            }
            RetryEvent::Resend { attempt, .. } => {
                self.cp.lock().retransmits += 1;
                self.record.lock().register_retries += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn: self.reg_txn,
                        attempt,
                        node: ctx.node,
                        dest: self.tcsp_node,
                    });
                }
                self.send_register(ctx, attempt);
                return;
            }
            RetryEvent::GaveUp { key: txn, dest, .. } => {
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest,
                    });
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        outcome: "gave_up",
                    });
                }
                return;
            }
        }
        match self.deploy_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: txn, attempt, ..
            } => {
                // Resends chase whichever destination the transaction
                // targeted: TCSP normally, the first NMS after fallback.
                self.cp.lock().retransmits += 1;
                let fallback = self.record.lock().used_fallback;
                let (dest, to, fwd) = if fallback {
                    (self.fallback_nms[0], Role::Nms, true)
                } else {
                    (self.tcsp_node, Role::Tcsp, false)
                };
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest,
                    });
                }
                self.send_deploy(ctx, dest, to, txn, attempt, fwd);
                return;
            }
            RetryEvent::GaveUp { key: txn, dest, .. } => {
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest,
                    });
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        outcome: "gave_up",
                    });
                }
                return;
            }
        }
        match self.withdraw_rt.on_timer(ctx, token) {
            RetryEvent::NotMine => {}
            RetryEvent::Stale => {
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryStale {
                        t: ctx.now.0,
                        node: ctx.node,
                        family: (token & FAMILY_MASK) >> 48,
                    });
                }
            }
            RetryEvent::Resend {
                key: txn, attempt, ..
            } => {
                self.cp.lock().retransmits += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryFire {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        attempt,
                        node: ctx.node,
                        dest: self.tcsp_node,
                    });
                }
                self.send_withdraw(ctx, txn, attempt);
            }
            RetryEvent::GaveUp { key: txn, dest, .. } => {
                // The TCSP is unreachable; the leases expire the filters
                // device-side without us.
                self.cp.lock().give_ups += 1;
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::RetryGaveUp {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        dest,
                    });
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: self.user.0,
                        txn,
                        node: ctx.node,
                        outcome: "gave_up",
                    });
                }
            }
        }
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(env) = msg.get::<Envelope>() else {
            return;
        };
        if env.to != Role::User {
            return;
        }
        let kind = env.msg.kind_id();
        match &env.msg {
            CpMsg::RegisterConfirm { result } => {
                if !self.dedup.first_time(env.key.origin, env.key.txn, kind, 0) {
                    self.cp.lock().dup_responses += 1;
                    dup_hit(ctx, env, true);
                    return;
                }
                self.reg_rt.ack(&env.key.txn);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: env.key.origin,
                        txn: env.key.txn,
                        node: ctx.node,
                        outcome: if result.is_ok() {
                            "confirmed"
                        } else {
                            "denied"
                        },
                    });
                }
                match result {
                    Ok(cert) => {
                        {
                            let mut r = self.record.lock();
                            r.registered_at = Some(ctx.now);
                            r.cert = Some(cert.clone());
                        }
                        if !self.started_deploy {
                            self.started_deploy = true;
                            ctx.set_timer(self.deploy_delay, T_DEPLOY);
                        }
                    }
                    Err(_) => {
                        self.record.lock().denied = true;
                    }
                }
            }
            CpMsg::DeployConfirm {
                configured,
                rejected,
                isps_missing,
                ..
            } => {
                if !self.dedup.first_time(env.key.origin, env.key.txn, kind, 0) {
                    self.cp.lock().dup_responses += 1;
                    dup_hit(ctx, env, true);
                    return;
                }
                self.deploy_rt.ack(&env.key.txn);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: env.key.origin,
                        txn: env.key.txn,
                        node: ctx.node,
                        outcome: if *isps_missing > 0 {
                            "partial"
                        } else {
                            "confirmed"
                        },
                    });
                }
                let mut r = self.record.lock();
                if r.deploy_confirmed_at.is_none() {
                    r.deploy_confirmed_at = Some(ctx.now);
                }
                r.devices_configured += configured;
                r.installs_rejected += rejected;
                r.isps_missing += isps_missing;
            }
            CpMsg::NmsAck {
                from_nms,
                configured,
                rejected,
                ..
            } => {
                // Fallback path: NMS acks come straight to the user, one
                // per ISP — dedup keyed by the acking node.
                if !self
                    .dedup
                    .first_time(env.key.origin, env.key.txn, kind, from_nms.0 as u64)
                {
                    self.cp.lock().dup_responses += 1;
                    dup_hit(ctx, env, true);
                    return;
                }
                self.deploy_rt.ack(&env.key.txn);
                let mut r = self.record.lock();
                r.fallback_acks += 1;
                r.devices_configured += configured;
                r.installs_rejected += rejected;
                if r.deploy_confirmed_at.is_none() {
                    r.deploy_confirmed_at = Some(ctx.now);
                    drop(r);
                    if ctx.cp_trace_enabled() {
                        ctx.cp_event(CpTraceEvent::Terminal {
                            t: ctx.now.0,
                            origin: env.key.origin,
                            txn: env.key.txn,
                            node: ctx.node,
                            outcome: "fallback_confirmed",
                        });
                    }
                }
            }
            CpMsg::WithdrawConfirm { removed, .. } => {
                if !self.dedup.first_time(env.key.origin, env.key.txn, kind, 0) {
                    self.cp.lock().dup_responses += 1;
                    dup_hit(ctx, env, true);
                    return;
                }
                self.withdraw_rt.ack(&env.key.txn);
                if ctx.cp_trace_enabled() {
                    ctx.cp_event(CpTraceEvent::Terminal {
                        t: ctx.now.0,
                        origin: env.key.origin,
                        txn: env.key.txn,
                        node: ctx.node,
                        outcome: "withdrawn",
                    });
                }
                let mut r = self.record.lock();
                if r.withdraw_confirmed_at.is_none() {
                    r.withdraw_confirmed_at = Some(ctx.now);
                }
                r.services_removed += removed;
            }
            _ => {}
        }
    }
}
