//! Links: bandwidth, propagation delay and drop-tail queueing.
//!
//! Queueing is modelled without storing per-packet queues: each direction
//! tracks the time its transmitter becomes free (`next_free`). The backlog
//! in bytes at any instant is `(next_free - now) * bw / 8`; a packet is
//! tail-dropped when admitting it would push the backlog past the configured
//! queue limit. This "virtual queue" is exact for FIFO drop-tail behaviour
//! and keeps the hot path allocation-free.

use serde::{Deserialize, Serialize};

use crate::node::{LinkId, NodeId};
use crate::time::{tx_time, SimDuration, SimTime};

/// Static + dynamic state of one bidirectional link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity, bits per second (per direction).
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub latency: SimDuration,
    /// Drop-tail queue limit in bytes (per direction).
    pub queue_limit_bytes: u32,
    /// Administrative/operational state. Down links are excluded from
    /// routing and drop everything offered to them (failure injection).
    pub up: bool,
    /// Per-direction transmitter state: `[a->b, b->a]`.
    pub dirs: [LinkDir; 2],
}

/// Mutable per-direction state and counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LinkDir {
    /// Instant the transmitter finishes everything already admitted.
    pub next_free: SimTime,
    /// Packets admitted.
    pub pkts_sent: u64,
    /// Bytes admitted.
    pub bytes_sent: u64,
    /// Packets tail-dropped for queue overflow.
    pub pkts_dropped: u64,
    /// Bytes tail-dropped.
    pub bytes_dropped: u64,
    /// Of the admitted bytes, how many belonged to attack-class packets
    /// (ground truth; metrics only).
    pub attack_bytes_sent: u64,
}

/// Outcome of offering a packet to a link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Packet admitted; it will arrive at the far end at this instant.
    Deliver(SimTime),
    /// Queue overflow; packet dropped.
    Dropped,
}

impl Link {
    /// Create a link with idle transmitters.
    pub fn new(
        a: NodeId,
        b: NodeId,
        bandwidth_bps: f64,
        latency: SimDuration,
        queue_limit_bytes: u32,
    ) -> Link {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(a != b, "self-loops are not allowed");
        Link {
            a,
            b,
            bandwidth_bps,
            latency,
            queue_limit_bytes,
            up: true,
            dirs: [LinkDir::default(), LinkDir::default()],
        }
    }

    /// The endpoint opposite `from`; panics if `from` is not an endpoint.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("node {from:?} is not an endpoint of this link");
        }
    }

    /// Direction index for traffic leaving `from`.
    pub fn dir_index(&self, from: NodeId) -> usize {
        if from == self.a {
            0
        } else if from == self.b {
            1
        } else {
            panic!("node {from:?} is not an endpoint of this link");
        }
    }

    /// Current queue backlog (bytes) in the direction leaving `from`.
    pub fn backlog_bytes(&self, from: NodeId, now: SimTime) -> u64 {
        self.queue_state(from, now).1
    }

    /// Queue wait and instantaneous backlog (bytes) in the direction
    /// leaving `from` at `now` — what a packet offered right now would
    /// observe. One closed-form read of the virtual queue; used by the
    /// telemetry layer for queue-delay histograms and trace backlog fields.
    pub fn queue_state(&self, from: NodeId, now: SimTime) -> (SimDuration, u64) {
        let d = &self.dirs[self.dir_index(from)];
        if d.next_free <= now {
            (SimDuration::ZERO, 0)
        } else {
            let wait = d.next_free - now;
            let bytes = (wait.as_secs_f64() * self.bandwidth_bps / 8.0) as u64;
            (wait, bytes)
        }
    }

    /// Offer a packet of `size` bytes (attack ground truth `is_attack`) to
    /// the direction leaving `from` at time `now`.
    pub fn offer(&mut self, from: NodeId, now: SimTime, size: u32, is_attack: bool) -> Admission {
        self.offer_observed(from, now, size, is_attack).0
    }

    /// Like [`Link::offer`], but also reports the queue state the packet
    /// observed on arrival — `(admission, wait, backlog_bytes)` — from a
    /// single virtual-queue read, so the forwarding hot path does not pay
    /// a separate [`Link::queue_state`] probe for telemetry.
    pub fn offer_observed(
        &mut self,
        from: NodeId,
        now: SimTime,
        size: u32,
        is_attack: bool,
    ) -> (Admission, SimDuration, u64) {
        let di = self.dir_index(from);
        if !self.up {
            let d = &mut self.dirs[di];
            d.pkts_dropped += 1;
            d.bytes_dropped += size as u64;
            return (Admission::Dropped, SimDuration::ZERO, 0);
        }
        let latency = self.latency;
        let bw = self.bandwidth_bps;
        let limit = self.queue_limit_bytes as u64;
        let d = &mut self.dirs[di];
        let (wait, backlog) = if d.next_free <= now {
            (SimDuration::ZERO, 0)
        } else {
            let wait = d.next_free - now;
            (wait, (wait.as_secs_f64() * bw / 8.0) as u64)
        };
        if backlog + size as u64 > limit {
            d.pkts_dropped += 1;
            d.bytes_dropped += size as u64;
            return (Admission::Dropped, wait, backlog);
        }
        let start = if d.next_free > now { d.next_free } else { now };
        let done = start + tx_time(size, bw);
        d.next_free = done;
        d.pkts_sent += 1;
        d.bytes_sent += size as u64;
        if is_attack {
            d.attack_bytes_sent += size as u64;
        }
        (Admission::Deliver(done + latency), wait, backlog)
    }

    /// Utilisation of the direction leaving `from` over `[0, now]`, in
    /// `[0, 1]` (sent bits over capacity-bits).
    pub fn utilisation(&self, from: NodeId, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let d = &self.dirs[self.dir_index(from)];
        (d.bytes_sent as f64 * 8.0) / (self.bandwidth_bps * now.as_secs_f64())
    }

    /// Recent loss indicator for congestion-driven defenses (pushback):
    /// fraction of offered packets dropped so far in the direction leaving
    /// `from`.
    pub fn drop_rate(&self, from: NodeId) -> f64 {
        let d = &self.dirs[self.dir_index(from)];
        let offered = d.pkts_sent + d.pkts_dropped;
        if offered == 0 {
            0.0
        } else {
            d.pkts_dropped as f64 / offered as f64
        }
    }
}

/// Parameters for constructing classes of links.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Capacity in bits/second.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub latency: SimDuration,
    /// Queue limit in bytes.
    pub queue_limit_bytes: u32,
}

impl LinkProfile {
    /// Backbone-class link: 10 Gbit/s, 10 ms, 1.25 MB of buffer.
    pub fn backbone() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 10e9,
            latency: SimDuration::from_millis(10),
            queue_limit_bytes: 1_250_000,
        }
    }

    /// Transit/edge link: 1 Gbit/s, 5 ms.
    pub fn transit() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 1e9,
            latency: SimDuration::from_millis(5),
            queue_limit_bytes: 625_000,
        }
    }

    /// Access/stub uplink: 100 Mbit/s, 2 ms.
    pub fn access() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 100e6,
            latency: SimDuration::from_millis(2),
            queue_limit_bytes: 125_000,
        }
    }

    /// Instantiate a link between two nodes with this profile.
    pub fn link(&self, a: NodeId, b: NodeId) -> Link {
        Link::new(
            a,
            b,
            self.bandwidth_bps,
            self.latency,
            self.queue_limit_bytes,
        )
    }
}

/// A `(link, direction)` pair, useful for per-direction bookkeeping in
/// defenses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LinkDirId {
    /// The link.
    pub link: LinkId,
    /// Direction index as given by [`Link::dir_index`].
    pub dir: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_link() -> Link {
        // 1 Mbit/s, 1 ms latency, 10 kB queue.
        Link::new(
            NodeId(0),
            NodeId(1),
            1e6,
            SimDuration::from_millis(1),
            10_000,
        )
    }

    #[test]
    fn single_packet_latency() {
        let mut l = test_link();
        // 125 bytes at 1 Mbit/s = 1 ms tx; +1 ms propagation = arrival at 2 ms.
        match l.offer(NodeId(0), SimTime::ZERO, 125, false) {
            Admission::Deliver(at) => assert_eq!(at, SimTime::from_millis(2)),
            Admission::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn back_to_back_serialisation() {
        let mut l = test_link();
        let first = l.offer(NodeId(0), SimTime::ZERO, 125, false);
        let second = l.offer(NodeId(0), SimTime::ZERO, 125, false);
        let (Admission::Deliver(t1), Admission::Deliver(t2)) = (first, second) else {
            panic!("unexpected drop");
        };
        // Second packet waits for the first's 1 ms transmission.
        assert_eq!(t2 - t1, SimDuration::from_millis(1));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = test_link();
        let _ = l.offer(NodeId(0), SimTime::ZERO, 1000, false);
        // Reverse direction transmitter is still idle.
        assert_eq!(l.backlog_bytes(NodeId(1), SimTime::ZERO), 0);
        let Admission::Deliver(at) = l.offer(NodeId(1), SimTime::ZERO, 125, false) else {
            panic!("unexpected drop");
        };
        assert_eq!(at, SimTime::from_millis(2));
    }

    #[test]
    fn tail_drop_on_overflow() {
        let mut l = test_link();
        // Fill the queue: 10 kB limit, each packet 1 kB => ~10-11 fit
        // (the packet in service does not count once started, backlog is
        // measured vs. now).
        let mut admitted = 0;
        let mut dropped = 0;
        for _ in 0..30 {
            match l.offer(NodeId(0), SimTime::ZERO, 1000, true) {
                Admission::Deliver(_) => admitted += 1,
                Admission::Dropped => dropped += 1,
            }
        }
        assert!((10..=12).contains(&admitted), "admitted={admitted}");
        assert!(dropped > 0);
        assert_eq!(l.dirs[0].pkts_dropped, dropped);
        assert_eq!(l.dirs[0].attack_bytes_sent, admitted * 1000);
        assert!(l.drop_rate(NodeId(0)) > 0.0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = test_link();
        for _ in 0..10 {
            let _ = l.offer(NodeId(0), SimTime::ZERO, 1000, false);
        }
        let backlog_now = l.backlog_bytes(NodeId(0), SimTime::ZERO);
        assert!(backlog_now > 0);
        // After all transmissions complete the backlog is gone.
        let later = SimTime::from_secs(1);
        assert_eq!(l.backlog_bytes(NodeId(0), later), 0);
        let Admission::Deliver(_) = l.offer(NodeId(0), later, 1000, false) else {
            panic!("queue should have drained");
        };
    }

    #[test]
    fn utilisation_sane() {
        let mut l = test_link();
        // 10 packets of 1250 B = 0.1 s worth at 1 Mbit/s; each fits the
        // 10 kB queue because the backlog drains as transmissions complete.
        for i in 0..10u64 {
            let now = SimTime::from_millis(i * 10);
            assert_ne!(l.offer(NodeId(0), now, 1250, false), Admission::Dropped);
        }
        let u = l.utilisation(NodeId(0), SimTime::from_secs(1));
        assert!((u - 0.1).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn queue_state_matches_backlog() {
        let mut l = test_link();
        assert_eq!(
            l.queue_state(NodeId(0), SimTime::ZERO),
            (SimDuration::ZERO, 0)
        );
        for _ in 0..5 {
            let _ = l.offer(NodeId(0), SimTime::ZERO, 1000, false);
        }
        let (wait, bytes) = l.queue_state(NodeId(0), SimTime::ZERO);
        assert!(wait > SimDuration::ZERO);
        assert_eq!(bytes, l.backlog_bytes(NodeId(0), SimTime::ZERO));
        // 5 kB at 1 Mbit/s = 40 ms of queue.
        assert_eq!(wait, SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic]
    fn other_rejects_foreign_node() {
        let l = test_link();
        let _ = l.other(NodeId(7));
    }
}
