//! # dtcs-netsim — deterministic packet-level internetwork simulator
//!
//! The substrate every other crate in this workspace runs on. It models the
//! Internet at autonomous-system granularity: nodes are ASes/sites, links
//! have bandwidth / latency / drop-tail queues, routing is hop-count
//! shortest path, and both the attack workloads and the defenses of the
//! reproduced paper plug in as [`agent::NodeAgent`]s (router-side) and
//! [`app::App`]s (host-side).
//!
//! Design pillars (see the workspace DESIGN.md):
//!
//! * **Determinism** — integer nanosecond clock, `(time, seq)` event
//!   ordering, one seeded ChaCha8 RNG stream; identical seeds give
//!   bit-identical runs on every platform.
//! * **Allocation-free hot path** — packets are `Copy`, queues are virtual
//!   (closed-form backlog), payloads are sizes + tags.
//! * **Parallelism at the sweep level** — a `Simulator` is single-threaded;
//!   experiments run many simulators concurrently via rayon.
//!
//! ```
//! use dtcs_netsim::*;
//!
//! // Two hosts on a 3-AS line; one UDP packet end to end.
//! let mut sim = Simulator::new(Topology::line(3), 42);
//! let dst = Addr::new(NodeId(2), 1);
//! sim.install_app(dst, Box::new(SinkApp));
//! sim.emit_now(
//!     NodeId(0),
//!     PacketBuilder::new(Addr::new(NodeId(0), 1), dst, Proto::Udp, TrafficClass::Background),
//! );
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod agent;
pub mod app;
pub mod arena;
pub mod cp_trace;
pub mod faults;
pub mod fluid;
pub mod link;
pub mod metrics;
pub mod node;
pub mod oracle;
pub mod packet;
pub mod rng;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wheel;

#[cfg(test)]
mod proptests;

pub use addr::{Addr, Prefix};
pub use agent::{AgentCtx, ControlMsg, NodeAgent, Verdict};
pub use app::{App, AppApi, Disposition, SinkApp};
pub use arena::{Arena, Handle as ArenaHandle};
pub use cp_trace::{CpFlightRecorder, CpMeta, CpTraceEvent, CpTraceSink, CpTracer, CpVerdict};
pub use faults::{FaultConfig, FaultDecision, FaultPlane, Outage, Partition};
pub use fluid::{FluidDemand, FluidFilter, FluidLayer};
pub use link::{Admission, Link, LinkProfile};
pub use metrics::{MetricEntry, MetricValue, MetricsSnapshot};
pub use node::{LinkId, Node, NodeId, NodeRole};
pub use oracle::RouteOracle;
pub use packet::{Packet, PacketBuilder, Proto, Provenance, TrafficClass, DEFAULT_TTL};
pub use routing::{FlipOutcome, Routing};
pub use sim::Simulator;
pub use stats::{DropReason, Stats};
pub use time::{SimDuration, SimTime};
pub use topology::{Hierarchy, Topology};
pub use trace::{
    FlightRecorder, LinkDirUtil, LinkUtilProbe, Log2Histogram, Sampler, TelemetryHistograms,
    TraceEvent, TraceSink, UtilSnapshot,
};
pub use wheel::TimingWheel;
