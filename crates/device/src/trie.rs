//! Binary prefix trie: longest-prefix-match over 32-bit addresses.
//!
//! This is the device's redirection table (Sec. 5.2 / Fig. 6 of the paper:
//! "network user traffic can be redirected permanently to the traffic
//! processing device" — the redirect decision is a prefix lookup on both the
//! source and destination address). Lookup is O(32) independent of the rule
//! count, which is what makes the device scale with tens of thousands of
//! subscribers (Sec. 5.3, measured in experiment E6). A linear-scan table
//! with the same API exists for the ablation bench.

use dtcs_netsim::{Addr, Prefix};

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct TrieNode<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> TrieNode<T> {
    fn new() -> Self {
        TrieNode {
            children: [NONE, NONE],
            value: None,
        }
    }
}

/// Longest-prefix-match map from [`Prefix`] to `T`.
///
/// Nodes are stored in a flat arena indexed by `u32`, so inserts never
/// reallocate existing nodes and lookups touch contiguous memory.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<TrieNode<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![TrieNode::new()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the trie empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or replace the value at `prefix`; returns the old value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut at = 0usize;
        for depth in 0..prefix.len {
            let bit = ((prefix.bits >> (31 - depth)) & 1) as usize;
            if self.nodes[at].children[bit] == NONE {
                self.nodes.push(TrieNode::new());
                let idx = (self.nodes.len() - 1) as u32;
                self.nodes[at].children[bit] = idx;
            }
            at = self.nodes[at].children[bit] as usize;
        }
        let old = self.nodes[at].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let mut at = 0usize;
        for depth in 0..prefix.len {
            let bit = ((prefix.bits >> (31 - depth)) & 1) as usize;
            let next = self.nodes[at].children[bit];
            if next == NONE {
                return None;
            }
            at = next as usize;
        }
        let old = self.nodes[at].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `addr`, with its value.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &T)> {
        let mut at = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let bit = ((addr.0 >> (31 - depth)) & 1) as usize;
            let next = self.nodes[at].children[bit];
            if next == NONE {
                break;
            }
            at = next as usize;
            if let Some(v) = self.nodes[at].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(addr.0 & Prefix::mask(len), len), v))
    }

    /// Value stored at exactly `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut at = 0usize;
        for depth in 0..prefix.len {
            let bit = ((prefix.bits >> (31 - depth)) & 1) as usize;
            let next = self.nodes[at].children[bit];
            if next == NONE {
                return None;
            }
            at = next as usize;
        }
        self.nodes[at].value.as_ref()
    }

    /// Iterate over all `(prefix, value)` pairs (preorder).
    pub fn iter(&self) -> PrefixTrieIter<'_, T> {
        PrefixTrieIter {
            trie: self,
            stack: vec![(0u32, 0u32, 0u8)],
        }
    }
}

/// Iterator over trie contents.
pub struct PrefixTrieIter<'a, T> {
    trie: &'a PrefixTrie<T>,
    /// (node index, accumulated bits, depth)
    stack: Vec<(u32, u32, u8)>,
}

impl<'a, T> Iterator for PrefixTrieIter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((idx, bits, depth)) = self.stack.pop() {
            let node = &self.trie.nodes[idx as usize];
            for bit in [1usize, 0usize] {
                let child = node.children[bit];
                if child != NONE {
                    let nbits = bits | ((bit as u32) << (31 - depth));
                    self.stack.push((child, nbits, depth + 1));
                }
            }
            if let Some(v) = node.value.as_ref() {
                return Some((Prefix::new(bits, depth), v));
            }
        }
        None
    }
}

/// Linear-scan alternative with the same interface, for the E6 ablation
/// ("rule-table structure" in DESIGN.md §5).
#[derive(Clone, Debug, Default)]
pub struct LinearTable<T> {
    entries: Vec<(Prefix, T)>,
}

impl<T> LinearTable<T> {
    /// Empty table.
    pub fn new() -> Self {
        LinearTable {
            entries: Vec::new(),
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        for (p, v) in &mut self.entries {
            if *p == prefix {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((prefix, value));
        None
    }

    /// Longest-prefix match by scanning every entry.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &T)> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len)
            .map(|(p, v)| (*p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::NodeId;

    #[test]
    fn insert_lookup_exact() {
        let mut t = PrefixTrie::new();
        let p = Prefix::of_node(NodeId(5));
        t.insert(p, "five");
        let a = Addr::new(NodeId(5), 77);
        let (got_p, v) = t.lookup(a).unwrap();
        assert_eq!(got_p, p);
        assert_eq!(*v, "five");
        assert!(t.lookup(Addr::new(NodeId(6), 0)).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::new(0x0A00_0000, 8), "wide");
        t.insert(Prefix::new(0x0A0B_0000, 16), "narrow");
        let inside_narrow = Addr(0x0A0B_0001);
        assert_eq!(*t.lookup(inside_narrow).unwrap().1, "narrow");
        let inside_wide_only = Addr(0x0A0C_0001);
        assert_eq!(*t.lookup(inside_wide_only).unwrap().1, "wide");
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::ALL, "default");
        assert_eq!(*t.lookup(Addr(12345)).unwrap().1, "default");
        t.insert(Prefix::new(0, 1), "low-half");
        assert_eq!(*t.lookup(Addr(1)).unwrap().1, "low-half");
        assert_eq!(*t.lookup(Addr(0x8000_0000)).unwrap().1, "default");
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::new(0x0A00_0000, 8), 1);
        t.insert(Prefix::new(0x0A0B_0000, 16), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(Prefix::new(0x0A0B_0000, 16)), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(*t.lookup(Addr(0x0A0B_0001)).unwrap().1, 1);
        assert_eq!(t.remove(Prefix::new(0x0A0B_0000, 16)), None);
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PrefixTrie::new();
        let p = Prefix::new(0xC000_0000, 2);
        assert_eq!(t.insert(p, 1), None);
        assert_eq!(t.insert(p, 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_route() {
        let mut t = PrefixTrie::new();
        let a = Addr::new(NodeId(1), 1);
        t.insert(Prefix::host(a), "host");
        assert!(t.lookup(a).is_some());
        assert!(t.lookup(Addr::new(NodeId(1), 2)).is_none());
    }

    #[test]
    fn iter_returns_everything() {
        let mut t = PrefixTrie::new();
        let prefixes = [
            Prefix::new(0x0A00_0000, 8),
            Prefix::new(0x0A0B_0000, 16),
            Prefix::new(0xFF00_0000, 8),
            Prefix::ALL,
        ];
        for (i, p) in prefixes.iter().enumerate() {
            t.insert(*p, i);
        }
        let mut got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        got.sort_by_key(|p| (p.len, p.bits));
        let mut want = prefixes.to_vec();
        want.sort_by_key(|p| (p.len, p.bits));
        assert_eq!(got, want);
    }

    #[test]
    fn trie_and_linear_agree() {
        use rand::Rng;
        let mut rng = dtcs_netsim::rng::seeded(7);
        let mut trie = PrefixTrie::new();
        let mut lin = LinearTable::new();
        for i in 0..200 {
            let len = rng.gen_range(4..=32);
            let bits: u32 = rng.gen();
            let p = Prefix::new(bits, len);
            trie.insert(p, i);
            lin.insert(p, i);
        }
        for _ in 0..2000 {
            let a = Addr(rng.gen());
            let t = trie.lookup(a).map(|(p, v)| (p, *v));
            let l = lin.lookup(a).map(|(p, v)| (p, *v));
            // Linear table may keep several equal-length matches; compare
            // prefix length and containment rather than identity.
            match (t, l) {
                (None, None) => {}
                (Some((tp, _)), Some((lp, _))) => {
                    assert_eq!(tp.len, lp.len, "LPM length must agree for {a:?}");
                }
                other => panic!("trie/linear disagree for {a:?}: {other:?}"),
            }
        }
    }
}
