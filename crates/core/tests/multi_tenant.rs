//! Multi-tenant isolation: several network users sharing the same devices,
//! each controlling only their own traffic (the heart of Sec. 4.1's "safe
//! delegation": "a network user can only get control over the IP packets
//! he or she owns").

use dtcs::control::CatalogService;
use dtcs::device::{AdaptiveDevice, DeviceCommand, OwnerId, Stage};
use dtcs::netsim::{
    Addr, DropReason, NodeId, PacketBuilder, Prefix, Proto, SimTime, Simulator, Topology,
    TrafficClass,
};

/// Three owners on one shared device fleet, with contradictory policies:
/// A blocks UDP to itself, B rate-limits, C has no services. Each policy
/// binds exactly its owner's traffic.
#[test]
fn owners_policies_do_not_leak_onto_each_other() {
    let topo = Topology::star(4); // hub 0; leaves 1 (A), 2 (B), 3 (C)
    let mut sim = Simulator::new(topo, 17);
    let a = Addr::new(NodeId(1), 1);
    let b = Addr::new(NodeId(2), 1);
    let c = Addr::new(NodeId(3), 1);
    for addr in [a, b, c] {
        sim.install_app(addr, Box::new(dtcs::netsim::SinkApp));
    }
    // One device at the hub serving all three owners.
    let (mut dev, handle) = AdaptiveDevice::new(NodeId(0), None);
    for (i, node) in [(1u64, NodeId(1)), (2, NodeId(2)), (3, NodeId(3))] {
        dev.apply(DeviceCommand::RegisterOwner {
            owner: OwnerId(i),
            prefixes: vec![Prefix::of_node(node)],
            contact: node,
        });
    }
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner: OwnerId(1),
        stage: Stage::Dst,
        spec: CatalogService::FirewallBlock {
            protos: vec![Proto::Udp],
        }
        .compile(),
    });
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner: OwnerId(2),
        stage: Stage::Dst,
        spec: CatalogService::RateLimit {
            rate_bytes_per_sec: 200.0, // ~2 pkts/s of 100 B
            burst_bytes: 200,
        }
        .compile(),
    });
    sim.add_agent(NodeId(0), Box::new(dev));

    // An external-ish sender on leaf 3 sends 20 UDP packets to each owner
    // over 2 seconds.
    for (k, dst) in (0..60u64).map(|k| (k, [a, b, c][(k % 3) as usize])) {
        let at = SimTime(k * 33_000_000);
        sim.schedule(at, move |s| {
            s.emit_now(
                NodeId(3),
                PacketBuilder::new(
                    Addr::new(NodeId(3), 9),
                    dst,
                    Proto::Udp,
                    TrafficClass::Background,
                )
                .size(100)
                .flow(k),
            );
        });
    }
    sim.run_until(SimTime::from_secs(5));

    let s = handle.lock();
    // A's firewall dropped A-bound UDP (20 packets, minus none).
    assert_eq!(
        s.dropped[&DropReason::DeviceFilter],
        20,
        "A's policy binds A"
    );
    // B's limiter dropped most of B's 20 (2/s allowed over ~2s + burst).
    let b_limited = s.dropped[&DropReason::DeviceRateLimit];
    assert!(
        (10..20).contains(&b_limited),
        "B's limiter throttles only B: {b_limited}"
    );
    drop(s);
    // C's traffic is untouched: all 20 delivered. (Total delivered =
    // C's 20 + B's unthrottled remainder.)
    let delivered = sim.stats.class(TrafficClass::Background).delivered_pkts;
    assert_eq!(delivered, 20 + (20 - b_limited));
    sim.stats.check_conservation().unwrap();
}

/// Two victims under attack at once, each with its own TCS deployment on
/// the same shared devices; both recover independently.
#[test]
fn two_victims_defend_concurrently() {
    use dtcs::attack::{install_clients, mean_success, ReflectorAttack, ReflectorAttackConfig};
    use dtcs::{deploy_tcs_static, TcsStaticConfig};

    let topo = Topology::barabasi_albert(150, 2, 0.1, 29);
    let mut sim = Simulator::new(topo, 29);
    let stubs = sim.topo.stub_nodes();
    let (v1, v2) = (stubs[0], stubs[10]);

    // Both victims deploy proactively. deploy_tcs_static creates separate
    // device agents per call; they coexist on shared nodes like separately
    // managed devices racked beside one router (Sec. 5.3's "install
    // additional adaptive devices").
    deploy_tcs_static(&mut sim, Prefix::of_node(v1), &TcsStaticConfig::default());
    deploy_tcs_static(&mut sim, Prefix::of_node(v2), &TcsStaticConfig::default());

    let mk_attack = |sim: &mut Simulator, victim, seed| {
        ReflectorAttack::install(
            sim,
            victim,
            &ReflectorAttackConfig {
                n_agents: 40,
                n_reflectors: 50,
                agent_rate_pps: 50.0,
                start_at: SimTime::from_secs(2),
                stop_at: SimTime::from_secs(10),
                victim_capacity_pps: 400.0,
                seed,
                ..Default::default()
            },
        )
    };
    let a1 = mk_attack(&mut sim, v1, 101);
    let a2 = mk_attack(&mut sim, v2, 202);
    let c1 = install_clients(
        &mut sim,
        a1.victim,
        10,
        dtcs::netsim::SimDuration::from_millis(250),
        SimTime::from_secs(12),
        1,
    );
    let c2 = install_clients(
        &mut sim,
        a2.victim,
        10,
        dtcs::netsim::SimDuration::from_millis(250),
        SimTime::from_secs(12),
        2,
    );
    sim.run_until(SimTime::from_secs(12));
    assert!(
        mean_success(&c1) > 0.9,
        "victim 1 protected: {}",
        mean_success(&c1)
    );
    assert!(
        mean_success(&c2) > 0.9,
        "victim 2 protected: {}",
        mean_success(&c2)
    );
    sim.stats.check_conservation().unwrap();
}
