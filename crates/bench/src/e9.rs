//! E9 — Pushback misattribution under reflector attacks (Sec. 3.1).
//!
//! Two claims are measured. First, under the default reflector attack the
//! victim's *server* dies while its links stay clear, so pushback — which
//! triggers on link drops — never engages ("an attacked server's resources
//! are exhausted before its uplink is overloaded"). Second, when the
//! attack IS bandwidth-heavy (DNS amplification into a skinny uplink),
//! pushback engages but classifies dropped packets by *source address*,
//! which names the innocent reflectors — its rate limits land on reflector
//! prefixes, not agent prefixes. The destination-keyed ablation
//! (ACC-style) is included for contrast.

use serde::Serialize;

use dtcs::attack::{install_clients, mean_success, ReflectorAttack, ReflectorAttackConfig};
use dtcs::mitigation::{deploy_pushback_everywhere, AggregateKey, PushbackConfig};
use dtcs::netsim::{DropReason, Proto, SimDuration, SimTime, Simulator, Topology};

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct Row {
    case: String,
    limits_installed: usize,
    limits_on_reflector_prefixes: usize,
    limits_on_agent_prefixes: usize,
    pushback_drops: u64,
    drops_on_reflector_traffic: u64,
    legit_success: f64,
    victim_overloaded: u64,
}

/// Base seed shared by the single-run table and the sweep cells
/// (historically the literal `55` baked into the topology, simulator,
/// attack config, and client installer).
const SEED: u64 = 55;

/// The three cases: (aggregate key, skinny uplink, table label, scenario
/// key for sweep output).
const CASES: [(AggregateKey, bool, &str, &str); 3] = [
    (
        AggregateKey::SrcPrefix,
        false,
        "server-bound attack (fat uplink)",
        "fat-uplink/src-keyed",
    ),
    (
        AggregateKey::SrcPrefix,
        true,
        "bandwidth-bound, src-keyed (paper's pushback)",
        "skinny-uplink/src-keyed",
    ),
    (
        AggregateKey::DstPrefix,
        true,
        "bandwidth-bound, dst-keyed (ACC ablation)",
        "skinny-uplink/dst-keyed",
    ),
];

fn run_case(
    key: AggregateKey,
    skinny_uplink: bool,
    quick: bool,
    label: &str,
    seed: u64,
) -> (Row, dtcs::netsim::Stats) {
    let n = if quick { 120 } else { 250 };
    let mut topo = Topology::barabasi_albert(n, 2, 0.1, seed);
    // Pre-compute the victim (same convention every run: first stub).
    let victim_node = topo
        .nodes
        .iter()
        .find(|nd| nd.role == dtcs::netsim::NodeRole::Stub)
        .map(|nd| nd.id)
        .expect("stub exists");
    if skinny_uplink {
        // The victim's uplink(s) become 2 Mbit/s: the bandwidth-bound case.
        let links: Vec<_> = topo.nodes[victim_node.0].links.clone();
        for l in links {
            topo.links[l.0].bandwidth_bps = 2e6;
            topo.links[l.0].queue_limit_bytes = 30_000;
        }
    }
    let mut sim = Simulator::new(topo, seed);
    let pb = deploy_pushback_everywhere(
        &mut sim,
        PushbackConfig {
            key,
            drop_threshold: 30,
            limit_bytes_per_sec: 10_000.0,
            burst_bytes: 5_000,
            ..Default::default()
        },
    );
    let dur = if quick { 15 } else { 25 };
    // DNS amplification: 60-byte queries become 480-byte responses.
    let attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: if quick { 60 } else { 120 },
            n_reflectors: if quick { 60 } else { 120 },
            agent_rate_pps: 80.0,
            proto: Proto::DnsQuery,
            request_size: 60,
            start_at: SimTime::from_secs(3),
            stop_at: SimTime::from_secs(dur as u64 - 2),
            // Fat-uplink case: the server is the bottleneck (500 pps);
            // skinny-uplink case: the link is (capacity effectively inf).
            victim_capacity_pps: if skinny_uplink { 100_000.0 } else { 500.0 },
            seed,
            ..Default::default()
        },
    );
    let clients = install_clients(
        &mut sim,
        attack.victim,
        20,
        SimDuration::from_millis(250),
        SimTime::from_secs(dur as u64),
        seed,
    );
    sim.run_until(SimTime::from_secs(dur as u64));
    crate::util::enforce_run_invariants("e9", &sim.stats);

    let s = pb.lock();
    let reflector_prefixes: Vec<u32> = attack
        .reflector_nodes
        .iter()
        .map(|n| (n.0 as u32) << 16)
        .collect();
    let agent_prefixes: Vec<u32> = attack
        .agent_nodes
        .iter()
        .map(|n| (n.0 as u32) << 16)
        .collect();
    let on_reflectors = s
        .limits_installed
        .iter()
        .filter(|(_, p)| reflector_prefixes.contains(&p.bits))
        .count();
    let on_agents = s
        .limits_installed
        .iter()
        .filter(|(_, p)| agent_prefixes.contains(&p.bits))
        .count();
    let drops_on_reflectors: u64 = s
        .dropped_per_aggregate
        .iter()
        .filter(|(bits, _)| reflector_prefixes.contains(bits))
        .map(|(_, c)| c)
        .sum();
    let victim_overloaded = attack.victim_stats.lock().overloaded;
    let row = Row {
        case: label.to_string(),
        limits_installed: s.limits_installed.len(),
        limits_on_reflector_prefixes: on_reflectors,
        limits_on_agent_prefixes: on_agents,
        pushback_drops: sim.stats.drops_for_reason(DropReason::PushbackLimit).pkts,
        drops_on_reflector_traffic: drops_on_reflectors,
        legit_success: mean_success(&clients),
        victim_overloaded,
    };
    drop(s);
    (row, sim.stats)
}

/// Sweep-grid adapter: one cell per misattribution case.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        CASES
            .iter()
            .map(
                |&(key, skinny, label, scenario_key)| crate::sweep::SweepCell {
                    experiment: "e9",
                    scenario: scenario_key.to_string(),
                    base_seed: SEED,
                    run: Box::new(move |seed| {
                        let (row, stats) = run_case(key, skinny, quick, label, seed);
                        let mut metrics = std::collections::BTreeMap::new();
                        metrics.insert("limits_installed".to_string(), row.limits_installed as f64);
                        metrics.insert(
                            "limits_on_reflector_prefixes".to_string(),
                            row.limits_on_reflector_prefixes as f64,
                        );
                        metrics.insert(
                            "limits_on_agent_prefixes".to_string(),
                            row.limits_on_agent_prefixes as f64,
                        );
                        metrics.insert("pushback_drops".to_string(), row.pushback_drops as f64);
                        metrics.insert(
                            "drops_on_reflector_traffic".to_string(),
                            row.drops_on_reflector_traffic as f64,
                        );
                        metrics.insert("legit_success".to_string(), row.legit_success);
                        metrics.insert(
                            "victim_overloaded".to_string(),
                            row.victim_overloaded as f64,
                        );
                        crate::sweep::CellRun { metrics, stats }
                    }),
                },
            )
            .collect()
    }
}

/// Run E9.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e9",
        "Pushback against reflector attacks: no trigger, then misattribution",
        "Sec. 3.1",
    );
    let rows: Vec<Row> = CASES
        .iter()
        .map(|&(key, skinny, label, _)| run_case(key, skinny, quick, label, SEED).0)
        .collect();
    let mut t = Table::new(
        "what pushback limits, and whom it hits",
        &[
            "case",
            "limits",
            "on_reflectors",
            "on_agents",
            "pb_drops",
            "drops_refl_traffic",
            "legit_ok",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.case.clone(),
                r.limits_installed.to_string(),
                r.limits_on_reflector_prefixes.to_string(),
                r.limits_on_agent_prefixes.to_string(),
                r.pushback_drops.to_string(),
                r.drops_on_reflector_traffic.to_string(),
                f(r.legit_success),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Row 1: zero limits installed — the server died with clear links, pushback's blind \
         spot. Rows 2-3: every source-keyed limit lands on an innocent reflector prefix and \
         none on an agent prefix ('will yield a wrong attack source — the reflectors'); \
         dst-keyed limits at least confine the victim-bound aggregate but throttle legitimate \
         clients inside it too.",
    );
    report
}
