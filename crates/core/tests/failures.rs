//! Failure injection: link failures with rerouting, and their interaction
//! with route-consistency-based anti-spoofing.

use dtcs::netsim::{
    Addr, DropReason, NodeId, PacketBuilder, Prefix, Proto, SimTime, Simulator, Topology,
    TrafficClass,
};
use dtcs::{deploy_tcs_static, TcsStaticConfig};

/// A square 0-1-2-3-0: failing one side reroutes around the ring;
/// restoring it brings the short path back.
#[test]
fn traffic_reroutes_around_a_failed_link() {
    let mut topo = Topology::new();
    use dtcs::netsim::{LinkProfile, NodeRole};
    for _ in 0..4 {
        topo.add_node(NodeRole::Transit);
    }
    let l01 = topo
        .connect(NodeId(0), NodeId(1), LinkProfile::transit())
        .unwrap();
    topo.connect(NodeId(1), NodeId(2), LinkProfile::transit())
        .unwrap();
    topo.connect(NodeId(2), NodeId(3), LinkProfile::transit())
        .unwrap();
    topo.connect(NodeId(3), NodeId(0), LinkProfile::transit())
        .unwrap();
    let mut sim = Simulator::new(topo, 5);
    let dst = Addr::new(NodeId(1), 1);
    sim.install_app(dst, Box::new(dtcs::netsim::SinkApp));
    assert_eq!(sim.routing.distance(NodeId(0), NodeId(1)), Some(1));

    let send = |sim: &mut Simulator, at_ms: u64, k: u64| {
        sim.schedule(SimTime::from_millis(at_ms), move |s| {
            s.emit_now(
                NodeId(0),
                PacketBuilder::new(
                    Addr::new(NodeId(0), 1),
                    dst,
                    Proto::Udp,
                    TrafficClass::Background,
                )
                .size(100)
                .flow(k),
            );
        });
    };
    send(&mut sim, 100, 1); // direct path, 1 hop
    sim.schedule(SimTime::from_millis(500), move |s| {
        s.set_link_up(l01, false)
    });
    send(&mut sim, 1000, 2); // must go 0-3-2-1
    sim.schedule(SimTime::from_millis(1500), move |s| {
        s.set_link_up(l01, true)
    });
    send(&mut sim, 2000, 3); // direct again
    sim.run_until(SimTime::from_secs(3));

    let c = sim.stats.class(TrafficClass::Background);
    assert_eq!(
        c.delivered_pkts, 3,
        "all packets arrive despite the failure"
    );
    // Hop accounting: 1 + 3 + 1.
    assert_eq!(c.delivered_hops, 5);
    sim.stats.check_conservation().unwrap();
}

/// Packets already committed toward a link when it fails are dropped at
/// the dead link, not black-holed silently.
#[test]
fn down_link_drops_are_accounted() {
    let topo = Topology::line(3);
    let mut sim = Simulator::new(topo, 5);
    let dst = Addr::new(NodeId(2), 1);
    sim.install_app(dst, Box::new(dtcs::netsim::SinkApp));
    let l12 = sim.topo.nodes[2].links[0];
    // Fail the last link; node 1 has no alternative: NoRoute after
    // recompute, so emit BEFORE the recompute sees it — schedule ordering:
    // emit at t=1ms, fail at t=0: the packet finds no route at node 1.
    sim.schedule(SimTime::from_millis(0), move |s| s.set_link_up(l12, false));
    sim.schedule(SimTime::from_millis(1), move |s| {
        s.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                dst,
                Proto::Udp,
                TrafficClass::Background,
            )
            .size(100),
        );
    });
    sim.run_until(SimTime::from_secs(1));
    let no_route = sim.stats.drops_for_reason(DropReason::NoRoute).pkts;
    let overflow = sim.stats.drops_for_reason(DropReason::QueueOverflow).pkts;
    assert_eq!(
        no_route + overflow,
        1,
        "the packet must die accountably at the failure"
    );
    sim.stats.check_conservation().unwrap();
}

/// Anti-spoofing keeps working — and stays false-positive-free — after a
/// failure reroutes legitimate traffic, because route-consistency checks
/// consult the live routing tables.
#[test]
fn antispoof_tracks_rerouting_without_false_positives() {
    let topo = Topology::transit_stub_multihomed(4, 6, 0.3, 13);
    let mut sim = Simulator::new(topo, 13);
    let victim_node = sim.topo.stub_nodes()[0];
    let victim = Addr::new(victim_node, 1);
    sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
    deploy_tcs_static(
        &mut sim,
        Prefix::of_node(victim_node),
        &TcsStaticConfig {
            dst_firewall: false,
            ..Default::default()
        },
    );
    // The victim's own replies (src = victim prefix) to a remote client,
    // before and after a core link fails.
    let client_node = sim.topo.stub_nodes()[5];
    let client = Addr::new(client_node, 2);
    sim.install_app(client, Box::new(dtcs::netsim::SinkApp));
    let reply = move |sim: &mut Simulator, at_ms: u64, k: u64| {
        sim.schedule(SimTime::from_millis(at_ms), move |s| {
            s.emit_now(
                victim.node(),
                PacketBuilder::new(victim, client, Proto::TcpSynAck, TrafficClass::LegitReply)
                    .size(60)
                    .flow(k),
            );
        });
    };
    reply(&mut sim, 100, 1);
    // Fail a backbone link on the current victim->client path (the first
    // core-to-core link we can find on it).
    let routing_path = sim
        .routing
        .path(&sim.topo, victim_node, client_node)
        .expect("path exists");
    let mut failed = None;
    for w in routing_path.windows(2) {
        if let Some((_, link)) = sim.topo.neighbours(w[0]).find(|&(p, _)| p == w[1]) {
            use dtcs::netsim::NodeRole;
            if sim.topo.nodes[w[0].0].role == NodeRole::Transit
                && sim.topo.nodes[w[1].0].role == NodeRole::Transit
            {
                failed = Some(link);
                break;
            }
        }
    }
    if let Some(link) = failed {
        sim.schedule(SimTime::from_millis(500), move |s| {
            s.set_link_up(link, false)
        });
    }
    reply(&mut sim, 1000, 2);
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(
        sim.stats.drops_for_reason(DropReason::SpoofFilter).pkts,
        0,
        "honest traffic must never trip anti-spoofing, before or after rerouting"
    );
    assert_eq!(sim.stats.class(TrafficClass::LegitReply).delivered_pkts, 2);
}
