//! Fault-tolerance acceptance tests: the Fig. 4/5 protocol running over a
//! faulty control channel ([`dtcs_netsim::FaultPlane`]) must still deliver
//! exactly-once configuration — lossy links are repaired by retransmission,
//! duplicated messages are absorbed by dedup and idempotency, and device
//! crashes are healed by the NMS anti-entropy sweep.

use proptest::prelude::*;

use dtcs_control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserHandle, UserId,
};
use dtcs_netsim::{
    FaultConfig, FaultPlane, NodeId, Outage, Partition, Prefix, SimDuration, SimTime, Simulator,
    Topology,
};

/// Standard fixture: transit-stub topology, control plane installed, one
/// legitimate user deploying `AntiSpoofing` to all managed devices.
struct Fixture {
    sim: Simulator,
    cp: ControlPlane,
    record: UserHandle,
}

fn fixture(transit: usize, stubs: usize, reconcile_every: Option<SimDuration>) -> Fixture {
    let topo = Topology::transit_stub_multihomed(transit, stubs, 0.2, 7);
    let mut sim = Simulator::new(topo, 3);
    let victim_node = sim.topo.stub_nodes()[0];
    let mut authority = InternetNumberAuthority::new();
    let user_prefix = Prefix::of_node(victim_node);
    authority.allocate(user_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp = match reconcile_every {
        Some(every) => ControlPlane::install_with_reconcile(
            &mut sim,
            authority,
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
            every,
        ),
        None => ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps),
    };
    let (_user, record) = cp.add_user(
        &mut sim,
        victim_node,
        vec![user_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    Fixture { sim, cp, record }
}

fn lossy_plane(seed: u64, drop: f64, dup: f64, jitter_ms: u64) -> FaultPlane {
    FaultPlane::new(FaultConfig {
        seed,
        drop_prob: drop,
        dup_prob: dup,
        jitter_max: SimDuration::from_millis(jitter_ms),
        outages: Vec::new(),
        partitions: Vec::new(),
    })
}

#[test]
fn lossy_channel_converges_to_full_coverage() {
    // The headline acceptance check: 20% loss + 10% duplication + jitter,
    // and the retried protocol still configures every managed device
    // exactly once.
    let mut fx = fixture(3, 5, None);
    fx.sim.install_fault_plane(lossy_plane(42, 0.20, 0.10, 20));
    fx.sim.run_until(SimTime::from_secs(60));

    let n = fx.sim.topo.n();
    assert_eq!(fx.cp.devices_configured(), n, "every device configured");
    for (node, dev) in &fx.cp.devices {
        assert_eq!(
            dev.lock().rule_count,
            1,
            "exactly one rule on {node:?} despite retries + duplicates"
        );
    }
    let r = fx.record.lock();
    assert!(r.registered_at.is_some(), "registration survives loss");
    assert!(!r.denied);

    // The channel really was faulty, and the protocol really did repair it.
    assert!(fx.sim.stats.cp_fault_dropped > 0, "drops occurred");
    assert!(fx.sim.stats.cp_fault_duplicated > 0, "duplicates occurred");
    let cp_stats = fx.cp.cp_stats.lock().clone();
    assert!(
        cp_stats.retransmits > 0,
        "drops must have triggered retransmits: {cp_stats:?}"
    );
}

#[test]
fn duplicate_and_retried_messages_never_double_count() {
    // Duplicate every single control message (dup_prob = 1) with zero
    // loss: every DeployConfirm, NmsAck, InstallOk … arrives twice. The
    // user's coverage report and the devices themselves must not
    // double-count anything.
    let mut fx = fixture(3, 5, None);
    fx.sim.install_fault_plane(lossy_plane(7, 0.0, 1.0, 0));
    fx.sim.run_until(SimTime::from_secs(30));

    let n = fx.sim.topo.n();
    let r = fx.record.lock();
    assert!(r.deploy_confirmed_at.is_some(), "deployment confirms");
    assert_eq!(
        r.devices_configured, n,
        "confirmed coverage counts each device once: {r:?}"
    );
    assert_eq!(fx.cp.devices_configured(), n);
    assert_eq!(fx.cp.total_rules(), n, "one rule per device, never two");

    assert!(fx.sim.stats.cp_fault_duplicated > 0);
    let cp_stats = fx.cp.cp_stats.lock().clone();
    assert!(
        cp_stats.dup_requests + cp_stats.dup_responses > 0,
        "protocol-layer dedup must have absorbed duplicates: {cp_stats:?}"
    );
}

#[test]
fn fault_counters_reconcile_with_channel_activity() {
    // Protocol-layer reliability counters must line up with what the
    // channel actually did: no faults → no retries/dedup hits; faults →
    // both layers agree something happened.
    let mut clean = fixture(3, 5, None);
    clean.sim.install_fault_plane(lossy_plane(1, 0.0, 0.0, 0));
    clean.sim.run_until(SimTime::from_secs(30));
    assert_eq!(clean.sim.stats.cp_fault_dropped, 0);
    assert_eq!(clean.sim.stats.cp_fault_duplicated, 0);
    let cs = clean.cp.cp_stats.lock().clone();
    assert_eq!(cs.give_ups, 0, "lossless channel: nothing abandoned");
    assert_eq!(cs.dup_responses, 0, "lossless channel: no dup responses");
    assert_eq!(cs.reconcile_reinstalls, 0);

    let mut faulty = fixture(3, 5, None);
    faulty
        .sim
        .install_fault_plane(lossy_plane(9, 0.15, 0.15, 10));
    faulty.sim.run_until(SimTime::from_secs(60));
    let dropped = faulty.sim.stats.cp_fault_dropped;
    let duplicated = faulty.sim.stats.cp_fault_duplicated;
    assert!(dropped > 0 && duplicated > 0);
    let cs = faulty.cp.cp_stats.lock().clone();
    // Every retransmit exists because some message went missing; the
    // retry layer can only have fired after actual channel loss.
    assert!(
        cs.retransmits > 0,
        "{dropped} drops must surface as retransmits: {cp:?}",
        cp = cs
    );
    // And despite it all: exactly-once effects.
    assert_eq!(faulty.cp.devices_configured(), faulty.sim.topo.n());
    assert_eq!(faulty.cp.total_rules(), faulty.sim.topo.n());
}

#[test]
fn device_crash_is_repaired_by_reconciliation_sweep() {
    // A managed device crashes mid-run and loses its installed services;
    // the NMS anti-entropy sweep notices the gap and re-installs.
    let mut fx = fixture(3, 5, Some(SimDuration::from_secs(2)));
    let crashed = fx.sim.topo.stub_nodes()[1];
    fx.sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed: 5,
        drop_prob: 0.0,
        dup_prob: 0.0,
        jitter_max: SimDuration::ZERO,
        outages: vec![Outage {
            node: crashed,
            from: SimTime::from_secs(5),
            until: SimTime::from_millis(5200),
            crash: true,
        }],
        partitions: Vec::new(),
    }));
    fx.sim.run_until(SimTime::from_secs(20));

    assert_eq!(fx.sim.stats.node_crashes, 1);
    let dev = fx.cp.devices[&crashed].lock();
    assert_eq!(dev.crashes, 1, "the device recorded its crash");
    assert_eq!(
        dev.rule_count, 1,
        "service re-installed after the crash wiped it"
    );
    drop(dev);
    assert_eq!(fx.cp.devices_configured(), fx.sim.topo.n());
    let cs = fx.cp.cp_stats.lock().clone();
    assert!(cs.reconcile_sweeps > 0, "sweeps ran: {cs:?}");
    assert!(
        cs.reconcile_reinstalls >= 1,
        "the sweep repaired the crashed device: {cs:?}"
    );
}

#[test]
fn nms_outage_window_is_ridden_out_by_retries() {
    // A non-crash outage: the first ISP's NMS goes deaf for 1.5 s right
    // as deployment fan-out begins. Retransmits from the TCSP (and the
    // NMS's own install retries) repair the gap once the window closes.
    let mut fx = fixture(3, 5, None);
    let nms = fx.cp.isps[0].nms_node;
    fx.sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed: 3,
        drop_prob: 0.0,
        dup_prob: 0.0,
        jitter_max: SimDuration::ZERO,
        outages: vec![Outage {
            node: nms,
            from: SimTime::from_millis(150),
            until: SimTime::from_millis(1650),
            crash: false,
        }],
        partitions: Vec::new(),
    }));
    fx.sim.run_until(SimTime::from_secs(60));

    assert!(
        fx.sim.stats.cp_outage_dropped > 0,
        "the window ate messages"
    );
    assert_eq!(
        fx.cp.devices_configured(),
        fx.sim.topo.n(),
        "coverage completes after the outage closes"
    );
    assert_eq!(fx.cp.total_rules(), fx.sim.topo.n());
}

#[test]
fn control_partition_window_is_ridden_out_by_retries() {
    // A directed control-plane cut — TCSP → first ISP's NMS goes dark
    // for 1.5 s right as deployment fan-out begins, while the reverse
    // direction stays up. Unlike an outage, only that ordered pair is
    // affected; retransmits repair the gap once the window lifts.
    let mut fx = fixture(3, 5, None);
    let nms = fx.cp.isps[0].nms_node;
    let tcsp = fx.sim.topo.transit_nodes()[0];
    fx.sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed: 11,
        drop_prob: 0.0,
        dup_prob: 0.0,
        jitter_max: SimDuration::ZERO,
        outages: Vec::new(),
        partitions: vec![Partition {
            src: vec![tcsp],
            dst: vec![nms],
            from: SimTime::from_millis(100),
            until: SimTime::from_millis(1600),
        }],
    }));
    fx.sim.run_until(SimTime::from_secs(60));

    assert!(
        fx.sim.stats.cp_partition_dropped > 0,
        "the cut swallowed messages"
    );
    assert_eq!(
        fx.sim.stats.cp_outage_dropped, 0,
        "a partition is not an outage: the buckets must not bleed"
    );
    assert_eq!(
        fx.cp.devices_configured(),
        fx.sim.topo.n(),
        "coverage completes after the partition heals"
    );
    assert_eq!(fx.cp.total_rules(), fx.sim.topo.n());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite (d), part 1: any loss/dup/jitter schedule below the
    /// retry budget converges — every scoped device ends up configured
    /// exactly once.
    #[test]
    fn random_fault_schedules_converge_to_exactly_once(
        seed in 0u64..10_000,
        drop in 0.0f64..0.18,
        dup in 0.0f64..0.30,
        jitter_ms in 0u64..40,
    ) {
        let mut fx = fixture(2, 4, None);
        fx.sim.install_fault_plane(lossy_plane(seed, drop, dup, jitter_ms));
        fx.sim.run_until(SimTime::from_secs(60));
        let n = fx.sim.topo.n();
        prop_assert_eq!(fx.cp.devices_configured(), n);
        for (node, dev) in &fx.cp.devices {
            prop_assert_eq!(
                dev.lock().rule_count, 1,
                "device {:?} configured exactly once (seed {}, drop {}, dup {})",
                node, seed, drop, dup
            );
        }
    }

    /// Satellite (d), part 2: duplicated DeployConfirm / NmsAck traffic
    /// never double-counts `devices_configured` in the user's record.
    #[test]
    fn duplicated_confirms_never_inflate_coverage(
        seed in 0u64..10_000,
        dup in 0.3f64..1.0,
    ) {
        let mut fx = fixture(2, 4, None);
        fx.sim.install_fault_plane(lossy_plane(seed, 0.0, dup, 0));
        fx.sim.run_until(SimTime::from_secs(30));
        let n = fx.sim.topo.n();
        let r = fx.record.lock();
        prop_assert!(r.deploy_confirmed_at.is_some());
        prop_assert_eq!(
            r.devices_configured, n,
            "coverage inflated: {:?} (seed {}, dup {})", r, seed, dup
        );
        prop_assert_eq!(fx.cp.total_rules(), n);
    }
}
