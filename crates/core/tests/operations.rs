//! Integration tests for post-deployment operations (Sec. 5.1: "a network
//! user may activate, modify specific parameters or read logs of the
//! service") and partial deployments of the baselines.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs::control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserId, UserOp,
};
use dtcs::device::{DeviceCommand, DeviceReply, OwnerId, Stage};
use dtcs::mitigation::{deploy_pushback_on, PushbackConfig};
use dtcs::netsim::{
    Addr, AgentCtx, ControlMsg, LinkId, LinkProfile, NodeAgent, NodeId, Packet, PacketBuilder,
    Prefix, Proto, SimDuration, SimTime, Simulator, Topology, TrafficClass, Verdict,
};

/// A probe agent that records device replies (log data, digest answers).
#[derive(Default)]
struct ReplyProbe {
    log_entries: Arc<Mutex<Vec<usize>>>,
}

impl NodeAgent for ReplyProbe {
    fn name(&self) -> &'static str {
        "reply-probe"
    }
    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        Verdict::Forward
    }
    fn on_control(&mut self, _ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        if let Some(DeviceReply::LogData { entries, .. }) = msg.get::<DeviceReply>() {
            self.log_entries.lock().push(entries.len());
        }
    }
}

/// Deploy the Statistics catalog service via the full control plane, let
/// traffic flow, then collect logs with a ReadLog command — the Sec. 4.4
/// "collecting traffic statistics" application end to end.
#[test]
fn statistics_service_logs_are_collectable() {
    let topo = Topology::transit_stub_multihomed(3, 6, 0.2, 21);
    let mut sim = Simulator::new(topo, 21);
    let me = sim.topo.stub_nodes()[0];
    let my_prefix = Prefix::of_node(me);
    let mut authority = InternetNumberAuthority::new();
    authority.allocate(my_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp =
        ControlPlane::install(&mut sim, authority, 0xBEEF, tcsp_node, authority_node, isps);
    let (user, record) = cp.add_user(
        &mut sim,
        me,
        vec![my_prefix],
        CatalogService::Statistics {
            capacity: 256,
            sample_one_in: 1,
        },
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );

    // Traffic toward my prefix.
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let sender = sim.topo.stub_nodes()[4];
    for k in 0..200u64 {
        let at = SimTime::from_millis(1000 + k * 10);
        sim.schedule(at, move |s| {
            s.emit_now(
                sender,
                PacketBuilder::new(
                    Addr::new(sender, 2),
                    my_addr,
                    Proto::TcpData,
                    TrafficClass::Background,
                )
                .size(300)
                .flow(k),
            );
        });
    }
    sim.run_until(SimTime::from_secs(5));
    assert!(record.lock().deploy_confirmed_at.is_some());

    // Collect the logs from every device.
    let log_entries = Arc::new(Mutex::new(Vec::new()));
    sim.add_agent(
        me,
        Box::new(ReplyProbe {
            log_entries: log_entries.clone(),
        }),
    );
    // Ask every device for its log (the user is allowed: it is their
    // service).
    for (&node, _) in cp.devices.iter() {
        sim.deliver_control(
            SimTime::from_secs(6),
            me,
            node,
            DeviceCommand::ReadLog {
                owner: OwnerId(user.0),
                stage: Stage::Dst,
                reply_to: me,
            },
        );
    }
    sim.run_until(SimTime::from_secs(8));
    let collected: usize = log_entries.lock().iter().sum();
    assert!(
        collected >= 200,
        "per-hop statistics must cover the flow: {collected} entries"
    );
}

/// User operation path: deactivating a deployed service over the control
/// plane actually stops it filtering, and reactivating resumes it.
#[test]
fn set_active_toggles_a_live_service() {
    let topo = Topology::transit_stub_multihomed(3, 6, 0.2, 23);
    let mut sim = Simulator::new(topo, 23);
    let me = sim.topo.stub_nodes()[0];
    let my_prefix = Prefix::of_node(me);
    let mut authority = InternetNumberAuthority::new();
    authority.allocate(my_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp =
        ControlPlane::install(&mut sim, authority, 0xBEEF, tcsp_node, authority_node, isps);
    let (_user, record) = cp.add_user(
        &mut sim,
        me,
        vec![my_prefix],
        CatalogService::FirewallBlock {
            protos: vec![Proto::Udp],
        },
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let sender = sim.topo.stub_nodes()[4];
    let fire = move |sim: &mut Simulator, at_ms: u64, k: u64| {
        let at = SimTime::from_millis(at_ms);
        sim.schedule(at, move |s| {
            s.emit_now(
                sender,
                PacketBuilder::new(
                    Addr::new(sender, 2),
                    my_addr,
                    Proto::Udp,
                    TrafficClass::Background,
                )
                .size(100)
                .flow(k),
            );
        });
    };
    // Phase 1 (deployed + active): blocked.
    fire(&mut sim, 2000, 1);
    sim.run_until(SimTime::from_secs(3));
    assert!(record.lock().deploy_confirmed_at.is_some());
    let delivered_1 = sim.stats.class(TrafficClass::Background).delivered_pkts;
    assert_eq!(delivered_1, 0, "active firewall blocks UDP");

    // Phase 2: user deactivates via OpRequest through the TCSP.
    let cert = record.lock().cert.clone().expect("cert");
    sim.deliver_control(
        SimTime::from_secs(4),
        me,
        tcsp_node,
        dtcs::control::Envelope {
            to: dtcs::control::Role::Tcsp,
            key: dtcs::control::MsgKey::first(0xAA01, 99),
            msg: dtcs::control::CpMsg::OpRequest {
                cert: cert.clone(),
                op: UserOp::SetActive(Stage::Dst, false),
                txn: 99,
                reply_to: me,
            },
        },
    );
    fire(&mut sim, 6000, 2);
    sim.run_until(SimTime::from_secs(7));
    let delivered_2 = sim.stats.class(TrafficClass::Background).delivered_pkts;
    assert_eq!(delivered_2, 1, "deactivated firewall passes UDP");

    // Phase 3: reactivate.
    sim.deliver_control(
        SimTime::from_secs(8),
        me,
        tcsp_node,
        dtcs::control::Envelope {
            to: dtcs::control::Role::Tcsp,
            key: dtcs::control::MsgKey::first(0xAA01, 99),
            msg: dtcs::control::CpMsg::OpRequest {
                cert,
                op: UserOp::SetActive(Stage::Dst, true),
                txn: 100,
                reply_to: me,
            },
        },
    );
    fire(&mut sim, 10_000, 3);
    sim.run_until(SimTime::from_secs(11));
    let delivered_3 = sim.stats.class(TrafficClass::Background).delivered_pkts;
    assert_eq!(delivered_3, 1, "reactivated firewall blocks again");
}

/// Pushback propagation stops at routers that do not speak the protocol
/// (Sec. 3.1: "if a router on a path … does not speak the protocol, the
/// pushback of filter rules stops to extend further on that particular
/// path").
#[test]
fn pushback_propagation_stops_at_non_speakers() {
    // Line: src stub (0) - A (1) - B (2) - C (3) - victim (4), with a
    // skinny C-victim link. Pushback on C and B only in run 1; on C only
    // in run 2 (B does not speak).
    let run = |speakers: Vec<usize>| -> BTreeMap<usize, usize> {
        let skinny = LinkProfile {
            bandwidth_bps: 1e6,
            latency: SimDuration::from_millis(2),
            queue_limit_bytes: 15_000,
        };
        let mut topo = Topology::line(5);
        // Make the last link the bottleneck.
        let last_link = topo.nodes[4].links[0];
        topo.links[last_link.0].bandwidth_bps = skinny.bandwidth_bps;
        topo.links[last_link.0].queue_limit_bytes = skinny.queue_limit_bytes;
        let mut sim = Simulator::new(topo, 31);
        let nodes: Vec<NodeId> = speakers.iter().map(|&i| NodeId(i)).collect();
        let stats = deploy_pushback_on(&mut sim, &nodes, PushbackConfig::default());
        let victim = Addr::new(NodeId(4), 1);
        sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
        for k in 0..8000u64 {
            let at = SimTime(k * 1_500_000);
            sim.schedule(at, move |s| {
                s.emit_now(
                    NodeId(0),
                    PacketBuilder::new(
                        Addr::new(NodeId(0), 3),
                        victim,
                        Proto::Udp,
                        TrafficClass::AttackDirect,
                    )
                    .size(1000)
                    .flow(k),
                );
            });
        }
        sim.run_until(SimTime::from_secs(15));
        let s = stats.lock();
        let mut per_node: BTreeMap<usize, usize> = BTreeMap::new();
        for (node, _) in &s.limits_installed {
            *per_node.entry(node.0).or_insert(0) += 1;
        }
        per_node
    };

    // All of 1..=3 speak pushback: limits propagate upstream past node 3.
    let full = run(vec![1, 2, 3]);
    assert!(full.contains_key(&3), "congestion head limits: {full:?}");
    assert!(
        full.contains_key(&2) || full.contains_key(&1),
        "limits must propagate upstream: {full:?}"
    );

    // Node 2 does not speak: propagation cannot reach node 1.
    let broken = run(vec![1, 3]);
    assert!(broken.contains_key(&3), "head still limits: {broken:?}");
    assert!(
        !broken.contains_key(&1),
        "propagation must stop at the non-speaking node 2: {broken:?}"
    );
}
