//! Traffic ownership (Sec. 4.1).
//!
//! "We declare a network packet to be owned by these network users, who are
//! officially registered to hold either the destination or the source IP
//! address or both of that packet." The [`OwnerTable`] is the device-local
//! materialisation of that registry: a longest-prefix-match structure from
//! address to owner, consulted twice per packet (source side, then
//! destination side).

use dtcs_netsim::{Addr, NodeId, Prefix};
use serde::{Deserialize, Serialize};

use crate::trie::PrefixTrie;

/// A registered network user (owner of one or more prefixes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OwnerId(pub u64);

/// Per-owner registration data held by a device.
#[derive(Clone, Copy, Debug)]
pub struct OwnerEntry {
    /// The owner.
    pub owner: OwnerId,
    /// Node to which telemetry (trigger events, log-ready notices) is sent.
    pub contact: NodeId,
}

/// Device-local map from address space to owner.
#[derive(Clone, Debug, Default)]
pub struct OwnerTable {
    trie: PrefixTrie<OwnerEntry>,
}

impl OwnerTable {
    /// Empty table.
    pub fn new() -> Self {
        OwnerTable {
            trie: PrefixTrie::new(),
        }
    }

    /// Register `prefix` as owned by `owner` with a telemetry contact node.
    /// More-specific registrations shadow less-specific ones (LPM).
    pub fn register(&mut self, prefix: Prefix, owner: OwnerId, contact: NodeId) {
        self.trie.insert(prefix, OwnerEntry { owner, contact });
    }

    /// Remove the registration at exactly `prefix`.
    pub fn unregister(&mut self, prefix: Prefix) -> Option<OwnerEntry> {
        self.trie.remove(prefix)
    }

    /// The owner of an address, if registered.
    pub fn owner_of(&self, addr: Addr) -> Option<&OwnerEntry> {
        self.trie.lookup(addr).map(|(_, e)| e)
    }

    /// All prefixes registered to `owner`.
    pub fn prefixes_of(&self, owner: OwnerId) -> Vec<Prefix> {
        self.trie
            .iter()
            .filter(|(_, e)| e.owner == owner)
            .map(|(p, _)| p)
            .collect()
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut t = OwnerTable::new();
        t.register(Prefix::of_node(NodeId(3)), OwnerId(1), NodeId(3));
        let e = t.owner_of(Addr::new(NodeId(3), 42)).unwrap();
        assert_eq!(e.owner, OwnerId(1));
        assert!(t.owner_of(Addr::new(NodeId(4), 0)).is_none());
    }

    #[test]
    fn more_specific_shadows() {
        let mut t = OwnerTable::new();
        t.register(Prefix::new(0, 8), OwnerId(1), NodeId(0));
        t.register(Prefix::new(0, 16), OwnerId(2), NodeId(0));
        assert_eq!(t.owner_of(Addr(5)).unwrap().owner, OwnerId(2));
        assert_eq!(t.owner_of(Addr(0x0001_0000)).unwrap().owner, OwnerId(1));
    }

    #[test]
    fn prefixes_of_collects() {
        let mut t = OwnerTable::new();
        t.register(Prefix::of_node(NodeId(1)), OwnerId(9), NodeId(1));
        t.register(Prefix::of_node(NodeId(2)), OwnerId(9), NodeId(1));
        t.register(Prefix::of_node(NodeId(3)), OwnerId(8), NodeId(3));
        let mut ps = t.prefixes_of(OwnerId(9));
        ps.sort_by_key(|p| p.bits);
        assert_eq!(ps.len(), 2);
        assert!(ps.contains(&Prefix::of_node(NodeId(1))));
    }

    #[test]
    fn unregister_removes() {
        let mut t = OwnerTable::new();
        let p = Prefix::of_node(NodeId(7));
        t.register(p, OwnerId(1), NodeId(7));
        assert_eq!(t.len(), 1);
        assert!(t.unregister(p).is_some());
        assert!(t.owner_of(Addr::new(NodeId(7), 0)).is_none());
        assert!(t.is_empty());
    }
}
