//! Botnet recruitment via a susceptible–infected (SI) epidemic.
//!
//! Sec. 2.1 of the paper: worms like MyDoom "build up a huge amplifying
//! network of several ten thousand hosts in a short time". We do not model
//! worm payloads — only the *growth curve* of the agent population matters
//! to mitigation timing — so recruitment follows the standard logistic SI
//! dynamics dI/dt = β·I·(1 − I/S), discretised deterministically. The
//! output is a sorted list of activation times, one per recruited agent,
//! consumed by [`crate::agent::AgentApp`].

use dtcs_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// SI recruitment parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SiModel {
    /// Susceptible population (maximum botnet size).
    pub susceptible: usize,
    /// Initially infected hosts (seed population, >= 1).
    pub seed: usize,
    /// Contact/infection rate β in 1/second.
    pub beta: f64,
    /// Integration step.
    pub dt: SimDuration,
}

impl SiModel {
    /// A fast worm: 1000 susceptible hosts, 2 seeds, β=0.8/s.
    pub fn fast(susceptible: usize) -> SiModel {
        SiModel {
            susceptible,
            seed: 2.min(susceptible.max(1)),
            beta: 0.8,
            dt: SimDuration::from_millis(100),
        }
    }

    /// Activation times for `n` agents: the instants at which the
    /// cumulative infected count crosses 1, 2, …, n. Agents beyond the
    /// carrying capacity never activate and are omitted.
    pub fn activation_times(&self, n: usize) -> Vec<SimTime> {
        let s = self.susceptible.max(1) as f64;
        let mut infected = (self.seed.max(1) as f64).min(s);
        let dt_s = self.dt.as_secs_f64().max(1e-9);
        let mut out = Vec::with_capacity(n.min(self.susceptible));
        let mut t = SimTime::ZERO;
        // Seeds activate immediately.
        while out.len() < n && (out.len() as f64) < infected {
            out.push(t);
        }
        let mut steps: u64 = 0;
        // Hard cap to guarantee termination even for tiny beta.
        let max_steps = 10_000_000u64;
        while out.len() < n.min(self.susceptible) && steps < max_steps {
            infected += self.beta * infected * (1.0 - infected / s) * dt_s;
            infected = infected.min(s);
            t += self.dt;
            steps += 1;
            while out.len() < n.min(self.susceptible) && ((out.len() + 1) as f64) <= infected {
                out.push(t);
            }
            if infected >= s - 1e-9 {
                // Saturated: everything remaining activates now.
                while out.len() < n.min(self.susceptible) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Time for the infection to reach a fraction `frac` of the
    /// susceptible population (closed-form logistic solution).
    pub fn time_to_fraction(&self, frac: f64) -> SimDuration {
        let s = self.susceptible.max(1) as f64;
        let i0 = (self.seed.max(1) as f64).min(s);
        let frac = frac.clamp(1e-9, 1.0 - 1e-9);
        let target = frac * s;
        // Logistic: I(t) = S / (1 + (S/I0 - 1) e^{-βt})
        let ratio = (s / i0 - 1.0) / (s / target - 1.0);
        let t = ratio.ln() / self.beta;
        SimDuration::from_secs_f64(t.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_activate_at_zero() {
        let m = SiModel {
            susceptible: 100,
            seed: 3,
            beta: 1.0,
            dt: SimDuration::from_millis(10),
        };
        let times = m.activation_times(10);
        assert_eq!(times.len(), 10);
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[2], SimTime::ZERO);
        assert!(times[3] > SimTime::ZERO);
    }

    #[test]
    fn activation_times_sorted_and_bounded() {
        let m = SiModel::fast(500);
        let times = m.activation_times(500);
        assert_eq!(times.len(), 500);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn growth_is_s_shaped() {
        let m = SiModel::fast(1000);
        let times = m.activation_times(1000);
        // Time from 10% to 50% should be much shorter than from 0.2% to
        // 10% (exponential take-off), and the tail (90%→100%) slow again.
        let t10 = times[100].as_secs_f64();
        let t50 = times[500].as_secs_f64();
        let t90 = times[900].as_secs_f64();
        let t99 = times[990].as_secs_f64();
        assert!(t50 - t10 < t10, "take-off phase dominates early time");
        assert!(t99 - t90 > (t50 - t10) / 4.0, "saturation slows down");
    }

    #[test]
    fn closed_form_matches_simulation() {
        let m = SiModel {
            susceptible: 1000,
            seed: 2,
            beta: 0.5,
            dt: SimDuration::from_millis(10),
        };
        let times = m.activation_times(1000);
        let t_half_sim = times[499].as_secs_f64();
        let t_half_cf = m.time_to_fraction(0.5).as_secs_f64();
        let rel = (t_half_sim - t_half_cf).abs() / t_half_cf;
        assert!(rel < 0.05, "sim {t_half_sim} vs closed-form {t_half_cf}");
    }

    #[test]
    fn capped_by_susceptible_population() {
        let m = SiModel::fast(10);
        let times = m.activation_times(50);
        assert_eq!(times.len(), 10);
    }
}
