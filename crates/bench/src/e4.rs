//! E4 — Collateral damage per scheme (Secs. 1 and 3: prior systems "may
//! completely cut off legitimate servers or complete networks under a DDoS
//! reflector attack, thus amplifying the effects of the attack").
//!
//! Focused on the reactive filtering schemes and their intensity: the
//! metric is the success of *third-party* clients using reflector-hosted
//! services, alongside the victim's own service.

use rayon::prelude::*;

use dtcs::mitigation::{BlockScope, Placement, PushbackConfig};
use dtcs::netsim::{Prefix, SimTime};
use dtcs::{run_scenario, OutcomeRow, Scheme, TcsStaticConfig};

use crate::e2::{outcome_cells, outcome_header, outcome_metrics, scenario};
use crate::util::{f, Report, Table};

/// The victim prefix exactly as `run_scenario` derives it — it depends
/// on the scenario seed, so the sweep recomputes it per replicate.
fn victim_prefix(cfg: &dtcs::ScenarioConfig) -> Prefix {
    let topo = dtcs::netsim::Topology::barabasi_albert(
        cfg.n_nodes,
        cfg.ba_m,
        cfg.transit_fraction,
        cfg.seed,
    );
    let stubs: Vec<_> = topo
        .nodes
        .iter()
        .filter(|n| n.role == dtcs::netsim::NodeRole::Stub)
        .map(|n| n.id)
        .collect();
    Prefix::of_node(stubs[cfg.seed as usize % stubs.len()])
}

/// The scheme line-up under comparison. Seed-dependent via the
/// victim-scoped traceback filter, hence a function of the config.
fn schemes(cfg: &dtcs::ScenarioConfig) -> Vec<Scheme> {
    let reconstruct_at = SimTime(cfg.attack.start_at.as_nanos() + 5_000_000_000);
    vec![
        Scheme::None,
        Scheme::TracebackFilter {
            marking_p: 0.04,
            reconstruct_at,
            scope: BlockScope::AllTraffic,
            min_share: 0.002,
        },
        Scheme::TracebackFilter {
            marking_p: 0.04,
            reconstruct_at,
            scope: BlockScope::TowardVictim(victim_prefix(cfg)),
            min_share: 0.002,
        },
        Scheme::Pushback(PushbackConfig::default()),
        Scheme::Tcs(TcsStaticConfig {
            fraction: 0.3,
            placement: Placement::TopDegree,
            activate_at: reconstruct_at,
            ..Default::default()
        }),
    ]
}

/// Sweep-grid adapter: one cell per mitigation scheme, re-deriving the
/// seed-dependent victim prefix inside each replicate.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let base_cfg = scenario(opts.quick);
        let n_schemes = schemes(&base_cfg).len();
        (0..n_schemes)
            .map(|i| {
                let cfg = base_cfg.clone();
                let label = schemes(&cfg)[i].label();
                crate::sweep::SweepCell {
                    experiment: "e4",
                    scenario: format!("scheme={label}"),
                    base_seed: cfg.seed,
                    run: Box::new(move |seed| {
                        let mut cfg = cfg.clone();
                        cfg.seed = seed;
                        let scheme = schemes(&cfg).swap_remove(i);
                        let out = run_scenario(&cfg, &scheme);
                        crate::sweep::CellRun {
                            metrics: outcome_metrics(&out.row),
                            stats: out.stats,
                        }
                    }),
                }
            })
            .collect()
    }
}

/// Run E4.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e4",
        "Collateral damage of reactive filtering",
        "Secs. 1 / 3.1 / 3.4",
    );
    let cfg = scenario(quick);
    let schemes = schemes(&cfg);
    let outs: Vec<_> = schemes.par_iter().map(|s| run_scenario(&cfg, s)).collect();
    let rows: Vec<OutcomeRow> = outs.iter().map(|o| o.row.clone()).collect();
    report.health(crate::util::wheel_health(outs.iter().map(|o| &o.stats)));
    report.health(crate::util::hist_health(outs.iter().map(|o| &o.stats)));

    let mut t = Table::new(
        "victim service vs third-party collateral",
        &outcome_header(),
    );
    for r in &rows {
        t.push(outcome_cells(r), r);
    }
    report.table(t);

    let null_route = rows
        .iter()
        .find(|r| r.scheme == "traceback+null-route")
        .expect("row");
    let tcs = rows
        .iter()
        .find(|r| r.scheme.starts_with("tcs"))
        .expect("row");
    report.note(format!(
        "Null-routing the traceback verdict (the reflectors) costs third parties {:.0}% of \
         their service while barely helping the victim; the TCS keeps collateral at {:.1}%.",
        (1.0 - null_route.collateral_success) * 100.0,
        (1.0 - tcs.collateral_success) * 100.0
    ));
    report.note(format!(
        "Sources identified by traceback: {} (all innocent reflector ASes — the 'wrong attack \
         source' of Sec. 3.1).",
        f(*null_route.extra.get("identified_sources").unwrap_or(&0.0))
    ));
    report
}
