//! Distributed firewall, triggers and protocol-misuse filtering
//! (Secs. 4.2 / 4.3 / 4.4).
//!
//! Three vignettes on one small internet:
//!
//! 1. **Firewall-like filtering** — the owner drops a protocol class on
//!    devices across the network, instantly.
//! 2. **Automated anomaly reaction** — a trigger watches inbound rate and
//!    activates a dormant rate limiter when a flood starts, then relieves
//!    it ("triggers can automatically activate predefined additional
//!    configurations").
//! 3. **Protocol misuse defense** — forged TCP RSTs tearing down
//!    long-lived connections are filtered by the owner's devices
//!    ("attacks based on protocol misuse … can also be filtered out").
//!
//! Run with: `cargo run --release -p dtcs --example distributed_firewall`

use crossbeam::channel::unbounded;
use dtcs::attack::{AgentApp, AgentMode, AgentTrigger, ConnClientApp, ConnServerApp, SpoofMode};
use dtcs::control::CatalogService;
use dtcs::device::{AdaptiveDevice, DeviceCommand, DeviceEvent, OwnerId};
use dtcs::netsim::{
    Addr, DropReason, Prefix, Proto, SimDuration, SimTime, Simulator, Topology, TrafficClass,
};

fn main() {
    firewall_vignette();
    trigger_vignette();
    misuse_vignette();
}

/// A device on every node, configured for one owner.
fn deploy_for_owner(
    sim: &mut Simulator,
    owner: OwnerId,
    prefix: Prefix,
    service: &CatalogService,
) -> Vec<dtcs::device::DeviceHandle> {
    let contact = prefix.first().node();
    (0..sim.topo.n())
        .map(|i| {
            let node = dtcs::netsim::NodeId(i);
            let (mut dev, handle) = AdaptiveDevice::new(node, None);
            dev.apply(DeviceCommand::RegisterOwner {
                owner,
                prefixes: vec![prefix],
                contact,
            });
            dev.apply(DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner,
                stage: service.stage(),
                spec: service.compile(),
            });
            sim.add_agent(node, Box::new(dev));
            handle
        })
        .collect()
}

fn firewall_vignette() {
    println!("== 1. Distributed firewall: drop UDP floods to my prefix ==");
    let topo = Topology::transit_stub_multihomed(3, 8, 0.2, 5);
    let mut sim = Simulator::new(topo, 5);
    let me = sim.topo.stub_nodes()[0];
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let owner = OwnerId(1);
    deploy_for_owner(
        &mut sim,
        owner,
        Prefix::of_node(me),
        &CatalogService::FirewallBlock {
            protos: vec![Proto::Udp],
        },
    );
    // A UDP flood and a TCP client.
    let flooder = Addr::new(sim.topo.stub_nodes()[5], 4);
    sim.install_app(
        flooder,
        Box::new(
            AgentApp::new(
                AgentMode::Direct {
                    victim: my_addr,
                    spoof: SpoofMode::None,
                },
                AgentTrigger::AtTime(SimTime::ZERO),
                200.0,
                300,
            )
            .until(SimTime::from_secs(5)),
        ),
    );
    sim.run_until(SimTime::from_secs(6));
    let dropped = sim.stats.drops_for_reason(DropReason::DeviceFilter);
    let delivered = sim.stats.class(TrafficClass::AttackDirect).delivered_pkts;
    println!(
        "   flood packets filtered: {}, leaked to my host: {}",
        dropped.pkts, delivered
    );
    println!(
        "   mean filter distance from flood source: {:.1} hops\n",
        sim.stats
            .mean_stop_distance(TrafficClass::AttackDirect, DropReason::DeviceFilter)
            .unwrap_or(f64::NAN)
    );
}

fn trigger_vignette() {
    println!("== 2. Anomaly reaction: trigger arms a dormant rate limiter ==");
    let topo = Topology::star(4);
    let mut sim = Simulator::new(topo, 5);
    let me = dtcs::netsim::NodeId(1);
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let owner = OwnerId(2);
    let service = CatalogService::AnomalyReaction {
        threshold_pps: 100.0,
        window: SimDuration::from_millis(500),
        limit_bytes_per_sec: 20_000.0,
    };
    // One device at the hub, with an event tap so we can watch it fire.
    let (tx, rx) = unbounded::<DeviceEvent>();
    let (mut dev, _handle) = AdaptiveDevice::new(dtcs::netsim::NodeId(0), None);
    dev.set_event_tap(tx);
    dev.apply(DeviceCommand::RegisterOwner {
        owner,
        prefixes: vec![Prefix::of_node(me)],
        contact: me,
    });
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner,
        stage: service.stage(),
        spec: service.compile(),
    });
    sim.add_agent(dtcs::netsim::NodeId(0), Box::new(dev));
    // Gentle traffic 0-4 s, a flood 4-8 s, calm again after.
    let flooder = Addr::new(dtcs::netsim::NodeId(2), 4);
    sim.install_app(
        flooder,
        Box::new(
            AgentApp::new(
                AgentMode::Direct {
                    victim: my_addr,
                    spoof: SpoofMode::None,
                },
                AgentTrigger::AtTime(SimTime::from_secs(4)),
                2000.0,
                200,
            )
            .until(SimTime::from_secs(8)),
        ),
    );
    let slow = Addr::new(dtcs::netsim::NodeId(3), 4);
    sim.install_app(
        slow,
        Box::new(
            AgentApp::new(
                AgentMode::Direct {
                    victim: my_addr,
                    spoof: SpoofMode::None,
                },
                AgentTrigger::AtTime(SimTime::ZERO),
                20.0,
                200,
            )
            .until(SimTime::from_secs(12)),
        ),
    );
    sim.run_until(SimTime::from_secs(14));
    for ev in rx.try_iter() {
        match ev {
            DeviceEvent::TriggerFired { value, at, .. } => {
                println!("   trigger FIRED at {at:?} (rate {value:.0} pps) -> limiter enabled")
            }
            DeviceEvent::TriggerRelieved { at, .. } => {
                println!("   trigger RELIEVED at {at:?} -> limiter disabled")
            }
            _ => {}
        }
    }
    let limited = sim.stats.drops_for_reason(DropReason::DeviceRateLimit);
    println!(
        "   packets dropped by the auto-armed limiter: {}\n",
        limited.pkts
    );
}

fn misuse_vignette() {
    println!("== 3. Protocol misuse: filtering forged TCP RSTs ==");
    let topo = Topology::line(4);
    // Two runs: undefended, then with an RST filter on the connection
    // owner's devices.
    for defended in [false, true] {
        let mut sim = Simulator::new(topo.clone(), 5);
        let client = Addr::new(dtcs::netsim::NodeId(0), 1);
        let server = Addr::new(dtcs::netsim::NodeId(3), 1);
        if defended {
            // The client's owner filters inbound RSTs that claim the
            // server but arrive from elsewhere — here simply all RSTs, a
            // policy the owner may choose for its own traffic.
            deploy_for_owner(
                &mut sim,
                OwnerId(3),
                Prefix::of_node(client.node()),
                &CatalogService::FirewallBlock {
                    protos: vec![Proto::TcpRst],
                },
            );
        }
        let (capp, conn) = ConnClientApp::new(server, SimDuration::from_millis(100));
        sim.install_app(client, Box::new(capp));
        sim.install_app(server, Box::new(ConnServerApp::new(client)));
        // Forged RST injected at node 1 by an off-path attacker.
        sim.schedule(SimTime::from_secs(2), move |s| {
            s.emit_now(
                dtcs::netsim::NodeId(1),
                dtcs::netsim::PacketBuilder::new(
                    server,
                    client,
                    Proto::TcpRst,
                    TrafficClass::AttackDirect,
                )
                .size(40),
            );
        });
        sim.run_until(SimTime::from_secs(5));
        let c = conn.lock();
        println!(
            "   {}: connection {} ({} heartbeats)",
            if defended { "defended  " } else { "undefended" },
            if c.killed {
                "KILLED by forged RST"
            } else {
                "alive"
            },
            c.heartbeats
        );
    }
}
