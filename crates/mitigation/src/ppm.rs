//! Probabilistic packet marking traceback (Savage et al., "Practical
//! Network Support for IP Traceback") — the traceback family of Sec. 3.1.
//!
//! Participating routers overwrite the 32-bit marking field with their own
//! identity with probability `p`, and increment a distance counter
//! otherwise. A victim under attack collects marks and reconstructs the
//! attack tree; the *leaves* of that tree are the apparent attack sources.
//!
//! The paper's point, reproduced in experiments E4/E9: "reactive strategies
//! involving traceback mechanisms will yield a wrong attack source — the
//! reflectors — … and subsequently filter outbound traffic of reflectors
//! might block access to important services". Reconstruction here is
//! honest: it returns whatever the marks say, which for a reflector attack
//! is the reflector ASes.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use dtcs_netsim::rng::{child_seed, seeded};
use dtcs_netsim::{
    AgentCtx, LinkId, NodeAgent, NodeId, Packet, Routing, Simulator, Topology, Verdict,
};

/// Encode a mark: node id in the high 16 bits, distance in the low 8.
fn encode(node: NodeId, dist: u8) -> u32 {
    ((node.0 as u32 & 0x7FFF) << 16) | 0x8000_0000 | dist as u32
}

/// Decode a mark, if the marked bit is set.
fn decode(mark: u32) -> Option<(NodeId, u8)> {
    if mark & 0x8000_0000 == 0 {
        return None;
    }
    Some((
        NodeId(((mark >> 16) & 0x7FFF) as usize),
        (mark & 0xFF) as u8,
    ))
}

/// Router-side marking agent.
pub struct PpmMarkerAgent {
    node: NodeId,
    p: f64,
    rng: ChaCha8Rng,
}

impl PpmMarkerAgent {
    /// Marker for `node` with marking probability `p` (Savage suggests
    /// p ≈ 1/25).
    pub fn new(node: NodeId, p: f64, seed: u64) -> PpmMarkerAgent {
        PpmMarkerAgent {
            node,
            p,
            rng: seeded(child_seed(seed, 0x99A ^ node.0 as u64)),
        }
    }
}

impl NodeAgent for PpmMarkerAgent {
    fn name(&self) -> &'static str {
        "ppm-marker"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        if self.rng.gen_bool(self.p) {
            pkt.mark = encode(self.node, 0);
        } else if let Some((n, d)) = decode(pkt.mark) {
            pkt.mark = encode(n, d.saturating_add(1));
        }
        Verdict::Forward
    }
}

/// Marks collected at the victim: `(marking node, distance)` → packets.
#[derive(Clone, Debug, Default)]
pub struct MarkTable {
    /// Observed `(node, dist)` counts.
    pub counts: BTreeMap<(NodeId, u8), u64>,
    /// Packets inspected.
    pub inspected: u64,
}

/// Shared handle to a victim's mark table.
pub type MarkHandle = Arc<Mutex<MarkTable>>;

/// Victim-side collector: records marks on traffic destined to the victim
/// node. Installed as an agent on the victim's node so it sees the traffic
/// before local delivery.
///
/// An optional protocol filter restricts collection to the packets the
/// victim can classify as attack junk (e.g. unsolicited SYN-ACKs during a
/// reflector attack) — feeding *all* inbound traffic into reconstruction
/// would add every legitimate client's AS as a spurious leaf.
pub struct MarkCollectorAgent {
    victim_node: NodeId,
    protos: Option<Vec<dtcs_netsim::Proto>>,
    marks: MarkHandle,
}

impl MarkCollectorAgent {
    /// Collector for traffic addressed to `victim_node`.
    pub fn new(victim_node: NodeId) -> (MarkCollectorAgent, MarkHandle) {
        let marks: MarkHandle = Arc::new(Mutex::new(MarkTable::default()));
        (
            MarkCollectorAgent {
                victim_node,
                protos: None,
                marks: marks.clone(),
            },
            marks,
        )
    }

    /// Only collect marks from packets of these protocols.
    pub fn with_proto_filter(mut self, protos: Vec<dtcs_netsim::Proto>) -> MarkCollectorAgent {
        self.protos = Some(protos);
        self
    }
}

impl NodeAgent for MarkCollectorAgent {
    fn name(&self) -> &'static str {
        "ppm-collector"
    }

    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        if pkt.dst.node() == self.victim_node {
            if let Some(protos) = &self.protos {
                if !protos.contains(&pkt.proto) {
                    return Verdict::Forward;
                }
            }
            let mut m = self.marks.lock();
            m.inspected += 1;
            if let Some((n, d)) = decode(pkt.mark) {
                *m.counts.entry((n, d)).or_insert(0) += 1;
            }
        }
        Verdict::Forward
    }
}

/// Reconstruct apparent attack-source ASes from a mark table.
///
/// A marked node is a *leaf* of the attack tree — an apparent source's
/// access router — iff no other marked node routes to the victim through
/// it. Nodes are ranked by marked-packet volume, and leaves carrying less
/// than `min_share` of the total marked volume are discarded as noise.
pub fn reconstruct_sources(
    topo: &Topology,
    routing: &Routing,
    victim_node: NodeId,
    marks: &MarkTable,
    min_share: f64,
) -> Vec<NodeId> {
    // Aggregate counts per marking node.
    let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
    for (&(node, _dist), &count) in &marks.counts {
        *per_node.entry(node).or_insert(0) += count;
    }
    let total: u64 = per_node.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let marked: Vec<NodeId> = per_node.keys().copied().collect();
    let mut leaves: Vec<(u64, NodeId)> = Vec::new();
    for &u in &marked {
        // Is any other marked node upstream of u (i.e. its route to the
        // victim passes through u as the next step)?
        let mut has_marked_upstream = false;
        for (w, link) in topo.neighbours(u) {
            if !per_node.contains_key(&w) {
                continue;
            }
            if let Some(nh) = routing.next_hop(w, victim_node) {
                if nh == link {
                    has_marked_upstream = true;
                    break;
                }
            }
        }
        if !has_marked_upstream {
            leaves.push((per_node[&u], u));
        }
    }
    leaves.sort_by_key(|&(c, id)| (std::cmp::Reverse(c), id.0));
    leaves
        .into_iter()
        .filter(|&(c, _)| c as f64 >= min_share * total as f64)
        .map(|(_, id)| id)
        .collect()
}

/// Deploy PPM markers on every node; returns nothing to hold (markers are
/// stateless beyond their RNG).
pub fn deploy_ppm_everywhere(sim: &mut Simulator, p: f64, seed: u64) {
    for i in 0..sim.topo.n() {
        sim.add_agent(NodeId(i), Box::new(PpmMarkerAgent::new(NodeId(i), p, seed)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, PacketBuilder, Proto, SimTime, Topology, TrafficClass};

    #[test]
    fn mark_roundtrip() {
        let m = encode(NodeId(1234), 7);
        assert_eq!(decode(m), Some((NodeId(1234), 7)));
        assert_eq!(decode(0), None);
    }

    #[test]
    fn distance_increments_along_path() {
        // Line 0..5, marker at node 1 only; packets 0 -> 5.
        let topo = Topology::line(6);
        let mut sim = Simulator::new(topo, 1);
        // Force-mark at node 1 (p = 1).
        sim.add_agent(NodeId(1), Box::new(PpmMarkerAgent::new(NodeId(1), 1.0, 5)));
        for i in 2..5 {
            // Non-marking routers still increment: p = 0.
            sim.add_agent(NodeId(i), Box::new(PpmMarkerAgent::new(NodeId(i), 0.0, 5)));
        }
        let (collector, marks) = MarkCollectorAgent::new(NodeId(5));
        sim.add_agent(NodeId(5), Box::new(collector));
        let dst = Addr::new(NodeId(5), 1);
        sim.install_app(dst, Box::new(dtcs_netsim::SinkApp));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                dst,
                Proto::Udp,
                TrafficClass::Background,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        let m = marks.lock();
        // Marked at node 1, incremented by 2, 3, 4 => distance 3.
        assert_eq!(m.counts.get(&(NodeId(1), 3)), Some(&1));
    }

    #[test]
    fn reconstruction_finds_flood_sources() {
        let topo = Topology::barabasi_albert(80, 2, 0.1, 21);
        let routing = dtcs_netsim::Routing::compute(&topo);
        let mut sim = Simulator::new(topo, 9);
        deploy_ppm_everywhere(&mut sim, 0.04, 31);
        let victim_node = sim.topo.stub_nodes()[0];
        let (collector, marks) = MarkCollectorAgent::new(victim_node);
        sim.add_agent(victim_node, Box::new(collector));
        let victim = Addr::new(victim_node, 1);
        sim.install_app(victim, Box::new(dtcs_netsim::SinkApp));
        // Two flooding sources, spoofed addresses.
        let sources = [sim.topo.stub_nodes()[5], sim.topo.stub_nodes()[10]];
        for (si, &src_node) in sources.iter().enumerate() {
            for k in 0..4000u64 {
                let at = SimTime(k * 1_000_000);
                sim.schedule(at, move |s| {
                    s.emit_now(
                        src_node,
                        PacketBuilder::new(
                            Addr((k as u32).wrapping_mul(2654435761)), // random spoof
                            victim,
                            Proto::Udp,
                            TrafficClass::AttackDirect,
                        )
                        .size(100)
                        .flow(si as u64),
                    );
                });
            }
        }
        sim.run_until(SimTime::from_secs(6));
        let m = marks.lock();
        assert!(m.inspected > 5000);
        let found = reconstruct_sources(&sim.topo, &routing, victim_node, &m, 0.02);
        for s in &sources {
            assert!(
                found.contains(s),
                "true source {s:?} must be reconstructed; found {found:?}"
            );
        }
    }
}
