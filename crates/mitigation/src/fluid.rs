//! Fluid-layer mirrors of the packet-path defenses.
//!
//! The fluid engine (`dtcs_netsim::fluid`) models steady background
//! traffic as rate aggregates, so a defense deployed at a node must be
//! able to police *rates*, not just individual packets. This module
//! provides the rate-side counterparts: the same placement policies
//! ([`crate::deploy`]) choose the nodes, and a [`FluidFilter`] at each
//! chosen node passes/cuts the fraction of each aggregate its packet-path
//! sibling would have passed/dropped.

use dtcs_netsim::{Addr, FluidFilter, NodeId, Proto, Simulator, TrafficClass};

use crate::deploy::{choose_nodes, Placement};

/// Rate-side ingress policing: attack-class aggregates are cut to zero at
/// the deploying node, everything else passes untouched.
///
/// This is the fluid twin of [`crate::ingress::IngressFilterAgent`]: the
/// packet-path agent identifies spoofed traffic by route consistency; in
/// the aggregate world that ground truth is the demand's class, so the
/// filter applies the idealized verdict directly. Packet-path modules at
/// the same node are unaffected — discrete traffic still gets the real
/// route-consistency check.
pub struct FluidIngress;

impl FluidFilter for FluidIngress {
    fn pass(&self, _src: Addr, _dst: Addr, _proto: Proto, _size: u32, class: TrafficClass) -> f64 {
        if class.is_attack() {
            0.0
        } else {
            1.0
        }
    }
}

/// Install [`FluidIngress`] filters on a fraction of ASes chosen by
/// `placement` (same node choice as [`crate::ingress::deploy_ingress`]
/// at the same seed); returns the deployed set. Requires
/// [`Simulator::enable_fluid`] first.
pub fn deploy_fluid_ingress(
    sim: &mut Simulator,
    fraction: f64,
    placement: Placement,
    seed: u64,
) -> Vec<NodeId> {
    let nodes = choose_nodes(&sim.topo, fraction, placement, seed);
    for &n in &nodes {
        sim.add_fluid_filter(n, Box::new(FluidIngress));
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{
        DropReason, FluidDemand, SimDuration, SimTime, SinkApp, Topology, TrafficClass,
    };

    #[test]
    fn fluid_ingress_cuts_attack_aggregates_only() {
        let mut sim = Simulator::new(Topology::line(4), 11);
        sim.enable_fluid(SimDuration::from_millis(50));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(SinkApp));
        sim.add_fluid_filter(NodeId(1), Box::new(FluidIngress));
        let mk = |class, host| FluidDemand {
            src: Addr::new(NodeId(0), host),
            dst: Addr::new(NodeId(3), 1),
            proto: dtcs_netsim::Proto::Udp,
            class,
            rate_bps: 4e6,
            pkt_size: 500,
            until: SimTime::from_secs(2),
        };
        sim.add_background_demand(mk(TrafficClass::AttackDirect, 1));
        sim.add_background_demand(mk(TrafficClass::Background, 2));
        sim.run_until(SimTime::from_secs(3));
        let atk = sim.stats.class(TrafficClass::AttackDirect);
        let bg = sim.stats.class(TrafficClass::Background);
        assert_eq!(atk.delivered_pkts, 0, "attack rate must be zeroed");
        assert!(atk.dropped_pkts > 0);
        assert_eq!(bg.delivered_pkts, bg.sent_pkts, "background untouched");
        let agg = sim.stats.drops_for_reason(DropReason::DeviceFilter);
        assert_eq!(agg.pkts, atk.dropped_pkts);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn deploy_matches_packet_side_placement() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 3);
        let mut sim = Simulator::new(topo, 1);
        sim.enable_fluid(SimDuration::from_millis(50));
        let fluid = deploy_fluid_ingress(&mut sim, 0.25, Placement::TopDegree, 5);
        let packet = choose_nodes(&sim.topo, 0.25, Placement::TopDegree, 5);
        assert_eq!(fluid, packet, "both engines police the same nodes");
    }
}
