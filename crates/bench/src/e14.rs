//! E14 — Leased mitigations under control-plane partitions
//! (partition duration × lease length).
//!
//! The paper's withdrawal story (Sec. 4.3: the user "may remove the
//! service at any time") silently assumes the control channel is up when
//! the removal happens. This sweep breaks that assumption: owner A
//! withdraws its service *while* a directed NMS → device partition is
//! swallowing every RemoveService command, so the devices keep running a
//! filter whose authority is gone — an orphan. The lease machinery is
//! the backstop under test: every install carries `lease_until`, devices
//! reap un-renewed slots autonomously, so no filter can outlive its
//! authority by more than one lease length even when the network never
//! delivers the removal. Owner B keeps its service deployed throughout
//! and pays the collateral price: its renewals are cut by the same
//! partition, its filters are reaped mid-partition once the lease runs
//! out, and the availability gap until renewal traffic re-installs them
//! is the robustness cost of short leases.
//!
//! Hard invariants, asserted per cell (not merely reported):
//! * **zero immortal installs** — at `withdraw + lease + ε` no device
//!   holds more than owner B's single rule, and at the horizon every
//!   device holds exactly one rule (B restored, A gone everywhere);
//! * **dwell bound** — no lease reap fires later than one lease length
//!   after the withdrawal instant.

use std::sync::{Arc, Mutex as StdMutex};

use parking_lot::Mutex;
use serde::Serialize;

use dtcs::control::{
    partition_by_provider, CatalogService, ControlPlane, ControlPlaneConfig, DeployScope,
    InternetNumberAuthority, UserId,
};
use dtcs::netsim::{
    CpFlightRecorder, FaultConfig, FaultPlane, NodeId, Partition, Prefix, SimDuration, SimTime,
    Simulator, Topology,
};

use crate::util::{control_metrics, f, fopt, wheel_health, Report, Table};

const SEED: u64 = 14;
/// Owner A withdraws at this instant; the partition opens 500 ms before
/// so the RemoveService fan-out runs straight into the cut.
const WITHDRAW_S: u64 = 10;
/// Anti-entropy sweep period (reinstall + bidirectional removal).
const RECONCILE_EVERY_S: u64 = 2;

#[derive(Serialize, Clone)]
struct CellRow {
    partition_s: f64,
    lease_s: u64,
    lease_reaps: u64,
    max_reap_dwell_s: Option<f64>,
    withdraw_removes: u64,
    sweep_removals: u64,
    renewals: u64,
    partition_dropped: u64,
    retransmits: u64,
    give_ups: u64,
    withdraw_latency_s: Option<f64>,
    cov_gap_device_s: f64,
}

struct CellOutcome {
    row: CellRow,
    stats: dtcs::netsim::Stats,
    cp: dtcs::control::CpStats,
}

/// Shared-handle control-trace recorder plus its 1-in-n sampling rate,
/// attached to one designated cell run (`--cp-trace`). Observation-only.
type CellTrace<'a> = Option<(&'a Arc<StdMutex<CpFlightRecorder>>, u64)>;

fn run_cell(
    partition_ms: u64,
    lease_s: u64,
    quick: bool,
    seed: u64,
    trace: CellTrace,
) -> CellOutcome {
    let (transit, stubs) = if quick { (2, 4) } else { (3, 6) };
    // Off the renewal grid on purpose: `run_until` is inclusive, so a
    // horizon that is a multiple of `renew_every` would process one last
    // renewal round whose acks can never land — an unterminated
    // transaction the trace-report gate would (rightly) flag.
    let horizon_ms: u64 = if quick { 34_650 } else { 44_650 };
    let topo = Topology::transit_stub_multihomed(transit, stubs, 0.2, seed);
    let mut sim = Simulator::new(topo, seed);
    let stub_nodes = sim.topo.stub_nodes();
    let mut authority = InternetNumberAuthority::new();
    let a_prefix = Prefix::of_node(stub_nodes[0]);
    let b_prefix = Prefix::of_node(stub_nodes[1]);
    authority.allocate(a_prefix, UserId(0xAA01));
    authority.allocate(b_prefix, UserId(0xAA02));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let nms_nodes: Vec<NodeId> = isps.iter().map(|i| i.nms_node).collect();
    let lease = SimDuration::from_secs(lease_s);
    let renew_every = SimDuration::from_millis((lease_s * 1000 / 4).max(500));
    let mut cp = ControlPlane::install_with(
        &mut sim,
        authority,
        0x5EC,
        tcsp_node,
        authority_node,
        isps,
        ControlPlaneConfig {
            reconcile_every: Some(SimDuration::from_secs(RECONCILE_EVERY_S)),
            leases: Some((lease, renew_every)),
            sweep_removals: true,
            cert_lifetime: None,
        },
    );
    // Owner A: deploys everywhere, then withdraws into the partition.
    let (_a_user, a_record) = cp.add_user_withdrawing(
        &mut sim,
        stub_nodes[0],
        vec![a_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        SimTime::from_secs(WITHDRAW_S),
        false,
        |a| a,
    );
    // Owner B: deploys everywhere and stays; its renewals ride the same
    // cut, so its filters measure the availability cost of the lease.
    let (_b_user, _b_record) = cp.add_user(
        &mut sim,
        stub_nodes[1],
        vec![b_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(150),
        false,
    );
    // Directed cut: NMS → managed devices only. Replies, TCSP traffic
    // and user traffic keep flowing — the removal commands (and renewal
    // installs) are exactly what the partition swallows.
    let device_nodes: Vec<NodeId> = cp
        .devices
        .keys()
        .copied()
        .filter(|n| !nms_nodes.contains(n) && *n != tcsp_node && *n != authority_node)
        .collect();
    let cut_from = SimTime::from_millis(WITHDRAW_S * 1000 - 500);
    sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed,
        drop_prob: 0.0,
        dup_prob: 0.0,
        jitter_max: SimDuration::ZERO,
        outages: Vec::new(),
        partitions: vec![Partition {
            src: nms_nodes.clone(),
            dst: device_nodes,
            from: cut_from,
            until: cut_from + SimDuration::from_millis(partition_ms),
        }],
    }));
    if let Some((rec, one_in)) = trace {
        sim.set_cp_trace_sink(Box::new(rec.clone()), one_in);
    }

    // Probe 1 — the dwell gate: at withdraw + lease + ε every device must
    // be down to at most owner B's single rule. A second rule here is a
    // filter that outlived its authority.
    let immortal: Arc<Mutex<Vec<(NodeId, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let devices = cp.devices.clone();
        let immortal = immortal.clone();
        let at = SimTime::from_millis(WITHDRAW_S * 1000 + lease_s * 1000 + 500);
        sim.schedule(at, move |_sim| {
            for (node, dev) in &devices {
                let rules = dev.lock().rule_count;
                if rules > 1 {
                    immortal.lock().push((*node, rules));
                }
            }
        });
    }
    // Probe 2 — owner B's availability gap: every 250 ms after the
    // withdrawal, each device holding zero rules is 250 ms of lost
    // coverage (before `withdraw + lease` a zero can only mean B's lease
    // ran out mid-partition; after it, A is gone and zero is exactly
    // "B not yet re-deployed").
    let gap_probes: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    {
        let mut at_ms = WITHDRAW_S * 1000 + 250;
        while at_ms <= horizon_ms {
            let devices = cp.devices.clone();
            let gap = gap_probes.clone();
            sim.schedule(SimTime::from_millis(at_ms), move |_sim| {
                let zeros = devices
                    .values()
                    .filter(|d| d.lock().rule_count == 0)
                    .count();
                *gap.lock() += zeros as u64;
            });
            at_ms += 250;
        }
    }
    sim.run_until(SimTime::from_millis(horizon_ms));
    if trace.is_some() {
        sim.take_cp_trace_sink();
    }
    crate::util::enforce_run_invariants("e14", &sim.stats);

    // -- Hard invariants ------------------------------------------------
    let immortal = immortal.lock().clone();
    assert!(
        immortal.is_empty(),
        "e14 partition={partition_ms}ms lease={lease_s}s: filters outlived their \
         authority past one lease length: {immortal:?}"
    );
    let n = sim.topo.n();
    assert_eq!(
        cp.total_rules(),
        n,
        "e14 partition={partition_ms}ms lease={lease_s}s: horizon state must be \
         exactly owner B everywhere (A fully withdrawn, B fully restored)"
    );
    for (node, dev) in &cp.devices {
        assert_eq!(
            dev.lock().rule_count,
            1,
            "e14: device {node:?} must hold exactly owner B's rule at horizon"
        );
    }
    let withdraw_at = SimTime::from_secs(WITHDRAW_S);
    let mut reaps = 0u64;
    let mut max_dwell_ns: Option<u64> = None;
    for dev in cp.devices.values() {
        let d = dev.lock();
        reaps += d.lease_reaps;
        if let Some(at) = d.last_reap_at {
            let dwell = at.saturating_since(withdraw_at).0;
            max_dwell_ns = Some(max_dwell_ns.map_or(dwell, |m| m.max(dwell)));
        }
    }
    if let Some(dwell) = max_dwell_ns {
        assert!(
            dwell <= (lease_s * 1000 + 500) * 1_000_000,
            "e14: a lease reap fired {dwell} ns after withdrawal — later than one \
             lease length ({lease_s} s)"
        );
    }

    let cs = cp.cp_stats.lock().clone();
    let row = CellRow {
        partition_s: partition_ms as f64 / 1000.0,
        lease_s,
        lease_reaps: reaps,
        max_reap_dwell_s: max_dwell_ns.map(|ns| ns as f64 / 1e9),
        withdraw_removes: cs.withdraw_removes,
        sweep_removals: cs.reconcile_removals,
        renewals: cs.lease_renewals,
        partition_dropped: sim.stats.cp_partition_dropped,
        retransmits: cs.retransmits,
        give_ups: cs.give_ups,
        withdraw_latency_s: a_record
            .lock()
            .withdraw_confirmed_at
            .map(|t| t.saturating_since(withdraw_at).0 as f64 / 1e9),
        cov_gap_device_s: *gap_probes.lock() as f64 * 0.25,
    };
    CellOutcome {
        row,
        stats: sim.stats,
        cp: cs,
    }
}

/// The (partition duration, lease length) grid shared by `run()` and the
/// sweep adapter. Durations in ms so sub-second cuts are expressible.
fn grid(quick: bool) -> (&'static [u64], &'static [u64]) {
    let partitions_ms: &[u64] = if quick {
        &[1_000, 8_000]
    } else {
        &[500, 4_000, 12_000]
    };
    let leases_s: &[u64] = if quick { &[2, 6] } else { &[2, 5, 10] };
    (partitions_ms, leases_s)
}

/// Sweep-grid adapter: one cell per (partition duration, lease length).
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let (partitions_ms, leases_s) = grid(quick);
        let mut cells = Vec::new();
        for &p_ms in partitions_ms {
            for &lease_s in leases_s {
                cells.push(crate::sweep::SweepCell {
                    experiment: "e14",
                    scenario: format!("partition={}s/lease={lease_s}s", p_ms as f64 / 1000.0),
                    base_seed: SEED,
                    run: Box::new(move |seed| {
                        let out = run_cell(p_ms, lease_s, quick, seed, None);
                        let r = &out.row;
                        let mut metrics = std::collections::BTreeMap::new();
                        metrics.insert("lease_reaps".to_string(), r.lease_reaps as f64);
                        if let Some(d) = r.max_reap_dwell_s {
                            metrics.insert("max_reap_dwell_s".to_string(), d);
                        }
                        metrics.insert("withdraw_removes".to_string(), r.withdraw_removes as f64);
                        metrics.insert("sweep_removals".to_string(), r.sweep_removals as f64);
                        metrics.insert("renewals".to_string(), r.renewals as f64);
                        metrics.insert("partition_dropped".to_string(), r.partition_dropped as f64);
                        metrics.insert("retransmits".to_string(), r.retransmits as f64);
                        if let Some(l) = r.withdraw_latency_s {
                            metrics.insert("withdraw_latency_s".to_string(), l);
                        }
                        metrics.insert("cov_gap_device_s".to_string(), r.cov_gap_device_s);
                        crate::sweep::CellRun {
                            metrics,
                            stats: out.stats,
                        }
                    }),
                });
            }
        }
        cells
    }
}

/// Run E14.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e14",
        "Leased mitigations under partition: orphan dwell vs renewal cost",
        "Sec. 4.3 withdrawal under adversarial channels",
    );
    let (partitions_ms, leases_s) = grid(quick);

    // `--cp-trace` designates the longest-partition shortest-lease cell —
    // the one where the lease, not the network, does the teardown — and
    // attaches a full (1-in-1) recorder to its normal grid run. Tracing
    // observes without perturbing; the report rows are byte-identical
    // either way.
    let traced_cell: Option<(u64, u64)> =
        opts.cp_trace
            .as_ref()
            .map(|_| if quick { (8_000, 2) } else { (12_000, 2) });
    let recorder = opts
        .cp_trace
        .as_ref()
        .map(|_| Arc::new(StdMutex::new(CpFlightRecorder::new(1 << 22))));

    let mut rows = Vec::new();
    let mut all_stats = Vec::new();
    for &p_ms in partitions_ms {
        for &lease_s in leases_s {
            let trace_here = traced_cell == Some((p_ms, lease_s));
            let trace = if trace_here {
                recorder.as_ref().map(|r| (r, 1))
            } else {
                None
            };
            let out = run_cell(p_ms, lease_s, quick, SEED, trace);
            if trace_here {
                let path = opts.cp_trace.as_ref().expect("traced_cell implies path");
                let rec = recorder
                    .as_ref()
                    .expect("traced_cell implies recorder")
                    .lock()
                    .expect("cp recorder mutex");
                std::fs::write(path, rec.export_jsonl_string()).expect("write cp trace");
                let snap = control_metrics(&out.stats, &out.cp);
                let mut json = snap.to_json_string();
                json.push('\n');
                std::fs::write(format!("{}.metrics.json", path.display()), json)
                    .expect("write metrics snapshot");
                std::fs::write(format!("{}.prom", path.display()), snap.to_prometheus())
                    .expect("write prometheus snapshot");
                // health, not note: notes serialise into the golden JSON.
                report.health(format!(
                    "cp-trace: {} events recorded ({} evicted) from cell \
                     partition={}s/lease={lease_s}s -> {}",
                    rec.recorded(),
                    rec.evicted(),
                    p_ms as f64 / 1000.0,
                    path.display(),
                ));
            }
            rows.push(out.row);
            all_stats.push(out.stats);
        }
    }

    let mut t = Table::new(
        "orphan-filter dwell, renewal traffic, and owner-B availability gap per \
         (partition duration, lease length) cell (withdraw at 10 s, cut opens 9.5 s, \
         renew every lease/4, 2 s reconcile sweep)",
        &[
            "partition_s",
            "lease_s",
            "reaps",
            "max_dwell_s",
            "wd_removes",
            "sweep_rm",
            "renewals",
            "part_drops",
            "retransmits",
            "give_ups",
            "wd_latency_s",
            "cov_gap_dev_s",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                f(r.partition_s),
                r.lease_s.to_string(),
                r.lease_reaps.to_string(),
                fopt(r.max_reap_dwell_s),
                r.withdraw_removes.to_string(),
                r.sweep_removals.to_string(),
                r.renewals.to_string(),
                r.partition_dropped.to_string(),
                r.retransmits.to_string(),
                r.give_ups.to_string(),
                fopt(r.withdraw_latency_s),
                f(r.cov_gap_device_s),
            ],
            r,
        );
    }
    report.table(t);

    report.note(
        "Short partitions let the RemoveService fan-out land after a few retries: \
         withdrawals complete over the network, reaps stay rare, and the availability \
         gap is near zero. Once the cut outlasts the remove retry budget the lease \
         becomes the only teardown path — every orphaned filter is reaped within one \
         lease length of the withdrawal (hard-asserted per cell; no install is ever \
         immortal). The same lease that bounds orphan dwell bills owner B for the \
         partition: leases shorter than the cut expire mid-partition, opening a \
         coverage gap until post-heal renewal traffic re-installs the service, while \
         long leases ride the cut out untouched at the price of a longer worst-case \
         orphan dwell. Renewal message volume scales inversely with lease length — \
         the dwell/traffic trade-off this grid maps.",
    );
    let (reaps, renewals): (u64, u64) = rows
        .iter()
        .fold((0, 0), |(a, b), r| (a + r.lease_reaps, b + r.renewals));
    report.health(format!(
        "leases over {} cells: {} orphan reaps, {} renewals, {} partition-swallowed \
         messages",
        rows.len(),
        reaps,
        renewals,
        all_stats
            .iter()
            .map(|s| s.cp_partition_dropped)
            .sum::<u64>(),
    ));
    report.health(wheel_health(all_stats.iter()));
    report
}
