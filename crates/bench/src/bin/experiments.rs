//! Experiment runner: regenerates every table/figure-equivalent of the
//! reproduced paper (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments [--quick] [--out DIR] [--trace FILE] [all | e1 e2 ...]
//!
//! `--trace FILE` asks trace-wired experiments (e2, e3) to capture a JSONL
//! packet flight record of one designated run into FILE (overwritten per
//! traced experiment). Golden report JSON is unaffected.

use std::path::PathBuf;

const INDEX: &[(&str, &str)] = &[
    (
        "e1",
        "Reflector-attack anatomy: amplification factors [Fig. 1 / Sec. 2.2]",
    ),
    (
        "e2",
        "Scheme comparison under reflector + direct attacks [Sec. 3 + 4.3]",
    ),
    (
        "e3",
        "Spoofed-packet survival vs deployment coverage [Sec. 3.2, Park & Lee]",
    ),
    (
        "e4",
        "Collateral damage of reactive filtering [Secs. 1 / 3.1 / 3.4]",
    ),
    (
        "e5",
        "Stop distance & wasted bandwidth vs TCS coverage [Secs. 4.3 / 6]",
    ),
    ("e6", "Device and rule-table scalability [Sec. 5.3]"),
    (
        "e7",
        "Control-plane latency: registration + deployment [Figs. 4-5 / Sec. 5.1]",
    ),
    ("e8", "Safety of delegated control [Sec. 4.5]"),
    ("e9", "Pushback vs reflector attacks [Sec. 3.1]"),
    (
        "e10",
        "Traceback accuracy + anomaly-reaction latency [Sec. 4.4]",
    ),
    (
        "e11",
        "Botnet recruitment dynamics and attack ramp [Sec. 2.1]",
    ),
    (
        "e12",
        "ISP incentives: attack bandwidth saved per provider [Sec. 4.6]",
    ),
    (
        "e13",
        "Control-plane fault sweep: loss × MTBF vs convergence [Sec. 5.1]",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, title) in INDEX {
            println!("{id:<5} {title}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    // Ids are the non-flag args minus any flag *values* (`--out`'s and
    // `--trace`'s operands must not be mistaken for experiment ids).
    let flag_values: Vec<&str> = [Some(&out_dir), trace.as_ref()]
        .into_iter()
        .flatten()
        .filter_map(|p| p.to_str())
        .collect();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !flag_values.contains(&a.as_str()))
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = dtcs_bench::ALL.iter().map(|s| s.to_string()).collect();
    }
    let opts = dtcs_bench::RunOpts { quick, trace };
    for id in &ids {
        match dtcs_bench::run_experiment(id, &opts) {
            Some(report) => {
                report.print();
                report.save(&out_dir);
            }
            None => eprintln!("unknown experiment id: {id} (known: {:?})", dtcs_bench::ALL),
        }
    }
}
