//! The discrete-event simulator.
//!
//! Single-threaded and deterministic: events are ordered by `(time, seq)`
//! where `seq` is a monotone tie-breaker, all randomness flows from one
//! seeded ChaCha8 stream, and agent/app callbacks interact with the engine
//! only through outbox buffers that are flushed in callback order.
//! Parallelism lives one level up — experiment sweeps run many independent
//! `Simulator` instances across threads with rayon (DESIGN.md §6).
//!
//! The event queue is a hierarchical timing wheel ([`crate::wheel`]) and
//! in-flight packets live in a generation-tagged slab arena
//! ([`crate::arena`]), so the steady-state hot path is allocation-free and
//! every queue operation is O(1) amortized (DESIGN.md §6.2).

use std::collections::BTreeMap;
use std::sync::Arc;

use rand_chacha::ChaCha8Rng;

use crate::addr::Addr;
use crate::agent::{AgentCtx, ControlMsg, NodeAgent, Outbox, Verdict};
use crate::app::{App, AppApi, Disposition};
use crate::arena::{Arena, Handle as PktHandle};
use crate::cp_trace::{CpMeta, CpTraceEvent, CpTraceSink, CpTracer, CpVerdict};
use crate::faults::FaultPlane;
use crate::fluid::{FluidDemand, FluidFilter, FluidLayer};
use crate::link::Admission;
use crate::node::{LinkId, NodeId};
use crate::packet::{Packet, PacketBuilder};
use crate::rng::seeded;
use crate::routing::Routing;
use crate::stats::{DropReason, Stats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{LinkUtilProbe, TraceEvent, TraceSink, Tracer};
use crate::wheel::TimingWheel;

/// A scheduled simulator callback.
type Call = Box<dyn FnOnce(&mut Simulator) + Send>;

enum EventKind {
    Arrive {
        at: NodeId,
        from: Option<LinkId>,
        /// Generation-tagged ticket into [`Simulator::arena`]. Index-based
        /// so the entry stays small — the `Packet` itself never moves
        /// during timing-wheel cascades — and so a freed packet cannot be
        /// silently resurrected: a stale ticket fails its tag check.
        pkt: PktHandle,
    },
    AgentTimer {
        node: NodeId,
        agent: usize,
        token: u64,
    },
    AppTimer {
        addr: Addr,
        token: u64,
    },
    ControlDeliver {
        to: NodeId,
        msg: ControlMsg,
    },
    Call(Call),
}

/// The simulator.
pub struct Simulator {
    /// The network graph (owned; link state lives inside).
    pub topo: Topology,
    /// Shortest-path forwarding tables.
    pub routing: Routing,
    /// Global measurement state.
    pub stats: Stats,
    agents: Vec<Vec<Box<dyn NodeAgent>>>,
    apps: BTreeMap<Addr, Box<dyn App>>,
    queue: TimingWheel<EventKind>,
    now: SimTime,
    seq: u64,
    next_packet_id: u64,
    rng: ChaCha8Rng,
    outbox: Outbox,
    app_timer_buf: Vec<(SimDuration, u64)>,
    /// In-flight packet store: every queued `Arrive` event owns exactly
    /// one live arena slot, released when the packet reaches a terminal
    /// event (delivery or drop). Slots are reused, so steady-state
    /// forwarding allocates nothing.
    arena: Arena<Packet>,
    /// Lifecycle tracing front-end (flight recorder / JSONL). Disabled by
    /// default; the hot path then pays a single `None` branch per gate
    /// (DESIGN.md §6.4).
    tracer: Tracer,
    /// Control-plane flight-recorder front-end (DESIGN.md §6.9): the
    /// symmetric facility for control transactions. Disabled by default;
    /// the control funnel then pays one `None` branch per push.
    cp_tracer: CpTracer,
    /// Optional per-link utilization sampler, driven by scheduled events.
    util_probe: Option<LinkUtilProbe>,
    /// Optional control-channel fault injector (drop / duplicate / jitter
    /// / outage windows). `None` costs one branch per control push and
    /// leaves event order untouched — the zero-fault path is byte-
    /// identical to a build without the feature.
    faults: Option<FaultPlane>,
    /// Fluid background-traffic engine (DESIGN.md §6.8). `None` keeps the
    /// simulator purely packet-level; the event stream is then
    /// byte-identical to builds predating the fluid layer.
    fluid: Option<FluidLayer>,
    /// Nodes pinned to the discrete engine even with the fluid layer on —
    /// attack sources, filtering devices, the victim — so the paper's
    /// observables still see real packets.
    fluid_packetized: Vec<bool>,
    started: bool,
    event_limit: u64,
}

impl Simulator {
    /// Build a simulator over a topology, computing routing tables.
    pub fn new(topo: Topology, seed: u64) -> Simulator {
        let routing = Routing::compute(&topo);
        let n = topo.n();
        Simulator {
            topo,
            routing,
            stats: Stats::new(),
            agents: (0..n).map(|_| Vec::new()).collect(),
            apps: BTreeMap::new(),
            queue: TimingWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_packet_id: 1,
            rng: seeded(seed),
            outbox: Outbox::default(),
            app_timer_buf: Vec::new(),
            arena: Arena::new(),
            tracer: Tracer::disabled(seed),
            cp_tracer: CpTracer::disabled(seed),
            util_probe: None,
            faults: None,
            fluid: None,
            fluid_packetized: vec![false; n],
            started: false,
            event_limit: u64::MAX,
        }
    }

    /// Install a trace sink recording lifecycle events for one packet in
    /// `one_in` (1 = every packet). The sampling salt derives from the
    /// simulator seed — never wall-clock — so the traced packet-id set is
    /// a pure function of `(seed, one_in)` and runs replay byte-for-byte.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>, one_in: u64) {
        self.tracer.enable(sink, one_in);
    }

    /// Remove and return the trace sink, disabling tracing.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.disable()
    }

    /// Is lifecycle tracing enabled?
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Install a control-plane trace sink recording lifecycle events for
    /// one control transaction in `one_in` (1 = every transaction). Like
    /// the packet tracer, the sampling salt derives from the simulator
    /// seed, so the traced transaction set is a pure function of
    /// `(seed, one_in)` and runs replay byte-for-byte. Events without a
    /// transaction key (sweeps, crashes, unkeyed sends) are always
    /// recorded, keeping a sampled trace an exact subset of the full one.
    pub fn set_cp_trace_sink(&mut self, sink: Box<dyn CpTraceSink>, one_in: u64) {
        self.cp_tracer.enable(sink, one_in);
    }

    /// Remove and return the control-plane trace sink, disabling tracing.
    pub fn take_cp_trace_sink(&mut self) -> Option<Box<dyn CpTraceSink>> {
        self.cp_tracer.disable()
    }

    /// Is control-plane tracing enabled?
    pub fn cp_trace_enabled(&self) -> bool {
        self.cp_tracer.enabled()
    }

    /// Sample per-link utilization every `cadence` from now until `until`
    /// (inclusive), replacing any existing probe. Samples ride the event
    /// queue, so they interleave deterministically with traffic and the
    /// probe cannot keep an otherwise-idle run alive past its horizon.
    pub fn enable_util_probe(&mut self, cadence: SimDuration, until: SimTime) {
        let mut probe = LinkUtilProbe::new(cadence, until);
        probe.baseline(&self.topo, self.now);
        let first = self.now + probe.cadence();
        self.util_probe = Some(probe);
        if first <= until {
            self.schedule(first, Simulator::util_probe_tick);
        }
    }

    /// The utilization probe and its snapshots, if one was enabled.
    pub fn util_probe(&self) -> Option<&LinkUtilProbe> {
        self.util_probe.as_ref()
    }

    fn util_probe_tick(&mut self) {
        let Some(mut probe) = self.util_probe.take() else {
            return;
        };
        probe.sample(&self.topo, self.now);
        let next = self.now + probe.cadence();
        let until = probe.until();
        self.util_probe = Some(probe);
        if next <= until {
            self.schedule(next, Simulator::util_probe_tick);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Turn on the fluid background-traffic layer with the given
    /// accounting tick (see [`crate::fluid`]). Idempotent — the first
    /// call's tick wins. Demands offered afterwards via
    /// [`Simulator::add_background_demand`] become fluid aggregates unless
    /// an endpoint is packetized.
    pub fn enable_fluid(&mut self, tick: SimDuration) {
        if self.fluid.is_none() {
            self.fluid = Some(FluidLayer::new(tick, self.now, self.routing.epoch()));
        }
    }

    /// Is the fluid layer enabled?
    pub fn fluid_enabled(&self) -> bool {
        self.fluid.is_some()
    }

    /// The fluid layer, for inspection (tests, benches, experiment
    /// metrics).
    pub fn fluid(&self) -> Option<&FluidLayer> {
        self.fluid.as_ref()
    }

    /// Pin `node` to the discrete packet engine: background demands
    /// touching it materialize as real packets instead of aggregates.
    /// This is the fluid/packet boundary — attack sources, filtering
    /// devices and the victim stay packetized so agent chains, module
    /// verdicts and traces observe genuine traffic.
    pub fn fluid_packetize(&mut self, node: NodeId) {
        self.fluid_packetized[node.0] = true;
    }

    /// Attach a rate-based filter to `node`'s fluid traffic (the fluid
    /// mirror of a packet-path module verdict). Requires
    /// [`Simulator::enable_fluid`] first.
    pub fn add_fluid_filter(&mut self, node: NodeId, filter: Box<dyn FluidFilter>) {
        self.fluid
            .as_mut()
            .expect("enable_fluid before add_fluid_filter")
            .add_filter(node, filter);
    }

    /// Offer a background traffic demand. With the fluid layer on and
    /// both endpoints outside the packetized set, it becomes a fluid
    /// aggregate; otherwise it materializes as a discrete constant-bit-
    /// rate packet stream with the same rate, size, class and deadline —
    /// scenarios read identically under either engine.
    pub fn add_background_demand(&mut self, d: FluidDemand) {
        let fluid_ok = self.fluid.is_some()
            && !self.fluid_packetized[d.src.node().0]
            && !self.fluid_packetized[d.dst.node().0];
        if fluid_ok {
            self.stats.fluid_aggregates += 1;
            let now = self.now;
            let layer = self.fluid.as_mut().expect("checked above");
            layer.add(&d, now);
            if !layer.armed {
                layer.armed = true;
                let at = now + layer.tick_len();
                self.schedule(at, Simulator::fluid_tick);
            }
        } else {
            if self.fluid.is_some() {
                self.stats.fluid_boundary_conversions += 1;
            }
            self.emit_cbr(d);
        }
    }

    fn fluid_tick(&mut self) {
        let Some(mut layer) = self.fluid.take() else {
            return;
        };
        let again = layer.run_tick(self.now, &mut self.topo, &self.routing, &mut self.stats);
        layer.armed = again;
        let next = self.now + layer.tick_len();
        self.fluid = Some(layer);
        if again {
            self.schedule(next, Simulator::fluid_tick);
        }
    }

    /// Discrete materialization of a background demand: one packet of
    /// `pkt_size` every `pkt_size * 8 / rate_bps` seconds until `until`.
    fn emit_cbr(&mut self, d: FluidDemand) {
        assert!(d.rate_bps > 0.0, "demand rate must be positive");
        assert!(d.pkt_size > 0, "demand packet size must be positive");
        let interval = SimDuration::from_secs_f64(d.pkt_size as f64 * 8.0 / d.rate_bps);
        let interval = interval.max(SimDuration::from_nanos(1));
        let flow = ((d.src.node().0 as u64) << 32) ^ d.dst.node().0 as u64;
        self.cbr_step(d, interval, flow);
    }

    fn cbr_step(&mut self, d: FluidDemand, interval: SimDuration, flow: u64) {
        if self.now >= d.until {
            return;
        }
        self.emit_now(
            d.src.node(),
            PacketBuilder::new(d.src, d.dst, d.proto, d.class)
                .size(d.pkt_size)
                .flow(flow),
        );
        let next = self.now + interval;
        if next < d.until {
            self.schedule(next, move |s| s.cbr_step(d, interval, flow));
        }
    }

    /// Cap total processed events (runaway guard for tests); the run stops
    /// once the cap is reached.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Attach an agent to a node's chain; returns its chain index.
    ///
    /// Must be called from scenario code or a scheduled [`Simulator::schedule`]
    /// callback — never from inside an agent/app callback.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn NodeAgent>) -> usize {
        let chain = &mut self.agents[node.0];
        chain.push(agent);
        chain.len() - 1
    }

    /// Install an application at an address. Replaces any existing app
    /// at that address (returned to the caller).
    pub fn install_app(&mut self, addr: Addr, app: Box<dyn App>) -> Option<Box<dyn App>> {
        assert!(
            (addr.node().0) < self.topo.n(),
            "address {addr:?} does not belong to a topology node"
        );
        self.apps.insert(addr, app)
    }

    /// Schedule an arbitrary callback at an absolute time. This is how
    /// scenario scripts stage mid-run reconfiguration (e.g. "deploy the TCS
    /// filter at t=20 s"). A time already in the past is clamped to the
    /// current instant (see [`Stats::past_events_clamped`]).
    pub fn schedule<F: FnOnce(&mut Simulator) + Send + 'static>(&mut self, at: SimTime, f: F) {
        self.push(at, EventKind::Call(Box::new(f)));
    }

    /// Fail or restore a link and repair routing (failure injection).
    /// In-flight packets already past the link are unaffected; packets
    /// offered to a down link are dropped as queue losses. Call from
    /// scenario code or a [`Simulator::schedule`] callback.
    ///
    /// Repair is incremental ([`Routing::apply_link_flip`]): only the
    /// destination trees the flip can affect are re-derived, the epoch is
    /// bumped, and a delta record lets epoch-keyed caches
    /// ([`crate::oracle::RouteOracle`]) evict just the damaged
    /// destinations instead of clearing wholesale. Redundant calls (link
    /// already in the requested state) change nothing and leave the epoch
    /// alone.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if self.topo.links[link.0].up == up {
            return;
        }
        self.topo.links[link.0].up = up;
        let outcome = self.routing.apply_link_flip(&self.topo, link);
        self.stats.route_link_flips += 1;
        self.stats.route_trees_recomputed += outcome.trees_recomputed as u64;
        if outcome.full {
            self.stats.route_full_recomputes += 1;
        }
    }

    /// Deliver a control message to a node's agents at an absolute time,
    /// from scenario code (e.g. staged device reconfiguration). `from`
    /// names the apparent sender node.
    pub fn deliver_control<T: std::any::Any + Send + Sync>(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        payload: T,
    ) {
        self.push_control(at, from, to, Arc::new(payload), None);
    }

    /// Install a control-channel fault injector. Crash windows in its
    /// schedule are turned into [`NodeAgent::on_crash`] calls at window
    /// start. Install before running; messages already queued bypass it.
    pub fn install_fault_plane(&mut self, plane: FaultPlane) {
        for (window, node, at) in plane.crash_windows() {
            self.schedule(at, move |sim| {
                sim.crash_node_with(node, Some(window as u64))
            });
        }
        self.faults = Some(plane);
    }

    /// Read access to the installed fault plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.faults.as_ref()
    }

    /// Crash `node` now: every agent on it loses volatile state via
    /// [`NodeAgent::on_crash`]. Called by the fault plane's crash
    /// schedule; public so scenarios can also crash nodes ad hoc.
    pub fn crash_node(&mut self, node: NodeId) {
        self.crash_node_with(node, None);
    }

    /// Crash with the fault-plane outage-window index that scheduled it
    /// (None for ad-hoc crashes), so control-trace crash events can be
    /// joined to the outage verdicts of the messages the window swallowed.
    fn crash_node_with(&mut self, node: NodeId, window: Option<u64>) {
        self.stats.node_crashes += 1;
        if self.cp_tracer.enabled() {
            self.cp_tracer.record(CpTraceEvent::Crash {
                t: self.now.as_nanos(),
                node,
                window,
            });
        }
        for idx in 0..self.agents[node.0].len() {
            self.with_agent(node, idx, |agent, ctx| agent.on_crash(ctx));
        }
    }

    /// The single funnel for control-message scheduling: every
    /// `ControlDeliver` event — scenario-injected, agent outbox, app
    /// outbox — passes through here, so the fault plane sees the complete
    /// channel, and so the control-plane flight recorder can pair every
    /// send with exactly one fault verdict. Without a fault plane or
    /// tracer this is exactly two `None` branches on top of the original
    /// push.
    fn push_control(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        payload: Arc<dyn std::any::Any + Send + Sync>,
        meta: Option<CpMeta>,
    ) {
        self.stats.cp_msgs += 1;
        let traced = self.cp_tracer.enabled();
        let t = self.now.as_nanos();
        if traced {
            self.cp_tracer
                .record(CpTraceEvent::Send { t, meta, from, to });
        }
        let deliver_at = at.max(self.now);
        let Some(faults) = self.faults.as_mut() else {
            if traced {
                self.cp_tracer.record(CpTraceEvent::Verdict {
                    t,
                    meta,
                    from,
                    to,
                    verdict: CpVerdict::Deliver {
                        deliver_ns: deliver_at.as_nanos(),
                        jitter_ns: 0,
                        dup_extra_ns: None,
                    },
                });
            }
            self.push(
                at,
                EventKind::ControlDeliver {
                    to,
                    msg: ControlMsg {
                        from,
                        payload,
                        meta,
                    },
                },
            );
            return;
        };
        // Outage windows: mute while the sender is down, deaf while the
        // receiver is down at delivery time.
        let window = faults
            .down_window(from, self.now)
            .or_else(|| faults.down_window(to, deliver_at));
        if let Some(w) = window {
            self.stats.cp_outage_dropped += 1;
            if traced {
                self.cp_tracer.record(CpTraceEvent::Verdict {
                    t,
                    meta,
                    from,
                    to,
                    verdict: CpVerdict::Outage {
                        window: Some(w as u64),
                    },
                });
            }
            return;
        }
        // Partition windows: a directed cut between the sender's and
        // receiver's node sets swallows the message at push time even
        // though both endpoints are up.
        if let Some(w) = faults.partition_window(from, to, self.now) {
            self.stats.cp_partition_dropped += 1;
            if traced {
                self.cp_tracer.record(CpTraceEvent::Verdict {
                    t,
                    meta,
                    from,
                    to,
                    verdict: CpVerdict::Partition { window: w as u64 },
                });
            }
            return;
        }
        let d = faults.decide(from, to);
        if d.drop {
            self.stats.cp_fault_dropped += 1;
            if traced {
                self.cp_tracer.record(CpTraceEvent::Verdict {
                    t,
                    meta,
                    from,
                    to,
                    verdict: CpVerdict::Drop,
                });
            }
            return;
        }
        if d.jitter > SimDuration::ZERO {
            self.stats.cp_fault_jittered += 1;
        }
        let jittered = deliver_at + d.jitter;
        if traced {
            self.cp_tracer.record(CpTraceEvent::Verdict {
                t,
                meta,
                from,
                to,
                verdict: CpVerdict::Deliver {
                    deliver_ns: jittered.as_nanos(),
                    jitter_ns: d.jitter.as_nanos(),
                    dup_extra_ns: d.duplicate.map(|e| e.as_nanos()),
                },
            });
        }
        self.push(
            jittered,
            EventKind::ControlDeliver {
                to,
                msg: ControlMsg {
                    from,
                    payload: payload.clone(),
                    meta,
                },
            },
        );
        if let Some(extra) = d.duplicate {
            self.stats.cp_fault_duplicated += 1;
            self.push(
                jittered + extra,
                EventKind::ControlDeliver {
                    to,
                    msg: ControlMsg {
                        from,
                        payload,
                        meta,
                    },
                },
            );
        }
    }

    /// Schedule a timer for an installed agent from scenario code (the
    /// in-simulation way for agents to bootstrap themselves is
    /// [`AgentCtx::set_timer`]; this is the outside-in equivalent, used to
    /// kick off protocol drivers like the TCS user agent).
    pub fn schedule_agent_timer(&mut self, node: NodeId, agent: usize, at: SimTime, token: u64) {
        self.push(at, EventKind::AgentTimer { node, agent, token });
    }

    /// Emit a packet from `node` right now. Counted as sent; traverses the
    /// node's agent chain like host-originated traffic.
    pub fn emit_now(&mut self, node: NodeId, builder: PacketBuilder) {
        let pkt = self.stamp(node, builder);
        let pkt = self.arena.alloc(pkt);
        self.push(
            self.now,
            EventKind::Arrive {
                at: node,
                from: None,
                pkt,
            },
        );
    }

    /// Run every event up to and including `until`, then set the clock to
    /// `until`. Calls app `on_start` hooks on first use.
    pub fn run_until(&mut self, until: SimTime) {
        self.ensure_started();
        while self.stats.events < self.event_limit {
            // The bounded pop never advances the wheel past `until`, so
            // pushes made after this run (all ≥ the new `now`) stay valid.
            let Some(entry) = self.queue.pop_next(until.as_nanos()) else {
                break;
            };
            self.now = SimTime::from_nanos(entry.time);
            self.stats.events += 1;
            self.dispatch(entry.kind);
        }
        if self.now < until {
            self.now = until;
        }
        self.sync_wheel_stats();
    }

    /// Run for a span from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.now + span;
        self.run_until(until);
    }

    /// Drain every remaining event (careful with self-sustaining workloads).
    pub fn run_to_idle(&mut self) {
        self.ensure_started();
        while self.stats.events < self.event_limit {
            let Some(entry) = self.queue.pop_next(u64::MAX) else {
                break;
            };
            self.now = SimTime::from_nanos(entry.time);
            self.stats.events += 1;
            self.dispatch(entry.kind);
        }
        self.sync_wheel_stats();
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Mirror the wheel's health counters into [`Stats`] so reports can
    /// read scheduler health without holding the queue. High-water marks
    /// merge by max; cascade moves are cumulative on the wheel side.
    fn sync_wheel_stats(&mut self) {
        self.stats.wheel_slot_occupancy_hwm = self
            .stats
            .wheel_slot_occupancy_hwm
            .max(self.queue.slot_depth_hwm() as u64);
        self.stats.wheel_len_hwm = self.stats.wheel_len_hwm.max(self.queue.len_hwm() as u64);
        self.stats.wheel_cascade_moves = self.queue.cascade_moves();
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Deterministic start order: BTreeMap iterates addresses ascending.
        let addrs: Vec<Addr> = self.apps.keys().copied().collect();
        for addr in addrs {
            self.with_app(addr, |app, api| {
                app.on_start(api);
                Disposition::Consumed
            });
        }
    }

    /// Enqueue an event. Events dated in the past — a module bug the old
    /// queue only caught with a `debug_assert` at pop time, silently
    /// rewinding the clock in release builds — are clamped to the current
    /// instant and counted in [`Stats::past_events_clamped`], preserving
    /// the engine's monotone-clock invariant in every build profile.
    ///
    /// Overflow audit: `seq` is a `u64` bumped once per event; even at
    /// 10⁹ events per wall-second it cannot wrap within ~584 years of
    /// compute, and the wheel's slot arithmetic is closed over the full
    /// `u64` tick range (see [`crate::wheel`]'s cascade-boundary tests).
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let time = if time < self.now {
            self.stats.past_events_clamped += 1;
            self.now
        } else {
            time
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time.as_nanos(), seq, kind);
    }

    fn alloc_pkt_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    fn stamp(&mut self, node: NodeId, builder: PacketBuilder) -> Packet {
        let mut pkt = builder.build(self.alloc_pkt_id(), node);
        pkt.sent_at = self.now;
        self.stats.record_sent(&pkt);
        if self.tracer.wants(pkt.id) {
            self.tracer.record(TraceEvent::Emit {
                t: self.now.as_nanos(),
                pkt: pkt.id,
                node,
                src: pkt.src,
                dst: pkt.dst,
                proto: pkt.proto,
                class: pkt.provenance.class,
                size: pkt.size,
                flow: pkt.flow,
            });
        }
        pkt
    }

    /// Emit the single authoritative `ModuleVerdict` trace event for a drop
    /// decided at `node`. `module` is the deciding agent's name, `"host"`
    /// for receiver overload, or `"engine"` for TTL/route/listener drops.
    /// Any staged verdict detail is consumed here (and discarded for
    /// unsampled packets).
    fn trace_module_drop(
        &mut self,
        node: NodeId,
        pkt: &Packet,
        module: &'static str,
        reason: DropReason,
    ) {
        let detail = self.tracer.take_detail();
        if !self.tracer.wants(pkt.id) {
            return;
        }
        self.tracer.record(TraceEvent::ModuleVerdict {
            t: self.now.as_nanos(),
            pkt: pkt.id,
            node,
            module,
            detail,
            reason,
            class: pkt.provenance.class,
            size: pkt.size,
            hops: pkt.hops,
        });
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrive { at, from, pkt } => self.handle_arrival(at, from, pkt),
            EventKind::AgentTimer { node, agent, token } => {
                self.with_agent(node, agent, |a, ctx| a.on_timer(ctx, token));
            }
            EventKind::AppTimer { addr, token } => {
                self.with_app(addr, |app, api| {
                    app.on_timer(api, token);
                    Disposition::Consumed
                });
            }
            EventKind::ControlDeliver { to, msg } => {
                let mut chain = std::mem::take(&mut self.agents[to.0]);
                for (i, agent) in chain.iter_mut().enumerate() {
                    let mut ctx = AgentCtx {
                        now: self.now,
                        node: to,
                        topo: &self.topo,
                        routing: &self.routing,
                        outbox: &mut self.outbox,
                        trace: &mut self.tracer,
                        cp_trace: &mut self.cp_tracer,
                    };
                    agent.on_control(&mut ctx, &msg);
                    self.flush_agent_outbox(to, i);
                }
                self.agents[to.0] = chain;
            }
            EventKind::Call(f) => f(self),
        }
    }

    fn handle_arrival(&mut self, at: NodeId, from: Option<LinkId>, handle: PktHandle) {
        // Work on a stack copy; the arena slot stays live and is either
        // refreshed (packet forwarded: same ticket rides into the next
        // hop's event) or freed (terminal delivery/drop).
        let mut pkt = self.arena.take(handle);

        // 1. Agent chain.
        let mut chain = std::mem::take(&mut self.agents[at.0]);
        let mut verdict = Verdict::Forward;
        let mut dropped_by: &'static str = "agent";
        for (i, agent) in chain.iter_mut().enumerate() {
            let mut ctx = AgentCtx {
                now: self.now,
                node: at,
                topo: &self.topo,
                routing: &self.routing,
                outbox: &mut self.outbox,
                trace: &mut self.tracer,
                cp_trace: &mut self.cp_tracer,
            };
            let v = agent.on_packet(&mut ctx, &mut pkt, from);
            self.flush_agent_outbox(at, i);
            if let Verdict::Drop(reason) = v {
                verdict = Verdict::Drop(reason);
                dropped_by = agent.name();
                break;
            }
            // A module may stage verdict detail and then forward; discard
            // it so it cannot leak onto a later verdict event.
            self.tracer.clear_detail();
        }
        self.agents[at.0] = chain;
        if let Verdict::Drop(reason) = verdict {
            self.trace_module_drop(at, &pkt, dropped_by, reason);
            self.stats.record_dropped(&pkt, reason);
            self.arena.free(handle);
            return;
        }

        // 2. Local delivery.
        if pkt.dst.node() == at {
            if self.apps.contains_key(&pkt.dst) {
                let now = self.now;
                let disposition = self.with_app(pkt.dst, |app, api| app.on_packet(api, &pkt));
                match disposition {
                    Disposition::Consumed => {
                        self.stats.record_delivered(now, at, &pkt);
                        if self.tracer.wants(pkt.id) {
                            self.tracer.record(TraceEvent::Deliver {
                                t: now.as_nanos(),
                                pkt: pkt.id,
                                node: at,
                                class: pkt.provenance.class,
                                size: pkt.size,
                                hops: pkt.hops,
                                latency: now.saturating_since(pkt.sent_at).as_nanos(),
                            });
                        }
                    }
                    Disposition::Overloaded => {
                        self.trace_module_drop(at, &pkt, "host", DropReason::HostOverload);
                        self.stats.record_dropped(&pkt, DropReason::HostOverload)
                    }
                }
            } else {
                self.trace_module_drop(at, &pkt, "engine", DropReason::NoListener);
                self.stats.record_dropped(&pkt, DropReason::NoListener);
            }
            self.arena.free(handle);
            return;
        }

        // 3. Forwarding.
        if pkt.ttl <= 1 {
            self.trace_module_drop(at, &pkt, "engine", DropReason::TtlExpired);
            self.stats.record_dropped(&pkt, DropReason::TtlExpired);
            self.arena.free(handle);
            return;
        }
        pkt.ttl -= 1;
        let Some(link) = self.routing.next_hop(at, pkt.dst.node()) else {
            self.trace_module_drop(at, &pkt, "engine", DropReason::NoRoute);
            self.stats.record_dropped(&pkt, DropReason::NoRoute);
            self.arena.free(handle);
            return;
        };
        let is_attack = pkt.provenance.class.is_attack();
        let (admission, wait, backlog) =
            self.topo.links[link.0].offer_observed(at, self.now, pkt.size, is_attack);
        match admission {
            Admission::Dropped => {
                if self.tracer.wants(pkt.id) {
                    self.tracer.record(TraceEvent::LinkDrop {
                        t: self.now.as_nanos(),
                        pkt: pkt.id,
                        link,
                        from: at,
                        backlog,
                        class: pkt.provenance.class,
                        size: pkt.size,
                        hops: pkt.hops,
                    });
                }
                self.stats.record_dropped(&pkt, DropReason::QueueOverflow);
                // Congestion observation hook (pushback).
                let mut chain = std::mem::take(&mut self.agents[at.0]);
                for (i, agent) in chain.iter_mut().enumerate() {
                    let mut ctx = AgentCtx {
                        now: self.now,
                        node: at,
                        topo: &self.topo,
                        routing: &self.routing,
                        outbox: &mut self.outbox,
                        trace: &mut self.tracer,
                        cp_trace: &mut self.cp_tracer,
                    };
                    agent.on_link_drop(&mut ctx, link, &pkt);
                    self.flush_agent_outbox(at, i);
                }
                self.agents[at.0] = chain;
                self.arena.free(handle);
            }
            Admission::Deliver(when) => {
                self.stats.hist.queue_delay_ns.record(wait.as_nanos());
                pkt.hops = pkt.hops.saturating_add(1);
                let next = self.topo.links[link.0].other(at);
                if self.tracer.wants(pkt.id) {
                    self.tracer.record(TraceEvent::LinkAdmit {
                        t: self.now.as_nanos(),
                        pkt: pkt.id,
                        link,
                        from: at,
                        to: next,
                        backlog,
                        arrive: when.as_nanos(),
                    });
                }
                // The ticket rides on into the next hop's event: the
                // per-hop path neither allocates nor frees.
                self.arena.store(handle, pkt);
                self.push(
                    when,
                    EventKind::Arrive {
                        at: next,
                        from: Some(link),
                        pkt: handle,
                    },
                );
            }
        }
    }

    /// Run one agent callback with a context, then flush its outbox.
    fn with_agent<F: FnOnce(&mut Box<dyn NodeAgent>, &mut AgentCtx<'_>)>(
        &mut self,
        node: NodeId,
        idx: usize,
        f: F,
    ) {
        let mut chain = std::mem::take(&mut self.agents[node.0]);
        if let Some(agent) = chain.get_mut(idx) {
            let mut ctx = AgentCtx {
                now: self.now,
                node,
                topo: &self.topo,
                routing: &self.routing,
                outbox: &mut self.outbox,
                trace: &mut self.tracer,
                cp_trace: &mut self.cp_tracer,
            };
            f(agent, &mut ctx);
            self.flush_agent_outbox(node, idx);
        }
        self.agents[node.0] = chain;
    }

    /// Run one app callback with an API, then flush its outbox.
    fn with_app<F: FnOnce(&mut Box<dyn App>, &mut AppApi<'_>) -> Disposition>(
        &mut self,
        addr: Addr,
        f: F,
    ) -> Disposition {
        let Some(mut app) = self.apps.remove(&addr) else {
            return Disposition::Consumed;
        };
        let node = addr.node();
        let mut api = AppApi {
            now: self.now,
            node,
            self_addr: addr,
            rng: &mut self.rng,
            outbox: &mut self.outbox,
            timers: &mut self.app_timer_buf,
        };
        let disposition = f(&mut app, &mut api);
        self.apps.insert(addr, app);
        self.flush_app_outbox(addr);
        disposition
    }

    fn flush_agent_outbox(&mut self, node: NodeId, agent_idx: usize) {
        if self.outbox.is_empty() {
            return;
        }
        // Move the buffers out wholesale (a pointer swap, not a copy),
        // convert their contents into events, and hand the — now empty but
        // still allocated — buffers back. Unlike `drain(..).collect()` this
        // costs no allocation per flush, and the hot agent path flushes
        // after every callback.
        let mut sends = std::mem::take(&mut self.outbox.sends);
        let mut timers = std::mem::take(&mut self.outbox.agent_timers);
        let mut controls = std::mem::take(&mut self.outbox.controls);
        for (delay, builder) in sends.drain(..) {
            let pkt = self.stamp(node, builder);
            let pkt = self.arena.alloc(pkt);
            self.push(
                self.now + delay,
                EventKind::Arrive {
                    at: node,
                    from: None,
                    pkt,
                },
            );
        }
        for (delay, token) in timers.drain(..) {
            self.push(
                self.now + delay,
                EventKind::AgentTimer {
                    node,
                    agent: agent_idx,
                    token,
                },
            );
        }
        for (delay, to, payload, meta) in controls.drain(..) {
            self.push_control(self.now + delay, node, to, payload, meta);
        }
        // Nothing refills the outbox while events are being pushed
        // (callbacks only run from `dispatch`), so restoring the drained
        // buffers cannot clobber pending entries.
        debug_assert!(self.outbox.is_empty());
        self.outbox.sends = sends;
        self.outbox.agent_timers = timers;
        self.outbox.controls = controls;
    }

    fn flush_app_outbox(&mut self, addr: Addr) {
        if self.outbox.is_empty() && self.app_timer_buf.is_empty() {
            return;
        }
        let node = addr.node();
        let mut sends = std::mem::take(&mut self.outbox.sends);
        let mut controls = std::mem::take(&mut self.outbox.controls);
        let mut timers = std::mem::take(&mut self.app_timer_buf);
        for (delay, builder) in sends.drain(..) {
            let pkt = self.stamp(node, builder);
            let pkt = self.arena.alloc(pkt);
            self.push(
                self.now + delay,
                EventKind::Arrive {
                    at: node,
                    from: None,
                    pkt,
                },
            );
        }
        // Apps do not send control messages, but tolerate it (delivered
        // as if from this node's agents).
        for (delay, to, payload, meta) in controls.drain(..) {
            self.push_control(self.now + delay, node, to, payload, meta);
        }
        for (delay, token) in timers.drain(..) {
            self.push(self.now + delay, EventKind::AppTimer { addr, token });
        }
        debug_assert!(self.outbox.is_empty() && self.app_timer_buf.is_empty());
        self.outbox.sends = sends;
        self.outbox.controls = controls;
        self.app_timer_buf = timers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Proto, TrafficClass};
    use crate::stats::DropReason;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    use std::sync::{Arc, Mutex};

    /// App counting deliveries into a shared atomic.
    struct Counter(Arc<AtomicU64>);
    impl App for Counter {
        fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
            self.0.fetch_add(1, AtomicOrdering::Relaxed);
            Disposition::Consumed
        }
    }

    fn udp(src: Addr, dst: Addr) -> PacketBuilder {
        PacketBuilder::new(src, dst, Proto::Udp, TrafficClass::Background).size(100)
    }

    #[test]
    fn end_to_end_delivery_on_line() {
        let topo = Topology::line(4);
        let mut sim = Simulator::new(topo, 1);
        let count = Arc::new(AtomicU64::new(0));
        let dst = Addr::new(NodeId(3), 1);
        sim.install_app(dst, Box::new(Counter(count.clone())));
        sim.emit_now(NodeId(0), udp(Addr::new(NodeId(0), 1), dst));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(count.load(AtomicOrdering::Relaxed), 1);
        let c = sim.stats.class(TrafficClass::Background);
        assert_eq!(c.sent_pkts, 1);
        assert_eq!(c.delivered_pkts, 1);
        assert_eq!(c.delivered_hops, 3);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn no_listener_is_counted() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        sim.emit_now(
            NodeId(0),
            udp(Addr::new(NodeId(0), 1), Addr::new(NodeId(1), 9)),
        );
        sim.run_until(SimTime::from_secs(1));
        let agg = sim.stats.drops_for_reason(DropReason::NoListener);
        assert_eq!(agg.pkts, 1);
    }

    #[test]
    fn ttl_expiry() {
        let topo = Topology::line(10);
        let mut sim = Simulator::new(topo, 1);
        let dst = Addr::new(NodeId(9), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        sim.emit_now(NodeId(0), udp(Addr::new(NodeId(0), 1), dst).ttl(3));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::TtlExpired).pkts, 1);
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 0);
    }

    struct SinkAppProbe;
    impl App for SinkAppProbe {
        fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
            Disposition::Consumed
        }
    }

    #[test]
    fn no_route_drop() {
        let mut topo = Topology::line(2);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let mut sim = Simulator::new(topo, 1);
        sim.emit_now(
            NodeId(0),
            udp(Addr::new(NodeId(0), 1), Addr::new(lonely, 1)),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::NoRoute).pkts, 1);
    }

    /// Agent dropping everything of a given protocol.
    struct ProtoBlock(Proto);
    impl NodeAgent for ProtoBlock {
        fn name(&self) -> &'static str {
            "proto-block"
        }
        fn on_packet(
            &mut self,
            _ctx: &mut AgentCtx<'_>,
            pkt: &mut Packet,
            _from: Option<LinkId>,
        ) -> Verdict {
            if pkt.proto == self.0 {
                Verdict::Drop(DropReason::DeviceFilter)
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn agent_can_drop() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        sim.add_agent(NodeId(1), Box::new(ProtoBlock(Proto::Udp)));
        let dst = Addr::new(NodeId(2), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        sim.emit_now(NodeId(0), udp(Addr::new(NodeId(0), 1), dst));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::DeviceFilter).pkts, 1);
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 0);
    }

    /// App replying to every packet (reflector shape).
    struct Echo;
    impl App for Echo {
        fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
            let reply = PacketBuilder::new(
                api.self_addr,
                pkt.src,
                Proto::IcmpEchoReply,
                TrafficClass::Background,
            )
            .size(pkt.size);
            api.send(reply);
            Disposition::Consumed
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        let client = Addr::new(NodeId(0), 1);
        let server = Addr::new(NodeId(2), 1);
        let count = Arc::new(AtomicU64::new(0));
        sim.install_app(client, Box::new(Counter(count.clone())));
        sim.install_app(server, Box::new(Echo));
        sim.emit_now(NodeId(0), udp(client, server));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(count.load(AtomicOrdering::Relaxed), 1, "reply came back");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let topo = Topology::barabasi_albert(60, 2, 0.1, 5);
            let mut sim = Simulator::new(topo, 99);
            let dst = Addr::new(NodeId(10), 1);
            sim.install_app(dst, Box::new(SinkAppProbe));
            for i in 0..50 {
                let src_node = NodeId(i % 60);
                sim.emit_now(src_node, udp(Addr::new(src_node, 1), dst).flow(i as u64));
            }
            sim.run_until(SimTime::from_secs(2));
            (
                sim.stats.class(TrafficClass::Background).delivered_pkts,
                sim.stats.events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scheduled_call_runs_at_time() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = flag.clone();
        sim.schedule(SimTime::from_millis(500), move |sim| {
            f2.store(sim.now().as_nanos(), AtomicOrdering::Relaxed);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            flag.load(AtomicOrdering::Relaxed),
            SimTime::from_millis(500).as_nanos()
        );
    }

    /// Regression for the past-event hazard: a callback scheduling another
    /// event dated before `now` must not rewind the clock (release builds
    /// used to process it at its stale timestamp); the event runs at the
    /// current instant and the clamp is counted.
    #[test]
    fn past_dated_event_is_clamped_not_rewound() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        sim.schedule(SimTime::from_millis(500), move |sim| {
            let s3 = s2.clone();
            // Dated 499 ms in the past relative to the running clock.
            sim.schedule(SimTime::from_millis(1), move |sim| {
                s3.store(sim.now().as_nanos(), AtomicOrdering::Relaxed);
            });
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            seen.load(AtomicOrdering::Relaxed),
            SimTime::from_millis(500).as_nanos(),
            "past-dated event must execute at the clamped (current) time"
        );
        assert_eq!(sim.stats.past_events_clamped, 1);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    /// Every terminal packet path must release its arena slot: after a
    /// workload with deliveries, agent drops, TTL expiries and no-route
    /// drops has fully drained, no packet may remain live.
    #[test]
    fn arena_drains_to_zero_live_packets() {
        let mut topo = Topology::line(6);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let mut sim = Simulator::new(topo, 7);
        sim.add_agent(NodeId(2), Box::new(ProtoBlock(Proto::TcpSyn)));
        let dst = Addr::new(NodeId(5), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        for i in 0..40u64 {
            let src = Addr::new(NodeId((i % 5) as usize), 1);
            // Mix delivered, filtered, TTL-expired and unroutable packets.
            let b = match i % 4 {
                0 => udp(src, dst),
                1 => PacketBuilder::new(src, dst, Proto::TcpSyn, TrafficClass::Background),
                2 => udp(src, dst).ttl(2),
                _ => udp(src, Addr::new(lonely, 1)),
            };
            sim.emit_now(src.node(), b.flow(i));
        }
        sim.run_to_idle();
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.arena.live(), 0, "leaked in-flight packet slots");
        sim.stats.check_conservation().unwrap();
    }

    /// Scheduled callbacks spread across several timing-wheel levels (1 ns
    /// to tens of minutes) must fire in exact chronological order.
    #[test]
    fn events_across_cascade_levels_fire_in_order() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Times straddling level boundaries of the 64-slot wheel.
        let times: Vec<u64> = vec![
            1,
            63,
            64,
            65,
            4_095,
            4_096,
            262_143,
            262_144,
            1 << 30,
            (1 << 36) + 17,
        ];
        // Schedule in scrambled order to exercise placement at all levels.
        for &t in times.iter().rev() {
            let o = order.clone();
            sim.schedule(SimTime::from_nanos(t), move |sim| {
                o.lock().unwrap().push(sim.now().as_nanos());
            });
        }
        sim.run_to_idle();
        assert_eq!(*order.lock().unwrap(), times);
    }

    /// Agent timer behaviour.
    struct TickAgent {
        ticks: Arc<AtomicU64>,
    }
    impl NodeAgent for TickAgent {
        fn name(&self) -> &'static str {
            "tick"
        }
        fn on_packet(
            &mut self,
            ctx: &mut AgentCtx<'_>,
            _pkt: &mut Packet,
            _from: Option<LinkId>,
        ) -> Verdict {
            ctx.set_timer(SimDuration::from_millis(10), 7);
            Verdict::Forward
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, token: u64) {
            assert_eq!(token, 7);
            self.ticks.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    #[test]
    fn agent_timers_fire() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        let ticks = Arc::new(AtomicU64::new(0));
        sim.add_agent(
            NodeId(0),
            Box::new(TickAgent {
                ticks: ticks.clone(),
            }),
        );
        sim.emit_now(
            NodeId(0),
            udp(Addr::new(NodeId(0), 1), Addr::new(NodeId(1), 1)),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(ticks.load(AtomicOrdering::Relaxed), 1);
    }

    use crate::trace::FlightRecorder;

    /// Shared mixed workload for trace tests: deliveries, agent drops and
    /// forwarding on a BA topology. Returns final stats + exported JSONL
    /// (empty string when tracing was off).
    fn traced_workload(seed: u64, one_in: Option<u64>) -> (Stats, String) {
        let topo = Topology::barabasi_albert(40, 2, 0.1, 5);
        let mut sim = Simulator::new(topo, seed);
        let rec = Arc::new(Mutex::new(FlightRecorder::new(1 << 16)));
        if let Some(n) = one_in {
            sim.set_trace_sink(Box::new(rec.clone()), n);
        }
        sim.add_agent(NodeId(1), Box::new(ProtoBlock(Proto::TcpSyn)));
        let dst = Addr::new(NodeId(1), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        for i in 0..200u64 {
            let src = NodeId((i % 40) as usize);
            let b = if i % 5 == 0 {
                PacketBuilder::new(
                    Addr::new(src, 1),
                    dst,
                    Proto::TcpSyn,
                    TrafficClass::AttackDirect,
                )
                .flow(i)
            } else {
                udp(Addr::new(src, 1), dst).flow(i)
            };
            sim.emit_now(src, b);
        }
        sim.run_to_idle();
        let jsonl = rec.lock().unwrap().export_jsonl_string();
        (sim.stats.clone(), jsonl)
    }

    #[test]
    fn trace_jsonl_is_byte_identical_across_runs() {
        let (_, a) = traced_workload(7, Some(1));
        let (_, b) = traced_workload(7, Some(1));
        assert!(!a.is_empty());
        assert_eq!(a, b, "fixed seed must reproduce the JSONL byte-for-byte");
        assert!(a.contains("\"kind\":\"emit\""));
        assert!(a.contains("\"kind\":\"link_admit\""));
        assert!(a.contains("\"kind\":\"deliver\""));
        assert!(a.contains("\"kind\":\"module_verdict\""));
        assert!(a.contains("\"module\":\"proto-block\""));
    }

    #[test]
    fn sampled_trace_is_subset_of_full() {
        let (_, full) = traced_workload(7, Some(1));
        let (_, sampled) = traced_workload(7, Some(4));
        let full_lines: std::collections::HashSet<&str> = full.lines().collect();
        let sampled_lines: Vec<&str> = sampled.lines().collect();
        assert!(!sampled_lines.is_empty());
        assert!(sampled_lines.len() < full.lines().count());
        for line in sampled_lines {
            assert!(
                full_lines.contains(line),
                "sampled event missing from full trace: {line}"
            );
        }
    }

    #[test]
    fn tracing_is_observation_only() {
        let (off, _) = traced_workload(7, None);
        let (on, _) = traced_workload(7, Some(1));
        assert_eq!(off.events, on.events, "tracing must not add events");
        for c in crate::stats::ALL_CLASSES {
            assert_eq!(off.class(c).sent_pkts, on.class(c).sent_pkts);
            assert_eq!(off.class(c).delivered_pkts, on.class(c).delivered_pkts);
            assert_eq!(off.class(c).dropped_pkts, on.class(c).dropped_pkts);
        }
    }

    #[test]
    fn full_trace_reconciles_with_stats() {
        let (stats, jsonl) = traced_workload(11, Some(1));
        let delivered: u64 = jsonl
            .lines()
            .filter(|l| l.contains("\"kind\":\"deliver\""))
            .count() as u64;
        let total_delivered: u64 = stats.per_class.iter().map(|c| c.delivered_pkts).sum();
        assert_eq!(delivered, total_delivered);
        let emitted: u64 = jsonl
            .lines()
            .filter(|l| l.contains("\"kind\":\"emit\""))
            .count() as u64;
        let total_sent: u64 = stats.per_class.iter().map(|c| c.sent_pkts).sum();
        assert_eq!(emitted, total_sent);
        let dropped_events: u64 = jsonl
            .lines()
            .filter(|l| {
                l.contains("\"kind\":\"link_drop\"") || l.contains("\"kind\":\"module_verdict\"")
            })
            .count() as u64;
        let total_dropped: u64 = stats.per_class.iter().map(|c| c.dropped_pkts).sum();
        assert_eq!(dropped_events, total_dropped);
    }

    /// Agent staging trace detail for its verdicts.
    struct DetailBlock;
    impl NodeAgent for DetailBlock {
        fn name(&self) -> &'static str {
            "detail-block"
        }
        fn on_packet(
            &mut self,
            ctx: &mut AgentCtx<'_>,
            pkt: &mut Packet,
            _from: Option<LinkId>,
        ) -> Verdict {
            if ctx.trace_wants(pkt) {
                ctx.trace_verdict_detail("stage=udp");
            }
            if pkt.proto == Proto::Udp {
                Verdict::Drop(DropReason::DeviceFilter)
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn verdict_detail_attaches_and_does_not_leak() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        let rec = Arc::new(Mutex::new(FlightRecorder::new(64)));
        sim.set_trace_sink(Box::new(rec.clone()), 1);
        sim.add_agent(NodeId(1), Box::new(DetailBlock));
        sim.add_agent(NodeId(1), Box::new(ProtoBlock(Proto::TcpSyn)));
        let dst = Addr::new(NodeId(2), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        // Udp: dropped by detail-block, with detail.
        sim.emit_now(NodeId(0), udp(Addr::new(NodeId(0), 1), dst));
        // TcpSyn: detail-block stages then forwards; proto-block drops.
        // The staged detail must have been discarded in between.
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                dst,
                Proto::TcpSyn,
                TrafficClass::Background,
            ),
        );
        sim.run_to_idle();
        let jsonl = rec.lock().unwrap().export_jsonl_string();
        let verdicts: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"kind\":\"module_verdict\""))
            .collect();
        assert_eq!(verdicts.len(), 2);
        let detail_line = verdicts
            .iter()
            .find(|l| l.contains("\"module\":\"detail-block\""))
            .unwrap();
        assert!(detail_line.contains("\"detail\":\"stage=udp\""));
        let plain_line = verdicts
            .iter()
            .find(|l| l.contains("\"module\":\"proto-block\""))
            .unwrap();
        assert!(
            !plain_line.contains("\"detail\""),
            "stale staged detail leaked onto a later verdict: {plain_line}"
        );
    }

    #[test]
    fn util_probe_samples_on_cadence_and_stops() {
        let topo = Topology::line(4);
        let mut sim = Simulator::new(topo, 1);
        let dst = Addr::new(NodeId(3), 1);
        sim.install_app(dst, Box::new(SinkAppProbe));
        sim.enable_util_probe(SimDuration::from_millis(100), SimTime::from_secs(1));
        for i in 0..50u64 {
            sim.emit_now(NodeId(0), udp(Addr::new(NodeId(0), 1), dst).flow(i));
        }
        sim.run_to_idle();
        assert_eq!(
            sim.pending_events(),
            0,
            "probe must not keep the run alive past its horizon"
        );
        let probe = sim.util_probe().unwrap();
        assert_eq!(
            probe.snapshots().len(),
            10,
            "one sample per 100 ms up to 1 s"
        );
        assert_eq!(probe.snapshots()[0].t, SimTime::from_millis(100).as_nanos());
        assert_eq!(probe.snapshots()[9].t, SimTime::from_secs(1).as_nanos());
        assert!(probe.peak_util() > 0.0);
        // Windowed byte deltas must sum to the cumulative link counters.
        let sampled: u64 = probe
            .snapshots()
            .iter()
            .flat_map(|s| s.dirs.iter())
            .map(|d| d.bytes)
            .sum();
        let cumulative: u64 = sim
            .topo
            .links
            .iter()
            .flat_map(|l| l.dirs.iter())
            .map(|d| d.bytes_sent)
            .sum();
        assert_eq!(
            sampled, cumulative,
            "all traffic finished inside the probe window"
        );
    }

    #[test]
    fn event_limit_stops_runaway() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 1);
        // Self-perpetuating echo pair.
        let a = Addr::new(NodeId(0), 1);
        let b = Addr::new(NodeId(1), 1);
        sim.install_app(a, Box::new(Echo));
        sim.install_app(b, Box::new(Echo));
        sim.emit_now(NodeId(0), udp(a, b));
        sim.set_event_limit(100);
        sim.run_until(SimTime::from_secs(3600));
        assert!(sim.stats.events <= 100);
    }

    /// Counts control deliveries and crashes; resends nothing.
    struct CtrlProbe {
        delivered: Arc<AtomicU64>,
        crashes: Arc<AtomicU64>,
    }
    impl NodeAgent for CtrlProbe {
        fn name(&self) -> &'static str {
            "ctrl-probe"
        }
        fn on_packet(
            &mut self,
            _ctx: &mut AgentCtx<'_>,
            _pkt: &mut Packet,
            _from: Option<LinkId>,
        ) -> Verdict {
            Verdict::Forward
        }
        fn on_control(&mut self, _ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
            if msg.get::<u32>().is_some() {
                self.delivered.fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
        fn on_crash(&mut self, _ctx: &mut AgentCtx<'_>) {
            self.crashes.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    fn ctrl_probe_sim(
        plane: Option<crate::faults::FaultPlane>,
    ) -> (Simulator, Arc<AtomicU64>, Arc<AtomicU64>) {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        let delivered = Arc::new(AtomicU64::new(0));
        let crashes = Arc::new(AtomicU64::new(0));
        sim.add_agent(
            NodeId(2),
            Box::new(CtrlProbe {
                delivered: delivered.clone(),
                crashes: crashes.clone(),
            }),
        );
        if let Some(p) = plane {
            sim.install_fault_plane(p);
        }
        for i in 0..200u64 {
            sim.deliver_control(SimTime::from_millis(i), NodeId(0), NodeId(2), 7u32);
        }
        (sim, delivered, crashes)
    }

    #[test]
    fn fault_plane_drops_and_duplicates_deterministically() {
        use crate::faults::{FaultConfig, FaultPlane};
        let cfg = FaultConfig {
            seed: 42,
            drop_prob: 0.25,
            dup_prob: 0.25,
            jitter_max: SimDuration::from_millis(3),
            ..FaultConfig::default()
        };
        let run = || {
            let (mut sim, delivered, _) = ctrl_probe_sim(Some(FaultPlane::new(cfg.clone())));
            sim.run_until(SimTime::from_secs(1));
            (
                delivered.load(AtomicOrdering::Relaxed),
                sim.stats.cp_fault_dropped,
                sim.stats.cp_fault_duplicated,
                sim.stats.cp_fault_jittered,
            )
        };
        let (d1, drop1, dup1, jit1) = run();
        let (d2, drop2, dup2, jit2) = run();
        assert_eq!((d1, drop1, dup1, jit1), (d2, drop2, dup2, jit2));
        assert!(drop1 > 0 && dup1 > 0 && jit1 > 0, "faults exercised");
        // Channel conservation: every push is delivered, dropped, or
        // delivered twice.
        assert_eq!(d1, 200 - drop1 + dup1);
    }

    #[test]
    fn disabled_fault_plane_changes_nothing() {
        let (mut sim, delivered, _) = ctrl_probe_sim(None);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(delivered.load(AtomicOrdering::Relaxed), 200);
        assert_eq!(sim.stats.cp_msgs, 200);
        assert_eq!(sim.stats.cp_fault_dropped, 0);
        assert_eq!(sim.stats.cp_outage_dropped, 0);
    }

    #[test]
    fn outage_window_swallows_messages_and_crash_fires() {
        use crate::faults::{FaultConfig, FaultPlane, Outage};
        let plane = FaultPlane::new(FaultConfig {
            outages: vec![Outage {
                node: NodeId(2),
                from: SimTime::from_millis(50),
                until: SimTime::from_millis(100),
                crash: true,
            }],
            ..FaultConfig::default()
        });
        let (mut sim, delivered, crashes) = ctrl_probe_sim(Some(plane));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(crashes.load(AtomicOrdering::Relaxed), 1);
        assert_eq!(sim.stats.node_crashes, 1);
        // Sends at t ∈ [50ms, 100ms) vanish: 50 of the 200.
        assert_eq!(sim.stats.cp_outage_dropped, 50);
        assert_eq!(delivered.load(AtomicOrdering::Relaxed), 150);
    }

    /// Full control-plane trace over a faulty channel: byte-identical
    /// across runs, one verdict per send, and event counts reconciling
    /// exactly with the engine's `cp_*` counters.
    #[test]
    fn cp_trace_pairs_every_send_with_a_verdict() {
        use crate::cp_trace::CpFlightRecorder;
        use crate::faults::{FaultConfig, FaultPlane, Outage};
        let run = || {
            let plane = FaultPlane::new(FaultConfig {
                seed: 42,
                drop_prob: 0.2,
                dup_prob: 0.2,
                jitter_max: SimDuration::from_millis(3),
                outages: vec![Outage {
                    node: NodeId(2),
                    from: SimTime::from_millis(50),
                    until: SimTime::from_millis(100),
                    crash: true,
                }],
                partitions: Vec::new(),
            });
            let topo = Topology::line(3);
            let mut sim = Simulator::new(topo, 1);
            let rec = Arc::new(Mutex::new(CpFlightRecorder::new(1 << 12)));
            sim.set_cp_trace_sink(Box::new(rec.clone()), 1);
            let delivered = Arc::new(AtomicU64::new(0));
            sim.add_agent(
                NodeId(2),
                Box::new(CtrlProbe {
                    delivered,
                    crashes: Arc::new(AtomicU64::new(0)),
                }),
            );
            sim.install_fault_plane(plane);
            for i in 0..200u64 {
                sim.deliver_control(SimTime::from_millis(i), NodeId(0), NodeId(2), 7u32);
            }
            sim.run_until(SimTime::from_secs(1));
            let jsonl = rec.lock().unwrap().export_jsonl_string();
            (sim.stats.clone(), jsonl)
        };
        let (stats, a) = run();
        let (_, b) = run();
        assert_eq!(a, b, "fixed seed must reproduce the JSONL byte-for-byte");
        let count = |needle: &str| a.lines().filter(|l| l.contains(needle)).count() as u64;
        assert_eq!(count("\"kind\":\"send\""), stats.cp_msgs);
        assert_eq!(count("\"kind\":\"verdict\""), stats.cp_msgs);
        assert_eq!(count("\"kind\":\"crash\""), stats.node_crashes);
        assert_eq!(count("\"outcome\":\"drop\""), stats.cp_fault_dropped);
        assert_eq!(count("\"outcome\":\"outage\""), stats.cp_outage_dropped);
        assert_eq!(count("\"dup_extra\":"), stats.cp_fault_duplicated);
        // Scheduled crashes carry their outage-window index.
        assert!(a.contains("\"kind\":\"crash\",\"node\":2,\"window\":0"));
    }

    /// Control tracing must not change what the simulation does.
    #[test]
    fn cp_tracing_is_observation_only() {
        use crate::cp_trace::CpFlightRecorder;
        use crate::faults::{FaultConfig, FaultPlane};
        let run = |trace: bool| {
            let plane = FaultPlane::new(FaultConfig {
                seed: 9,
                drop_prob: 0.25,
                dup_prob: 0.25,
                jitter_max: SimDuration::from_millis(3),
                ..FaultConfig::default()
            });
            let (mut sim, delivered, _) = ctrl_probe_sim(Some(plane));
            if trace {
                let rec = Arc::new(Mutex::new(CpFlightRecorder::new(1 << 12)));
                sim.set_cp_trace_sink(Box::new(rec), 1);
            }
            sim.run_until(SimTime::from_secs(1));
            (sim.stats.events, delivered.load(AtomicOrdering::Relaxed))
        };
        assert_eq!(run(false), run(true));
    }
}
