//! Fluid background-traffic layer: flow aggregates with closed-form link
//! admission (DESIGN.md §6.8).
//!
//! Steady background traffic does not need per-packet wheel events to be
//! measured faithfully — it needs its *rates* routed, filtered and
//! admitted. This module models each background demand as one **aggregate**
//! — a rate per (src, dst, path) stored in struct-of-arrays form — and
//! replaces the per-packet inner loop with a per-tick flat array fold:
//!
//! 1. **Path cache, epoch-subscribed.** Every aggregate caches its
//!    forwarding path as a flat run of link-direction ids. Paths are
//!    re-resolved only when [`crate::routing::Routing::epoch`] moves, and
//!    then only for the destinations named by
//!    [`crate::routing::Routing::dsts_invalidated_since`] — the same
//!    delta-history subscription the [`crate::oracle::RouteOracle`] uses —
//!    or for everything when the delta history has been outrun. Filter
//!    changes bump a separate filter epoch with the same contract.
//! 2. **Closed-form admission.** Per (link-direction, tick), the offered
//!    rate is the sum over aggregates whose cached path crosses it, thinned
//!    by upstream admission; the admitted fraction is
//!    `min(1, available/offered)` — proportional share, iterated a fixed
//!    small number of rounds so upstream thinning settles. Available
//!    capacity is the direction's *residual* after the discrete packet
//!    engine's virtual-queue state ([`crate::link::LinkDir::next_free`]),
//!    which is also advanced by the admitted fluid bytes — the two engines
//!    share one capacity model in both directions.
//! 3. **Exact conservation at the boundary.** All rate accounting runs in
//!    f64 byte accumulators, but [`crate::stats::Stats`] only ever sees
//!    whole packets derived by *flooring cumulative* counters
//!    (`floor(delivered) + floor(filtered) + floor(congested) <=
//!    floor(sent)` holds for any reals with `d + f + c <= s`), so the
//!    engine-wide `delivered + dropped <= sent` gate stays exact with the
//!    fluid layer on.
//!
//! Discrete packets survive where the paper's observables live — attack
//! sources, filtering devices and the victim. The [`crate::sim::Simulator`]
//! keeps a *packetized* node set; demands touching it materialize as
//! discrete constant-bit-rate emitters instead of aggregates (counted in
//! [`crate::stats::Stats::fluid_boundary_conversions`]), so those packets
//! still traverse agent chains, produce module verdicts and trace events.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::node::NodeId;
use crate::packet::{Proto, TrafficClass};
use crate::routing::Routing;
use crate::stats::{class_index, DropReason, Stats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Admission-settling rounds per tick: round `k` recomputes each
/// direction's offered rate using round `k-1`'s upstream admitted
/// fractions. Two rounds plus the accounting pass settle chains of
/// bottlenecks to well under the fluid/packet equivalence tolerance.
const SETTLE_ROUNDS: usize = 2;

/// A rate-based filter applied to fluid aggregates at a node.
///
/// The fluid mirror of a packet-path module verdict: instead of judging
/// one packet, it returns the fraction of an aggregate's rate that may
/// continue (`1.0` = pass untouched, `0.0` = drop the aggregate here).
/// Filtered-off rate is charged to the aggregate's class as
/// [`DropReason::DeviceFilter`] drops at this node's hop distance.
pub trait FluidFilter: Send {
    /// Fraction of the aggregate `(src, dst, proto, size, class)` passed.
    /// Must return a value in `[0, 1]`; out-of-range values are clamped.
    fn pass(&self, src: Addr, dst: Addr, proto: Proto, size: u32, class: TrafficClass) -> f64;
}

/// One background traffic demand, before routing decides whether it lives
/// as a fluid aggregate or as discrete constant-bit-rate packets (see
/// [`crate::sim::Simulator::add_background_demand`]).
#[derive(Clone, Copy, Debug)]
pub struct FluidDemand {
    /// Source address (host granularity, like any packet).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Protocol the equivalent packets would carry.
    pub proto: Proto,
    /// Ground-truth traffic class charged in [`Stats`].
    pub class: TrafficClass,
    /// Offered rate in bits per second.
    pub rate_bps: f64,
    /// Size of the equivalent packets, bytes (also the quantum for the
    /// cumulative-floor packet accounting).
    pub pkt_size: u32,
    /// The demand stops offering traffic at this instant.
    pub until: SimTime,
}

/// The fluid traffic engine: aggregates in SoA form plus the per-tick
/// admission scratch. Owned by the simulator; ticks ride the event queue.
pub struct FluidLayer {
    tick: SimDuration,
    last_tick_at: SimTime,
    /// Is a tick event currently scheduled? (Re-armed by demand adds.)
    pub(crate) armed: bool,

    // --- aggregate columns (SoA) --------------------------------------
    src: Vec<Addr>,
    dst: Vec<Addr>,
    proto: Vec<Proto>,
    class: Vec<TrafficClass>,
    rate_bps: Vec<f64>,
    pkt_size: Vec<u32>,
    added_at: Vec<SimTime>,
    until: Vec<SimTime>,
    has_route: Vec<bool>,
    resolved: Vec<bool>,

    // --- cached paths (flat arena, rebuilt on invalidation) -----------
    path_off: Vec<u32>,
    path_len: Vec<u32>,
    /// Link-direction ids (`link.0 * 2 + dir_index`), path order.
    path_dirs: Vec<u32>,
    /// Forwarding node entering each dir (same indexing as `path_dirs`).
    path_nodes: Vec<u32>,

    // --- cached filter stops per aggregate (flat arena) ---------------
    fstep_off: Vec<u32>,
    fstep_len: Vec<u32>,
    /// Hop position of a filter stop (0 = at the source node; `path_len`
    /// = at the destination node, after the last link).
    fstep_pos: Vec<u32>,
    fstep_pass: Vec<f64>,

    // --- cumulative byte accounting (reported via floors) --------------
    cum_sent: Vec<f64>,
    cum_deliv: Vec<f64>,
    cum_fdrop: Vec<f64>,
    cum_fdrop_hops: Vec<f64>,
    cum_cdrop_hops: Vec<f64>,
    rep_sent: Vec<u64>,
    rep_deliv: Vec<u64>,
    rep_fdrop: Vec<u64>,
    rep_cdrop: Vec<u64>,
    rep_fdrop_hops: Vec<u64>,
    rep_cdrop_hops: Vec<u64>,

    // --- epochs & filters ----------------------------------------------
    route_epoch: u64,
    filters_dirty: bool,
    filters: Vec<Box<dyn FluidFilter>>,
    filters_at: HashMap<usize, Vec<usize>>,

    // --- per-(link, dir) scratch, dense but sparsely reset -------------
    offered: Vec<f64>,
    frac: Vec<f64>,
    avail: Vec<f64>,
    seen: Vec<bool>,
    touched: Vec<u32>,
    /// Fractional fluid bytes not yet folded into `LinkDir::bytes_sent`.
    dir_carry: Vec<f64>,
}

impl FluidLayer {
    /// Fresh layer ticking every `tick`, starting its first accounting
    /// window at `now` against routing `epoch`.
    pub(crate) fn new(tick: SimDuration, now: SimTime, epoch: u64) -> FluidLayer {
        assert!(tick > SimDuration::ZERO, "fluid tick must be positive");
        FluidLayer {
            tick,
            last_tick_at: now,
            armed: false,
            src: Vec::new(),
            dst: Vec::new(),
            proto: Vec::new(),
            class: Vec::new(),
            rate_bps: Vec::new(),
            pkt_size: Vec::new(),
            added_at: Vec::new(),
            until: Vec::new(),
            has_route: Vec::new(),
            resolved: Vec::new(),
            path_off: Vec::new(),
            path_len: Vec::new(),
            path_dirs: Vec::new(),
            path_nodes: Vec::new(),
            fstep_off: Vec::new(),
            fstep_len: Vec::new(),
            fstep_pos: Vec::new(),
            fstep_pass: Vec::new(),
            cum_sent: Vec::new(),
            cum_deliv: Vec::new(),
            cum_fdrop: Vec::new(),
            cum_fdrop_hops: Vec::new(),
            cum_cdrop_hops: Vec::new(),
            rep_sent: Vec::new(),
            rep_deliv: Vec::new(),
            rep_fdrop: Vec::new(),
            rep_cdrop: Vec::new(),
            rep_fdrop_hops: Vec::new(),
            rep_cdrop_hops: Vec::new(),
            route_epoch: epoch,
            filters_dirty: false,
            filters: Vec::new(),
            filters_at: HashMap::new(),
            offered: Vec::new(),
            frac: Vec::new(),
            avail: Vec::new(),
            seen: Vec::new(),
            touched: Vec::new(),
            dir_carry: Vec::new(),
        }
    }

    /// The tick interval.
    pub fn tick_len(&self) -> SimDuration {
        self.tick
    }

    /// Number of aggregates installed (active or expired).
    pub fn n_aggregates(&self) -> usize {
        self.src.len()
    }

    /// Cumulative offered / delivered / filtered bytes of one aggregate
    /// (f64 accounting values, before packet flooring) — inspection for
    /// tests and benches.
    pub fn aggregate_bytes(&self, i: usize) -> (f64, f64, f64) {
        (self.cum_sent[i], self.cum_deliv[i], self.cum_fdrop[i])
    }

    /// Install an aggregate for `d`; its path resolves on the next tick.
    pub(crate) fn add(&mut self, d: &FluidDemand, now: SimTime) {
        assert!(d.rate_bps > 0.0, "demand rate must be positive");
        assert!(d.pkt_size > 0, "demand packet size must be positive");
        self.src.push(d.src);
        self.dst.push(d.dst);
        self.proto.push(d.proto);
        self.class.push(d.class);
        self.rate_bps.push(d.rate_bps);
        self.pkt_size.push(d.pkt_size);
        self.added_at.push(now);
        self.until.push(d.until);
        self.has_route.push(false);
        self.resolved.push(false);
        self.path_off.push(0);
        self.path_len.push(0);
        self.fstep_off.push(0);
        self.fstep_len.push(0);
        self.cum_sent.push(0.0);
        self.cum_deliv.push(0.0);
        self.cum_fdrop.push(0.0);
        self.cum_fdrop_hops.push(0.0);
        self.cum_cdrop_hops.push(0.0);
        self.rep_sent.push(0);
        self.rep_deliv.push(0);
        self.rep_fdrop.push(0);
        self.rep_cdrop.push(0);
        self.rep_fdrop_hops.push(0);
        self.rep_cdrop_hops.push(0);
    }

    /// Attach a fluid filter at `node`; takes effect from the next tick
    /// (bumps the filter epoch).
    pub(crate) fn add_filter(&mut self, node: NodeId, f: Box<dyn FluidFilter>) {
        let idx = self.filters.len();
        self.filters.push(f);
        self.filters_at.entry(node.0).or_default().push(idx);
        self.filters_dirty = true;
    }

    /// Any aggregate still offering traffic after `now`?
    pub(crate) fn any_active(&self, now: SimTime) -> bool {
        self.until.iter().any(|&u| u > now)
    }

    /// Seconds of aggregate `i`'s lifetime overlapping the window
    /// `(last, now]`.
    fn window_secs(&self, i: usize, last: SimTime, now: SimTime) -> f64 {
        let st = self.added_at[i].max(last);
        let en = self.until[i].min(now);
        if en > st {
            (en - st).as_secs_f64()
        } else {
            0.0
        }
    }

    /// Walk the forwarding tables for every unresolved aggregate and
    /// rebuild the flat path + filter-stop arenas. Returns how many paths
    /// were re-derived (the [`Stats::fluid_recomputes`] increment).
    fn resolve_paths(&mut self, topo: &Topology, routing: &Routing) -> u64 {
        let n_aggs = self.src.len();
        let mut recomputed = 0u64;
        let mut dirs = Vec::with_capacity(self.path_dirs.len());
        let mut nodes = Vec::with_capacity(self.path_nodes.len());
        let mut fpos = Vec::with_capacity(self.fstep_pos.len());
        let mut fpass = Vec::with_capacity(self.fstep_pass.len());
        let hop_limit = topo.n();
        for i in 0..n_aggs {
            let off = dirs.len() as u32;
            let foff = fpos.len() as u32;
            if self.resolved[i] {
                // Copy the still-valid slice from the old arena.
                let (o, l) = (self.path_off[i] as usize, self.path_len[i] as usize);
                dirs.extend_from_slice(&self.path_dirs[o..o + l]);
                nodes.extend_from_slice(&self.path_nodes[o..o + l]);
                let (fo, fl) = (self.fstep_off[i] as usize, self.fstep_len[i] as usize);
                fpos.extend_from_slice(&self.fstep_pos[fo..fo + fl]);
                fpass.extend_from_slice(&self.fstep_pass[fo..fo + fl]);
            } else {
                recomputed += 1;
                self.resolved[i] = true;
                let dst_node = self.dst[i].node();
                let mut cur = self.src[i].node();
                let mut routed = true;
                while cur != dst_node {
                    if dirs.len() as u32 - off >= hop_limit as u32 {
                        routed = false; // forwarding loop guard
                        break;
                    }
                    let Some(link) = routing.next_hop(cur, dst_node) else {
                        routed = false;
                        break;
                    };
                    let l = &topo.links[link.0];
                    dirs.push((link.0 * 2 + l.dir_index(cur)) as u32);
                    nodes.push(cur.0 as u32);
                    cur = l.other(cur);
                }
                if !routed {
                    dirs.truncate(off as usize);
                    nodes.truncate(off as usize);
                }
                self.has_route[i] = routed;
                // Filter stops along the (new) path: hop k is the node
                // entering link k; the destination node is hop path_len.
                if routed && !self.filters_at.is_empty() {
                    let plen = dirs.len() - off as usize;
                    for k in 0..=plen {
                        let node = if k < plen {
                            nodes[off as usize + k] as usize
                        } else {
                            dst_node.0
                        };
                        if let Some(fs) = self.filters_at.get(&node) {
                            for &fi in fs {
                                let p = self.filters[fi]
                                    .pass(
                                        self.src[i],
                                        self.dst[i],
                                        self.proto[i],
                                        self.pkt_size[i],
                                        self.class[i],
                                    )
                                    .clamp(0.0, 1.0);
                                if p < 1.0 {
                                    fpos.push(k as u32);
                                    fpass.push(p);
                                }
                            }
                        }
                    }
                }
            }
            self.path_off[i] = off;
            self.path_len[i] = dirs.len() as u32 - off;
            self.fstep_off[i] = foff;
            self.fstep_len[i] = fpos.len() as u32 - foff;
        }
        self.path_dirs = dirs;
        self.path_nodes = nodes;
        self.fstep_pos = fpos;
        self.fstep_pass = fpass;
        recomputed
    }

    /// One accounting tick over the window `(last_tick_at, now]`. Folds
    /// admitted/dropped rates into `stats`, advances the discrete link
    /// transmitters by the admitted fluid bytes, and returns whether any
    /// aggregate is still live (i.e. whether to schedule another tick).
    pub(crate) fn run_tick(
        &mut self,
        now: SimTime,
        topo: &mut Topology,
        routing: &Routing,
        stats: &mut Stats,
    ) -> bool {
        let last = self.last_tick_at;
        self.last_tick_at = now;
        if now <= last {
            return self.any_active(now);
        }
        stats.fluid_ticks += 1;

        // --- 1. Epoch subscriptions -----------------------------------
        let mut invalidate_paths = false;
        if routing.epoch() != self.route_epoch {
            stats.fluid_epoch_invalidations += 1;
            match routing.dsts_invalidated_since(self.route_epoch) {
                Some(dsts) => {
                    let dirty: std::collections::HashSet<usize> =
                        dsts.iter().map(|d| d.0).collect();
                    for i in 0..self.src.len() {
                        if dirty.contains(&self.dst[i].node().0) {
                            self.resolved[i] = false;
                        }
                    }
                }
                None => invalidate_paths = true,
            }
            self.route_epoch = routing.epoch();
        }
        if self.filters_dirty {
            // Filter placement interleaves with the cached path, so a
            // filter-epoch bump re-derives the stops via a path rebuild.
            stats.fluid_epoch_invalidations += 1;
            self.filters_dirty = false;
            invalidate_paths = true;
        }
        if invalidate_paths {
            self.resolved.iter_mut().for_each(|r| *r = false);
        }
        if self.resolved.iter().any(|r| !r) {
            stats.fluid_recomputes += self.resolve_paths(topo, routing);
        }

        // --- 2. Scratch prep: touched dirs + residual capacity ---------
        let n_dirs = topo.links.len() * 2;
        if self.offered.len() < n_dirs {
            self.offered.resize(n_dirs, 0.0);
            self.frac.resize(n_dirs, 0.0);
            self.avail.resize(n_dirs, 0.0);
            self.seen.resize(n_dirs, false);
            self.dir_carry.resize(n_dirs, 0.0);
        }
        let n_aggs = self.src.len();
        self.touched.clear();
        for i in 0..n_aggs {
            if !self.has_route[i] || self.window_secs(i, last, now) <= 0.0 {
                continue;
            }
            let (o, l) = (self.path_off[i] as usize, self.path_len[i] as usize);
            for &d in &self.path_dirs[o..o + l] {
                if !self.seen[d as usize] {
                    self.seen[d as usize] = true;
                    self.touched.push(d);
                }
            }
        }
        for &d in &self.touched {
            let d = d as usize;
            let link = &topo.links[d / 2];
            let ld = &link.dirs[d % 2];
            let idle_from = ld.next_free.max(last);
            self.avail[d] = if link.up && now > idle_from {
                (now - idle_from).as_secs_f64() * link.bandwidth_bps / 8.0
            } else {
                0.0
            };
            self.frac[d] = 1.0;
        }

        // --- 3. Proportional-share admission (settle, then account) ----
        for _ in 0..SETTLE_ROUNDS {
            for &d in &self.touched {
                self.offered[d as usize] = 0.0;
            }
            for i in 0..n_aggs {
                let dur = self.window_secs(i, last, now);
                if !self.has_route[i] || dur <= 0.0 {
                    continue;
                }
                let mut p = self.rate_bps[i] / 8.0 * dur;
                let (o, l) = (self.path_off[i] as usize, self.path_len[i] as usize);
                let (fo, fl) = (self.fstep_off[i] as usize, self.fstep_len[i] as usize);
                let mut fs = fo;
                for (k, &d) in self.path_dirs[o..o + l].iter().enumerate() {
                    while fs < fo + fl && self.fstep_pos[fs] as usize == k {
                        p *= self.fstep_pass[fs];
                        fs += 1;
                    }
                    self.offered[d as usize] += p;
                    p *= self.frac[d as usize];
                }
            }
            for &d in &self.touched {
                let d = d as usize;
                self.frac[d] = if self.offered[d] > self.avail[d] && self.offered[d] > 0.0 {
                    self.avail[d] / self.offered[d]
                } else {
                    1.0
                };
            }
        }

        // Accounting pass: final walk with settled fractions. `offered`
        // is reused to accumulate per-dir *admitted* bytes for the
        // discrete-engine coupling below.
        for &d in &self.touched {
            self.offered[d as usize] = 0.0;
        }
        for i in 0..n_aggs {
            let dur = self.window_secs(i, last, now);
            if dur <= 0.0 {
                continue;
            }
            let base = self.rate_bps[i] / 8.0 * dur;
            if !self.has_route[i] {
                self.cum_sent[i] += base;
                self.report(i, stats);
                continue;
            }
            let mut p = base;
            let mut fdrop = 0.0;
            let mut fdrop_hops = 0.0;
            let mut cdrop_hops = 0.0;
            let (o, l) = (self.path_off[i] as usize, self.path_len[i] as usize);
            let (fo, fl) = (self.fstep_off[i] as usize, self.fstep_len[i] as usize);
            let mut fs = fo;
            for (k, &d) in self.path_dirs[o..o + l].iter().enumerate() {
                while fs < fo + fl && self.fstep_pos[fs] as usize == k {
                    let cut = p * (1.0 - self.fstep_pass[fs]);
                    fdrop += cut;
                    fdrop_hops += cut * k as f64;
                    p *= self.fstep_pass[fs];
                    fs += 1;
                }
                let d = d as usize;
                self.offered[d] += p * self.frac[d];
                cdrop_hops += p * (1.0 - self.frac[d]) * k as f64;
                p *= self.frac[d];
            }
            // Destination-node filter stops (pos == path_len).
            while fs < fo + fl {
                let cut = p * (1.0 - self.fstep_pass[fs]);
                fdrop += cut;
                fdrop_hops += cut * l as f64;
                p *= self.fstep_pass[fs];
                fs += 1;
            }
            let deliv = p.min(base);
            let fdrop = fdrop.min(base - deliv);
            self.cum_sent[i] += base;
            self.cum_deliv[i] += deliv;
            self.cum_fdrop[i] += fdrop;
            self.cum_fdrop_hops[i] += fdrop_hops;
            self.cum_cdrop_hops[i] += cdrop_hops;
            self.report(i, stats);
        }

        // --- 4. Couple admitted fluid load back into the links ---------
        for &d in &self.touched {
            let di = d as usize;
            self.seen[di] = false; // sparse reset for the next tick
            let admitted = self.offered[di].min(self.avail[di]);
            if admitted <= 0.0 {
                continue;
            }
            let link = &mut topo.links[di / 2];
            let bw = link.bandwidth_bps;
            let ld = &mut link.dirs[di % 2];
            // Admitted ≤ residual idle time, so this lands at or before
            // `now`: fluid never leaves a standing backlog behind.
            let tx = SimDuration::from_nanos((admitted * 8.0 / bw * 1e9) as u64);
            ld.next_free = ld.next_free.max(last) + tx;
            let total = self.dir_carry[di] + admitted;
            let whole = total.floor();
            self.dir_carry[di] = total - whole;
            ld.bytes_sent += whole as u64;
        }
        self.any_active(now)
    }

    /// Fold aggregate `i`'s cumulative byte accounting into `stats` as
    /// whole packets, by flooring cumulatives and charging the deltas.
    /// All four floors are monotone, and
    /// `deliv + fdrop + cdrop <= sent` holds cumulatively, so the
    /// per-class conservation gate is exact.
    fn report(&mut self, i: usize, stats: &mut Stats) {
        let size = self.pkt_size[i] as f64;
        let sp = (self.cum_sent[i] / size) as u64;
        let dp = (self.cum_deliv[i] / size) as u64;
        let fp = (self.cum_fdrop[i] / size) as u64;
        let cdrop_bytes = (self.cum_sent[i] - self.cum_deliv[i] - self.cum_fdrop[i]).max(0.0);
        let cp = (cdrop_bytes / size) as u64;
        let fh = (self.cum_fdrop_hops[i] / size) as u64;
        let ch = (self.cum_cdrop_hops[i] / size) as u64;
        let d_sent = sp - self.rep_sent[i];
        let d_deliv = dp - self.rep_deliv[i];
        let d_f = fp - self.rep_fdrop[i];
        let d_c = cp - self.rep_cdrop[i];
        let d_fh = fh - self.rep_fdrop_hops[i];
        let d_ch = ch - self.rep_cdrop_hops[i];
        self.rep_sent[i] = sp;
        self.rep_deliv[i] = dp;
        self.rep_fdrop[i] = fp;
        self.rep_cdrop[i] = cp;
        self.rep_fdrop_hops[i] = fh;
        self.rep_cdrop_hops[i] = ch;
        if d_sent + d_deliv + d_f + d_c == 0 {
            return;
        }
        let bytes = self.pkt_size[i] as u64;
        let hops = self.path_len[i] as u64;
        let class = self.class[i];
        let c = &mut stats.per_class[class_index(class)];
        c.sent_pkts += d_sent;
        c.sent_bytes += d_sent * bytes;
        c.delivered_pkts += d_deliv;
        c.delivered_bytes += d_deliv * bytes;
        c.delivered_hops += d_deliv * hops;
        c.delivered_byte_hops += d_deliv * bytes * hops;
        c.dropped_pkts += d_f + d_c;
        c.dropped_bytes += (d_f + d_c) * bytes;
        c.dropped_byte_hops += (d_fh + d_ch) * bytes;
        if d_f > 0 {
            let agg = stats
                .drops
                .entry((class, DropReason::DeviceFilter))
                .or_default();
            agg.pkts += d_f;
            agg.bytes += d_f * bytes;
            agg.hops_sum += d_fh;
        }
        if d_c > 0 {
            let reason = if self.has_route[i] {
                DropReason::QueueOverflow
            } else {
                DropReason::NoRoute
            };
            let agg = stats.drops.entry((class, reason)).or_default();
            agg.pkts += d_c;
            agg.bytes += d_c * bytes;
            agg.hops_sum += d_ch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::sim::Simulator;
    use crate::stats::DropReason;

    const TICK: SimDuration = SimDuration::from_millis(50);

    fn demand(src: usize, dst: usize, rate_bps: f64, until_s: u64) -> FluidDemand {
        FluidDemand {
            src: Addr::new(NodeId(src), 1),
            dst: Addr::new(NodeId(dst), 1),
            proto: Proto::Udp,
            class: TrafficClass::Background,
            rate_bps,
            pkt_size: 500,
            until: SimTime::from_secs(until_s),
        }
    }

    fn line_sim(fluid: bool) -> Simulator {
        // line(): 1 Gbit/s transit links per topology defaults.
        let mut sim = Simulator::new(Topology::line(4), 9);
        if fluid {
            sim.enable_fluid(TICK);
        }
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(crate::app::SinkApp));
        sim
    }

    #[test]
    fn fluid_aggregate_delivers_and_conserves() {
        let mut sim = line_sim(true);
        // 4 Mbit/s for 2 s = 1 MB = 2000 packets of 500 B.
        sim.add_background_demand(demand(0, 3, 4e6, 2));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.stats.fluid_aggregates, 1);
        assert!(sim.stats.fluid_ticks > 0);
        assert!(sim.stats.fluid_recomputes >= 1);
        let c = sim.stats.class(TrafficClass::Background);
        assert!(
            c.sent_pkts >= 1990 && c.sent_pkts <= 2000,
            "{}",
            c.sent_pkts
        );
        assert_eq!(
            c.delivered_pkts, c.sent_pkts,
            "uncongested path delivers all"
        );
        assert_eq!(c.delivered_hops, c.delivered_pkts * 3);
        sim.stats.check_conservation().unwrap();
        // The tick must not keep the run alive forever.
        sim.run_to_idle();
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn fluid_matches_discrete_cbr_on_idle_path() {
        let run = |fluid: bool| {
            let mut sim = line_sim(fluid);
            sim.add_background_demand(demand(0, 3, 4e6, 2));
            sim.run_until(SimTime::from_secs(3));
            sim.stats.check_conservation().unwrap();
            let c = sim.stats.class(TrafficClass::Background);
            (c.sent_pkts, c.delivered_pkts)
        };
        let (fs, fd) = run(true);
        let (ds, dd) = run(false);
        // Same demand, two engines: totals agree within one tick's quantum.
        assert!((fs as i64 - ds as i64).abs() <= 10, "sent {fs} vs {ds}");
        assert!(
            (fd as i64 - dd as i64).abs() <= 10,
            "delivered {fd} vs {dd}"
        );
    }

    #[test]
    fn fluid_overload_drops_to_capacity() {
        let mut sim = line_sim(true);
        // 4 Gbit/s into 1 Gbit/s links: ~3/4 must drop as congestion.
        sim.add_background_demand(demand(0, 3, 4e9, 2));
        sim.run_until(SimTime::from_secs(3));
        let c = sim.stats.class(TrafficClass::Background);
        let ratio = c.delivered_pkts as f64 / c.sent_pkts as f64;
        assert!((ratio - 0.25).abs() < 0.02, "delivered ratio {ratio}");
        let agg = sim.stats.drops_for_reason(DropReason::QueueOverflow);
        assert!(agg.pkts > 0);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn fluid_shares_bottleneck_proportionally() {
        let mut sim = line_sim(true);
        sim.install_app(Addr::new(NodeId(3), 2), Box::new(crate::app::SinkApp));
        // 1.5 + 0.5 Gbit/s share the same 1 Gbit/s bottleneck (links
        // 1->2->3): 2x overloaded, so each is thinned to half its offer.
        let d1 = demand(1, 3, 1.5e9, 2);
        let mut d2 = demand(1, 3, 0.5e9, 2);
        d2.class = TrafficClass::LegitRequest;
        d2.dst = Addr::new(NodeId(3), 2);
        sim.add_background_demand(d1);
        sim.add_background_demand(d2);
        sim.run_until(SimTime::from_secs(3));
        let bg = sim.stats.class(TrafficClass::Background);
        let lr = sim.stats.class(TrafficClass::LegitRequest);
        let r1 = bg.delivered_pkts as f64 / bg.sent_pkts as f64;
        let r2 = lr.delivered_pkts as f64 / lr.sent_pkts as f64;
        assert!((r1 - 0.5).abs() < 0.05, "r1={r1}");
        assert!((r2 - 0.5).abs() < 0.05, "r2={r2}");
        sim.stats.check_conservation().unwrap();
    }

    /// Pass half of everything at one node.
    struct Halver;
    impl FluidFilter for Halver {
        fn pass(&self, _s: Addr, _d: Addr, _p: Proto, _z: u32, _c: TrafficClass) -> f64 {
            0.5
        }
    }

    #[test]
    fn fluid_filter_thins_aggregate_and_charges_device_drops() {
        let mut sim = line_sim(true);
        sim.enable_fluid(TICK);
        sim.add_fluid_filter(NodeId(1), Box::new(Halver));
        sim.add_background_demand(demand(0, 3, 4e6, 2));
        sim.run_until(SimTime::from_secs(3));
        let c = sim.stats.class(TrafficClass::Background);
        let ratio = c.delivered_pkts as f64 / c.sent_pkts as f64;
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
        let agg = sim.stats.drops_for_reason(DropReason::DeviceFilter);
        assert!(agg.pkts > 0, "filtered rate must surface as device drops");
        // Filter sits one hop from the source.
        assert_eq!(agg.hops_sum, agg.pkts);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn route_flip_invalidates_and_recomputes_via_delta_subscription() {
        // Diamond: 0-1-3 and 0-2-3; fail the in-use branch mid-run.
        let mut topo = Topology::new();
        for _ in 0..4 {
            topo.add_node(crate::node::NodeRole::Stub);
        }
        let prof = crate::link::LinkProfile::access();
        topo.connect(NodeId(0), NodeId(1), prof).unwrap();
        let l13 = topo.connect(NodeId(1), NodeId(3), prof).unwrap();
        topo.connect(NodeId(0), NodeId(2), prof).unwrap();
        topo.connect(NodeId(2), NodeId(3), prof).unwrap();
        let mut sim = Simulator::new(topo, 5);
        sim.enable_fluid(TICK);
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(crate::app::SinkApp));
        sim.add_background_demand(demand(0, 3, 4e6, 4));
        sim.schedule(SimTime::from_secs(1), move |s| s.set_link_up(l13, false));
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.stats.fluid_epoch_invalidations >= 1);
        assert!(
            sim.stats.fluid_recomputes >= 2,
            "initial resolve + post-flip re-resolve, got {}",
            sim.stats.fluid_recomputes
        );
        let c = sim.stats.class(TrafficClass::Background);
        // Rerouted over the surviving branch: still (almost) everything.
        let ratio = c.delivered_pkts as f64 / c.sent_pkts as f64;
        assert!(ratio > 0.95, "ratio {ratio}");
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn packetized_endpoint_materializes_discrete_cbr() {
        let mut sim = line_sim(true);
        sim.fluid_packetize(NodeId(3));
        sim.add_background_demand(demand(0, 3, 4e6, 2));
        assert_eq!(sim.stats.fluid_boundary_conversions, 1);
        assert_eq!(sim.stats.fluid_aggregates, 0);
        sim.run_until(SimTime::from_secs(3));
        let c = sim.stats.class(TrafficClass::Background);
        assert!(c.sent_pkts >= 1990, "{}", c.sent_pkts);
        assert_eq!(c.delivered_pkts, c.sent_pkts);
        // Real packets: per-hop queue-delay telemetry exists.
        assert!(sim.stats.hist.queue_delay_ns.count() > 0);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn fluid_runs_are_deterministic() {
        let run = || {
            let mut sim = line_sim(true);
            sim.add_background_demand(demand(0, 3, 900e6, 2));
            sim.add_background_demand(demand(1, 3, 400e6, 2));
            sim.run_until(SimTime::from_secs(3));
            let c = *sim.stats.class(TrafficClass::Background);
            (
                c.sent_pkts,
                c.delivered_pkts,
                c.dropped_pkts,
                sim.stats.events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_route_charges_noroute_drops() {
        let mut topo = Topology::line(2);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let mut sim = Simulator::new(topo, 3);
        sim.enable_fluid(TICK);
        let mut d = demand(0, 0, 4e6, 1);
        d.dst = Addr::new(lonely, 1);
        sim.add_background_demand(d);
        sim.run_until(SimTime::from_secs(2));
        let agg = sim.stats.drops_for_reason(DropReason::NoRoute);
        assert!(agg.pkts > 0);
        assert_eq!(agg.hops_sum, 0, "no-route traffic dies at the source");
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn fluid_load_is_visible_to_discrete_links() {
        let mut sim = line_sim(true);
        sim.add_background_demand(demand(0, 3, 800e6, 2));
        sim.run_until(SimTime::from_secs(2));
        // 0.8 Gbit/s on a 1 Gbit/s link for 2 s: utilisation ~0.8 as
        // seen by the ordinary link counters.
        let u = sim.topo.links[0].utilisation(NodeId(0), SimTime::from_secs(2));
        assert!((u - 0.8).abs() < 0.05, "u={u}");
    }
}
