//! E10 — Emerging applications: traceback accuracy and anomaly-reaction
//! latency (Sec. 4.4).
//!
//! (a) SPIE-style digest traceback: accuracy of locating the true origin
//! of spoofed packets vs backlog retention and deployment coverage.
//! (b) Automated reaction: time from attack onset to a device trigger
//! firing (and auto-activating a dormant limiter) vs trigger threshold.

use rayon::prelude::*;
use serde::Serialize;

use crossbeam::channel::unbounded;
use dtcs::control::CatalogService;
use dtcs::device::view::digest_packet;
use dtcs::device::{AdaptiveDevice, DeviceCommand, DeviceEvent, OwnerId};
use dtcs::mitigation::{choose_nodes, Placement, SpieConfig, SpieFleet};
use dtcs::netsim::rng::{child_seed, seeded};
use dtcs::netsim::{
    Addr, NodeId, PacketBuilder, Prefix, Proto, SimDuration, SimTime, Simulator, Topology,
    TrafficClass,
};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::util::{f, fopt, Report, Table};

#[derive(Serialize, Clone)]
struct TraceRow {
    coverage: f64,
    windows_retained: usize,
    queries: usize,
    exact_hits: usize,
    truncated: usize,
    misses: usize,
    accuracy: f64,
}

/// Base seed for the traceback half (historically the literal `66` used
/// for topology, simulator, node choice, and — via `child_seed(66, 4)` —
/// the probe RNG).
const TRACE_SEED: u64 = 66;

/// Base seed for the anomaly-trigger half (historically the literal `9`).
const TRIGGER_SEED: u64 = 9;

/// Traceback (coverage, retained windows) grid shared by `run()` and the
/// sweep adapter.
fn trace_cases(quick: bool) -> Vec<(f64, usize)> {
    if quick {
        vec![(1.0, 30), (0.5, 30), (1.0, 4)]
    } else {
        vec![
            (1.0, 30),
            (0.75, 30),
            (0.5, 30),
            (0.25, 30),
            (1.0, 8),
            (1.0, 4),
        ]
    }
}

/// Trigger thresholds (pps) against the fixed 5000 pps flood.
const TRIGGER_THRESHOLDS: [f64; 3] = [100.0, 500.0, 2000.0];

fn trace_case(
    coverage: f64,
    retain: usize,
    quick: bool,
    seed: u64,
) -> (TraceRow, dtcs::netsim::Stats) {
    let n = if quick { 100 } else { 250 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, seed);
    let mut sim = Simulator::new(topo, seed);
    let stubs = sim.topo.stub_nodes();
    let victim_node = stubs[0];
    let victim = Addr::new(victim_node, 1);
    sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
    let mut nodes = choose_nodes(&sim.topo, coverage, Placement::TopDegree, seed);
    if !nodes.contains(&victim_node) {
        nodes.push(victim_node);
    }
    let fleet = SpieFleet::deploy(
        &mut sim,
        &nodes,
        SpieConfig {
            retain,
            ..Default::default()
        },
    );
    // Spoofed probes from random stubs, each with a unique tag.
    let mut rng = seeded(child_seed(seed, 4));
    let n_probes = if quick { 60 } else { 150 };
    let mut probes = Vec::new();
    for k in 0..n_probes as u64 {
        let from = *stubs[1..].choose(&mut rng).expect("stubs");
        let spoof = Addr(rng.gen());
        let b = PacketBuilder::new(spoof, victim, Proto::Udp, TrafficClass::AttackDirect)
            .size(100)
            .tag(0xE10_000 + k);
        let at = SimTime(k * 20_000_000);
        probes.push((from, b, at));
        sim.schedule(at, move |s| s.emit_now(from, b));
    }
    sim.run_until(SimTime::from_secs(10));
    crate::util::enforce_run_invariants("e10/traceback", &sim.stats);

    let mut exact = 0;
    let mut truncated = 0;
    let mut misses = 0;
    for (from, b, at) in &probes {
        let digest = digest_packet(&b.build(0, *from));
        let found = fleet.trace(
            &sim.topo,
            victim_node,
            digest,
            *at,
            SimDuration::from_secs(2),
        );
        if found.contains(from) {
            exact += 1;
        } else if !found.is_empty() {
            truncated += 1;
        } else {
            misses += 1;
        }
    }
    let row = TraceRow {
        coverage,
        windows_retained: retain,
        queries: probes.len(),
        exact_hits: exact,
        truncated,
        misses,
        accuracy: exact as f64 / probes.len() as f64,
    };
    (row, sim.stats)
}

#[derive(Serialize, Clone)]
struct TriggerRow {
    threshold_pps: f64,
    attack_rate_pps: f64,
    reaction_ms: Option<f64>,
    limiter_drops: u64,
}

fn trigger_case(
    threshold_pps: f64,
    attack_rate_pps: f64,
    seed: u64,
) -> (TriggerRow, dtcs::netsim::Stats) {
    let topo = Topology::star(4);
    let mut sim = Simulator::new(topo, seed);
    let me = NodeId(1);
    let my_addr = Addr::new(me, 1);
    sim.install_app(my_addr, Box::new(dtcs::netsim::SinkApp));
    let owner = OwnerId(3);
    let (tx, rx) = unbounded::<DeviceEvent>();
    let (mut dev, _h) = AdaptiveDevice::new(NodeId(0), None);
    dev.set_event_tap(tx);
    dev.apply(DeviceCommand::RegisterOwner {
        owner,
        prefixes: vec![Prefix::of_node(me)],
        contact: me,
    });
    let svc = CatalogService::AnomalyReaction {
        threshold_pps,
        window: SimDuration::from_millis(200),
        limit_bytes_per_sec: 20_000.0,
    };
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner,
        stage: svc.stage(),
        spec: svc.compile(),
    });
    sim.add_agent(NodeId(0), Box::new(dev));
    let attack_start = SimTime::from_secs(2);
    use dtcs::attack::{AgentApp, AgentMode, AgentTrigger, SpoofMode};
    sim.install_app(
        Addr::new(NodeId(2), 4),
        Box::new(
            AgentApp::new(
                AgentMode::Direct {
                    victim: my_addr,
                    spoof: SpoofMode::None,
                },
                AgentTrigger::AtTime(attack_start),
                attack_rate_pps,
                200,
            )
            .until(SimTime::from_secs(10)),
        ),
    );
    sim.run_until(SimTime::from_secs(12));
    crate::util::enforce_run_invariants("e10/trigger", &sim.stats);
    let fired_at = rx.try_iter().find_map(|ev| match ev {
        DeviceEvent::TriggerFired { at, .. } => Some(at),
        _ => None,
    });
    let row = TriggerRow {
        threshold_pps,
        attack_rate_pps,
        reaction_ms: fired_at
            .map(|t| (t.as_nanos().saturating_sub(attack_start.as_nanos())) as f64 / 1e6),
        limiter_drops: sim
            .stats
            .drops_for_reason(dtcs::netsim::DropReason::DeviceRateLimit)
            .pkts,
    };
    (row, sim.stats)
}

/// Sweep-grid adapter: the traceback grid (base seed 66) plus the
/// anomaly-trigger thresholds (base seed 9 — per-cell base seeds let each
/// half keep its historical literal at replicate 0).
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let mut cells = Vec::new();
        for (coverage, windows) in trace_cases(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e10",
                scenario: format!("traceback/coverage={coverage:.2}/windows={windows}"),
                base_seed: TRACE_SEED,
                run: Box::new(move |seed| {
                    let (row, stats) = trace_case(coverage, windows, quick, seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("queries".to_string(), row.queries as f64);
                    metrics.insert("exact_hits".to_string(), row.exact_hits as f64);
                    metrics.insert("truncated".to_string(), row.truncated as f64);
                    metrics.insert("misses".to_string(), row.misses as f64);
                    metrics.insert("accuracy".to_string(), row.accuracy);
                    crate::sweep::CellRun { metrics, stats }
                }),
            });
        }
        for threshold in TRIGGER_THRESHOLDS {
            cells.push(crate::sweep::SweepCell {
                experiment: "e10",
                scenario: format!("trigger/threshold={threshold}"),
                base_seed: TRIGGER_SEED,
                run: Box::new(move |seed| {
                    let (row, stats) = trigger_case(threshold, 5000.0, seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    if let Some(ms) = row.reaction_ms {
                        metrics.insert("reaction_ms".to_string(), ms);
                    }
                    metrics.insert("limiter_drops".to_string(), row.limiter_drops as f64);
                    crate::sweep::CellRun { metrics, stats }
                }),
            });
        }
        cells
    }
}

/// Run E10.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e10",
        "TCS applications: traceback accuracy, anomaly-reaction latency",
        "Sec. 4.4",
    );

    let rows: Vec<TraceRow> = trace_cases(quick)
        .par_iter()
        .map(|&(c, w)| trace_case(c, w, quick, TRACE_SEED).0)
        .collect();
    let mut t = Table::new(
        "digest-backlog traceback of spoofed packets",
        &[
            "coverage",
            "windows",
            "queries",
            "exact",
            "truncated",
            "missed",
            "accuracy",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                format!("{:.2}", r.coverage),
                r.windows_retained.to_string(),
                r.queries.to_string(),
                r.exact_hits.to_string(),
                r.truncated.to_string(),
                r.misses.to_string(),
                f(r.accuracy),
            ],
            r,
        );
    }
    report.table(t);

    let rows: Vec<TriggerRow> = TRIGGER_THRESHOLDS
        .par_iter()
        .map(|&th| trigger_case(th, 5000.0, TRIGGER_SEED).0)
        .collect();
    let mut t = Table::new(
        "anomaly-reaction latency (5000 pps flood, 200 ms windows)",
        &[
            "threshold_pps",
            "attack_pps",
            "reaction_ms",
            "limiter_drops",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                f(r.threshold_pps),
                f(r.attack_rate_pps),
                fopt(r.reaction_ms),
                r.limiter_drops.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Full coverage traces every spoofed probe to its true origin AS; partial coverage \
         truncates traces at the instrumented frontier (still narrowing the search), and \
         short retention loses old packets — the qualitative SPIE trade-offs. Trigger \
         reaction completes within one observation window of attack onset.",
    );
    report
}
