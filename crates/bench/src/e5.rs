//! E5 — Stop distance and wasted bandwidth vs TCS coverage (Sec. 4.3 /
//! Sec. 6: "our system effectively stops attack traffic close to the
//! source … frees network resources that are nowadays wasted for
//! transporting attack traffic around the globe").
//!
//! Sweeps the fraction of ASes offering the TCS and two placement
//! policies; reports where spoofed attack packets die (hops from their
//! true origin) and how much bandwidth (byte·hops) the attack consumed.
//! Ablation of DESIGN.md §5: top-degree vs random placement.

use rayon::prelude::*;
use serde::Serialize;

use dtcs::mitigation::Placement;
use dtcs::{run_scenario, Scheme, TcsStaticConfig};

use crate::e2::{outcome_metrics, scenario};
use crate::util::{f, fopt, Report, Table};

/// Coverage-fraction axis shared by `run()` and the sweep adapter.
fn fractions(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.05, 0.2, 0.5, 1.0]
    } else {
        vec![0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0]
    }
}

/// Placement policies under comparison.
const PLACEMENTS: [(Placement, &str); 2] = [
    (Placement::TopDegree, "top-degree"),
    (Placement::Random, "random"),
];

/// Two-stage ablation cases: (table label, scenario key, antispoof,
/// dst_firewall).
const STAGES: [(&str, &str, bool, bool); 3] = [
    ("antispoof-only (stage 1)", "antispoof-only", true, false),
    (
        "dst-firewall-only (stage 2)",
        "dst-firewall-only",
        false,
        true,
    ),
    ("both stages", "both", true, true),
];

/// Sweep-grid adapter: the coverage grid (placement × fraction), the
/// three two-stage ablation cases, and the no-defense baseline.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let base_cfg = scenario(opts.quick);
        let mut cells = Vec::new();
        let mut push = |scenario: String, scheme: Scheme| {
            let cfg = base_cfg.clone();
            cells.push(crate::sweep::SweepCell {
                experiment: "e5",
                scenario,
                base_seed: cfg.seed,
                run: Box::new(move |seed| {
                    let mut cfg = cfg.clone();
                    cfg.seed = seed;
                    let out = run_scenario(&cfg, &scheme);
                    crate::sweep::CellRun {
                        metrics: outcome_metrics(&out.row),
                        stats: out.stats,
                    }
                }),
            });
        };
        for &(placement, name) in &PLACEMENTS {
            for fraction in fractions(opts.quick) {
                push(
                    format!("coverage/{name}/fraction={fraction:.2}"),
                    Scheme::Tcs(TcsStaticConfig {
                        fraction,
                        placement,
                        ..Default::default()
                    }),
                );
            }
        }
        for &(_, key, antispoof, dst_firewall) in &STAGES {
            push(
                format!("stage/{key}"),
                Scheme::Tcs(TcsStaticConfig {
                    fraction: 0.3,
                    placement: Placement::TopDegree,
                    antispoof,
                    dst_firewall,
                    ..Default::default()
                }),
            );
        }
        push("baseline/none".to_string(), Scheme::None);
        cells
    }
}

#[derive(Serialize, Clone)]
struct Row {
    placement: String,
    fraction: f64,
    legit_success: f64,
    stop_distance: Option<f64>,
    attack_byte_hops: u64,
    attack_delivered_ratio: f64,
}

/// Run E5.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e5",
        "Stop distance & wasted bandwidth vs TCS coverage",
        "Secs. 4.3 / 6",
    );
    let cfg = scenario(quick);
    let cases: Vec<(Placement, &str, f64)> = PLACEMENTS
        .iter()
        .flat_map(|&(p, name)| fractions(quick).into_iter().map(move |fr| (p, name, fr)))
        .collect();
    let (rows, run_stats): (Vec<Row>, Vec<_>) = cases
        .par_iter()
        .map(|&(placement, name, fraction)| {
            let out = run_scenario(
                &cfg,
                &Scheme::Tcs(TcsStaticConfig {
                    fraction,
                    placement,
                    ..Default::default() // proactive
                }),
            );
            (
                Row {
                    placement: name.to_string(),
                    fraction,
                    legit_success: out.row.legit_success,
                    stop_distance: out.row.stop_distance,
                    attack_byte_hops: out.row.attack_byte_hops,
                    attack_delivered_ratio: out.row.attack_delivered_ratio,
                },
                out.stats,
            )
        })
        .collect::<Vec<_>>()
        .into_iter()
        .unzip();
    report.health(crate::util::wheel_health(run_stats.iter()));
    report.health(crate::util::hist_health(run_stats.iter()));

    // Baseline: no defense.
    let baseline = run_scenario(&cfg, &Scheme::None).row;

    let mut t = Table::new(
        "TCS coverage sweep (proactive anti-spoofing + victim firewall)",
        &[
            "placement",
            "fraction",
            "legit_ok",
            "stop_dist",
            "atk_byte_hops",
            "vs_none",
            "attack_deliv",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.placement.clone(),
                format!("{:.2}", r.fraction),
                f(r.legit_success),
                fopt(r.stop_distance),
                f(r.attack_byte_hops as f64),
                format!(
                    "{:.2}x",
                    baseline.attack_byte_hops as f64 / r.attack_byte_hops.max(1) as f64
                ),
                f(r.attack_delivered_ratio),
            ],
            r,
        );
    }
    report.table(t);
    report.note(format!(
        "no-defense baseline: attack byte-hops {}, legit success {}",
        f(baseline.attack_byte_hops as f64),
        f(baseline.legit_success)
    ));
    report.note(
        "Higher coverage pulls the stop distance toward 0 (the agent's own uplink) and \
         monotonically shrinks the bandwidth the attack consumes; top-degree placement \
         dominates random at equal cost (DESIGN.md §5 ablation).",
    );

    // Which processing stage does the work (DESIGN.md §5, two-stage
    // ablation): source-side anti-spoofing alone, destination-side
    // firewall alone, and both, at fixed 30% top-degree coverage.
    let rows: Vec<StageRow> = STAGES
        .par_iter()
        .map(|&(name, _, antispoof, dst_firewall)| {
            let out = run_scenario(
                &cfg,
                &Scheme::Tcs(TcsStaticConfig {
                    fraction: 0.3,
                    placement: Placement::TopDegree,
                    antispoof,
                    dst_firewall,
                    ..Default::default()
                }),
            );
            StageRow {
                case: name.to_string(),
                legit_success: out.row.legit_success,
                attack_byte_hops: out.row.attack_byte_hops,
                refl_at_victim: out.row.reflected_delivered_to_victim,
            }
        })
        .collect();
    let mut t = Table::new(
        "two-stage ablation at 30% coverage",
        &["case", "legit_ok", "atk_byte_hops", "refl@victim"],
    );
    for r in &rows {
        t.push(
            vec![
                r.case.clone(),
                f(r.legit_success),
                f(r.attack_byte_hops as f64),
                r.refl_at_victim.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Stage 1 (anti-spoofing at the sources) removes the attack from the network; \
         stage 2 (victim-side firewall) only shields the victim's host while the reflected \
         flood still crosses the backbone — the division of labour Fig. 6 implies.",
    );
    report
}

#[derive(Serialize, Clone)]
struct StageRow {
    case: String,
    legit_success: f64,
    attack_byte_hops: u64,
    refl_at_victim: u64,
}
