//! Criterion benches for the adaptive device's per-packet path (E6's
//! microbenchmark counterpart): owner-table LPM lookup (trie vs linear
//! ablation) and service-graph execution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::device::trie::{LinearTable, PrefixTrie};
use dtcs::device::{
    DeviceContext, EntryKind, FilterRule, MatchExpr, ModuleSpec, OwnerId, OwnerTable, PacketView,
    ServiceGraph, ServiceSpec,
};
use dtcs::netsim::rng::seeded;
use dtcs::netsim::{Addr, NodeId, PacketBuilder, Prefix, Proto, SimTime, TrafficClass};
use rand::Rng;

fn bench_lpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpm_lookup");
    for &n in &[100usize, 1_000, 10_000] {
        let mut rng = seeded(7);
        let mut trie = PrefixTrie::new();
        let mut linear = LinearTable::new();
        for i in 0..n {
            let p = Prefix::new(rng.gen::<u32>(), rng.gen_range(8..=24));
            trie.insert(p, i);
            linear.insert(p, i);
        }
        let probes: Vec<Addr> = (0..1024).map(|_| Addr(rng.gen())).collect();
        group.bench_with_input(BenchmarkId::new("trie", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(trie.lookup(probes[i]))
            })
        });
        // Linear scan at 10k entries is slow; keep it to the small sizes
        // plus one large point to show the divergence.
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(linear.lookup(probes[i]))
            })
        });
    }
    group.finish();
}

fn bench_owner_table(c: &mut Criterion) {
    let mut table = OwnerTable::new();
    for i in 0..10_000u32 {
        table.register(Prefix::new(i << 16, 16), OwnerId(i as u64), NodeId(0));
    }
    let mut rng = seeded(9);
    let probes: Vec<Addr> = (0..1024).map(|_| Addr(rng.gen())).collect();
    c.bench_function("owner_table_lookup_10k", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(table.owner_of(probes[i]))
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_graph");
    for &rules in &[1usize, 16, 128] {
        let spec = ServiceSpec::chain(
            "bench",
            vec![ModuleSpec::Filter {
                rules: (0..rules)
                    .map(|i| FilterRule {
                        expr: MatchExpr::proto(Proto::TcpRst)
                            .with_src(Prefix::new((i as u32) << 16, 16)),
                        drop: true,
                    })
                    .collect(),
            }],
        );
        let mut graph = ServiceGraph::from_spec(&spec);
        let ctx = DeviceContext {
            node: NodeId(0),
            local_prefixes: vec![],
            is_transit: true,
        };
        let mut events = Vec::new();
        group.bench_with_input(BenchmarkId::new("filter_rules", rules), &rules, |b, _| {
            let mut pkt = PacketBuilder::new(
                Addr::new(NodeId(1), 1),
                Addr::new(NodeId(2), 1),
                Proto::Udp,
                TrafficClass::Background,
            )
            .size(100)
            .build(1, NodeId(1));
            b.iter(|| {
                let mut view = PacketView::wrap(&mut pkt);
                black_box(graph.process(
                    SimTime::ZERO,
                    &ctx,
                    &EntryKind::Transit,
                    false,
                    None,
                    OwnerId(1),
                    &mut events,
                    &mut view,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lpm, bench_owner_table, bench_graph);
criterion_main!(benches);
