//! Reactive filter installation from traceback verdicts.
//!
//! Once a traceback mechanism (PPM or SPIE) has named apparent attack
//! sources, a reactive scheme installs filters against them. The paper's
//! central criticism (Secs. 1 and 3): for a reflector attack the apparent
//! sources are innocent reflectors — often DNS or web servers — so these
//! filters "may completely cut off legitimate servers or complete networks
//! …, thus amplifying the effects of the attack". Both filter intensities
//! seen in practice are provided and compared in experiment E4.

use dtcs_netsim::{
    AgentCtx, DropReason, LinkId, NodeAgent, NodeId, Packet, Prefix, Simulator, Verdict,
};

/// What traffic from an identified source prefix is blocked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockScope {
    /// Everything the identified AS emits (operator null-routes the
    /// prefix: maximal collateral).
    AllTraffic,
    /// Only traffic toward the victim's prefix (surgical, but the victim
    /// still loses any service those sources provided to it).
    TowardVictim(Prefix),
}

/// Filter agent dropping traffic from identified source prefixes.
///
/// Two match modes combine (disjunctively):
///
/// * claimed-source matching — packets whose `src` falls in a blocked
///   prefix (effective against honest sources, e.g. reflector replies);
/// * origin blocking — when installed *at* an identified AS with
///   `block_local_origin`, everything the AS itself emits is dropped
///   regardless of the (possibly spoofed) source field. This is what a
///   real null-route of the AS does, and it is the only variant that
///   bites a randomly-spoofing flood.
pub struct PrefixBlockAgent {
    blocked: Vec<Prefix>,
    scope: BlockScope,
    reason: DropReason,
    block_local_origin: bool,
}

impl PrefixBlockAgent {
    /// Block the given source prefixes with the given scope. `reason`
    /// distinguishes traceback-driven filters from manual blacklists in
    /// the drop statistics.
    pub fn new(blocked: Vec<Prefix>, scope: BlockScope, reason: DropReason) -> PrefixBlockAgent {
        PrefixBlockAgent {
            blocked,
            scope,
            reason,
            block_local_origin: false,
        }
    }

    /// Also drop everything emitted locally at this node (install at an
    /// identified AS to model null-routing it).
    pub fn blocking_local_origin(mut self) -> PrefixBlockAgent {
        self.block_local_origin = true;
        self
    }
}

impl NodeAgent for PrefixBlockAgent {
    fn name(&self) -> &'static str {
        "prefix-block"
    }

    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        from: Option<LinkId>,
    ) -> Verdict {
        let src_match = self.blocked.iter().any(|p| p.contains(pkt.src))
            || (self.block_local_origin && from.is_none());
        if !src_match {
            return Verdict::Forward;
        }
        match self.scope {
            BlockScope::AllTraffic => {
                if ctx.trace_wants(pkt) {
                    ctx.trace_verdict_detail("scope=all");
                }
                Verdict::Drop(self.reason)
            }
            BlockScope::TowardVictim(vp) => {
                if vp.contains(pkt.dst) {
                    if ctx.trace_wants(pkt) {
                        ctx.trace_verdict_detail("scope=toward-victim");
                    }
                    Verdict::Drop(self.reason)
                } else {
                    Verdict::Forward
                }
            }
        }
    }
}

/// Install traceback-driven filters against `identified` source ASes.
///
/// Filters are installed *at the identified ASes themselves* (their
/// uplink), mirroring an operator null-routing the reported origin, and at
/// the victim's own AS as backstop.
pub fn install_traceback_filters(
    sim: &mut Simulator,
    identified: &[NodeId],
    victim_node: NodeId,
    scope: BlockScope,
) {
    let blocked: Vec<Prefix> = identified.iter().map(|&n| Prefix::of_node(n)).collect();
    if blocked.is_empty() {
        return;
    }
    for &n in identified {
        sim.add_agent(
            n,
            Box::new(
                PrefixBlockAgent::new(blocked.clone(), scope, DropReason::TracebackFilter)
                    .blocking_local_origin(),
            ),
        );
    }
    sim.add_agent(
        victim_node,
        Box::new(PrefixBlockAgent::new(
            blocked,
            scope,
            DropReason::TracebackFilter,
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, PacketBuilder, Proto, SimTime, Topology, TrafficClass};

    #[test]
    fn all_traffic_scope_cuts_everything_from_source() {
        let topo = Topology::line(3);
        let mut sim = dtcs_netsim::Simulator::new(topo, 1);
        install_traceback_filters(&mut sim, &[NodeId(0)], NodeId(2), BlockScope::AllTraffic);
        sim.install_app(Addr::new(NodeId(1), 1), Box::new(dtcs_netsim::SinkApp));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        // Traffic to *anyone* from node 0 dies.
        for dst in [Addr::new(NodeId(1), 1), Addr::new(NodeId(2), 1)] {
            sim.emit_now(
                NodeId(0),
                PacketBuilder::new(
                    Addr::new(NodeId(0), 1),
                    dst,
                    Proto::TcpData,
                    TrafficClass::LegitRequest,
                ),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::TracebackFilter).pkts,
            2
        );
        assert_eq!(
            sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
            0
        );
    }

    #[test]
    fn toward_victim_scope_spares_third_parties() {
        let topo = Topology::line(3);
        let mut sim = dtcs_netsim::Simulator::new(topo, 1);
        install_traceback_filters(
            &mut sim,
            &[NodeId(0)],
            NodeId(2),
            BlockScope::TowardVictim(Prefix::of_node(NodeId(2))),
        );
        sim.install_app(Addr::new(NodeId(1), 1), Box::new(dtcs_netsim::SinkApp));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                Addr::new(NodeId(2), 1), // toward victim: dropped
                Proto::TcpData,
                TrafficClass::LegitRequest,
            ),
        );
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                Addr::new(NodeId(1), 1), // third party: passes
                Proto::TcpData,
                TrafficClass::LegitRequest,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats.drops_for_reason(DropReason::TracebackFilter).pkts,
            1
        );
        assert_eq!(
            sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
            1
        );
    }
}
