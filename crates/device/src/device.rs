//! The adaptive traffic-processing device (Figs. 2 and 6).
//!
//! Attached beside a router as a [`NodeAgent`], the device redirects to
//! itself exactly the traffic whose source or destination address is
//! registered to a network user, and runs that user's verified service
//! graphs over it: the *first processing stage* on behalf of the source
//! owner, the *second* on behalf of the destination owner (Sec. 4.1's
//! control handover). Everything else takes "the direct path through the
//! router" — a longest-prefix-match miss and no further cost.
//!
//! Runtime safety (Sec. 4.5) on top of the deployment-time verifier:
//!
//! * modules get a shrink-only [`PacketView`] — headers are untouchable by
//!   construction;
//! * the device emits no data-plane packets at all, so the packet rate
//!   cannot increase;
//! * telemetry (trigger events, log notices) is charged against a byte
//!   budget proportional to processed traffic (footnote 1 of the paper);
//!   events beyond the budget are suppressed and counted.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use dtcs_netsim::{
    AgentCtx, ControlMsg, CpMeta, CpTraceEvent, DropReason, LinkId, NodeAgent, NodeId, Packet,
    Prefix, RouteOracle, SimTime, Verdict,
};

use crate::graph::ServiceGraph;
use crate::modules::ModuleAction;
use crate::owner::{OwnerId, OwnerTable};
use crate::safety::{SafetyVerifier, SafetyViolation};
use crate::spec::{ServiceSpec, Stage};
use crate::support::LogEntry;
use crate::view::{DeviceContext, DeviceEvent, EntryKind, PacketView};

/// Bytes charged per telemetry event (event header + digest payload).
const EVENT_BYTES: u64 = 64;

/// Agent-timer token for the lease reaper. The device is the only timer
/// user on its node, so a single low token suffices; every leased install
/// arms one timer at its `lease_until`, and timers for since-renewed
/// leases fire into a no-op.
const TOKEN_LEASE: u64 = 1;

/// Management command accepted by a device (sent by its ISP's network
/// management system, or directly in tests).
#[derive(Clone, Debug)]
pub enum DeviceCommand {
    /// Register an owner's prefix with a telemetry contact node.
    RegisterOwner {
        /// The owner.
        owner: OwnerId,
        /// Prefixes the owner controls.
        prefixes: Vec<Prefix>,
        /// Node that receives this owner's telemetry.
        contact: NodeId,
    },
    /// Remove an owner's prefixes and services.
    UnregisterOwner {
        /// The owner.
        owner: OwnerId,
    },
    /// Install (verify + instantiate) a service graph. Idempotent on
    /// (owner, stage, [`ServiceSpec::content_hash`]): re-installing a
    /// byte-identical spec acks without touching the running graph, so
    /// control-plane retransmits cannot reset runtime state — but the
    /// lease is refreshed either way, which is how renewals work.
    InstallService {
        /// Owning user.
        owner: OwnerId,
        /// Source- or destination-side stage.
        stage: Stage,
        /// The graph description.
        spec: ServiceSpec,
        /// Management transaction this install belongs to; echoed in the
        /// reply so the NMS can attribute acks under retries (0 = none).
        txn: u64,
        /// Authority horizon: the device autonomously uninstalls this
        /// slot's services at this instant unless a later install pushes
        /// it forward ([`SimTime::MAX`] = no lease, never expires).
        /// Installed over the control plane the expiry is wheel-scheduled;
        /// via [`AdaptiveDevice::apply`] no timer exists, so setup code
        /// should pass [`SimTime::MAX`].
        lease_until: SimTime,
    },
    /// Remove a service graph. Idempotent: removing an absent slot still
    /// acks with [`DeviceReply::RemoveOk`], so withdrawal retransmits and
    /// lease reaps cannot wedge the owner's teardown.
    RemoveService {
        /// Owning user.
        owner: OwnerId,
        /// Which stage.
        stage: Stage,
        /// Management transaction this removal belongs to; echoed in the
        /// reply (0 = none).
        txn: u64,
    },
    /// Activate or deactivate an installed service.
    SetServiceActive {
        /// Owning user.
        owner: OwnerId,
        /// Which stage.
        stage: Stage,
        /// Desired activation state.
        active: bool,
    },
    /// Flip one module's enable bit inside a service graph.
    SetModuleEnabled {
        /// Owning user.
        owner: OwnerId,
        /// Which stage.
        stage: Stage,
        /// Module index in the graph.
        module: usize,
        /// Desired state.
        enabled: bool,
    },
    /// Traceback support: ask whether a packet digest was seen in a window.
    QueryDigest {
        /// Owner whose backlog to consult.
        owner: OwnerId,
        /// Packet digest.
        digest: u64,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Node to send the [`DeviceReply::DigestAnswer`] to.
        reply_to: NodeId,
    },
    /// Collect a service's buffered log entries.
    ReadLog {
        /// Owning user.
        owner: OwnerId,
        /// Which stage.
        stage: Stage,
        /// Node to send the [`DeviceReply::LogData`] to.
        reply_to: NodeId,
    },
    /// Reconciliation support: report every installed service as
    /// `(owner, stage, spec hash)` so the NMS anti-entropy sweep can
    /// detect state lost to a crash.
    QueryInventory {
        /// Node to send the [`DeviceReply::Inventory`] to.
        reply_to: NodeId,
    },
}

/// Replies a device sends back over the control plane.
#[derive(Clone, Debug)]
pub enum DeviceReply {
    /// Service installed successfully.
    InstallOk {
        /// Device node.
        node: NodeId,
        /// Owner.
        owner: OwnerId,
        /// Stage.
        stage: Stage,
        /// Echo of the install command's transaction id.
        txn: u64,
    },
    /// Safety verifier rejected the spec.
    InstallRejected {
        /// Device node.
        node: NodeId,
        /// Owner.
        owner: OwnerId,
        /// Stage.
        stage: Stage,
        /// Why.
        violation: SafetyViolation,
        /// Echo of the install command's transaction id.
        txn: u64,
    },
    /// Answer to a [`DeviceCommand::QueryDigest`].
    DigestAnswer {
        /// Device node.
        node: NodeId,
        /// Queried digest.
        digest: u64,
        /// `Some(true)`: seen; `Some(false)`: not seen; `None`: no backlog.
        hit: Option<bool>,
    },
    /// Answer to a [`DeviceCommand::ReadLog`].
    LogData {
        /// Device node.
        node: NodeId,
        /// Owner.
        owner: OwnerId,
        /// Collected entries.
        entries: Vec<LogEntry>,
    },
    /// Answer to a [`DeviceCommand::QueryInventory`]: everything
    /// currently installed, as reconciliation keys.
    Inventory {
        /// Device node.
        node: NodeId,
        /// One entry per installed service graph.
        installed: Vec<(OwnerId, Stage, u64)>,
    },
    /// Service slot removed (or already absent) after a
    /// [`DeviceCommand::RemoveService`].
    RemoveOk {
        /// Device node.
        node: NodeId,
        /// Owner.
        owner: OwnerId,
        /// Stage.
        stage: Stage,
        /// Echo of the remove command's transaction id.
        txn: u64,
    },
}

impl DeviceReply {
    /// Stable message-kind id for the control-plane flight recorder
    /// ([`dtcs_netsim::CpMeta::kind`]). Continues the `control` crate's
    /// `CpMsg::kind_id` numbering (1–9) and its device-command ids
    /// (10–12): 13 = InstallOk, 14 = InstallRejected, 15 = Inventory,
    /// 16 = other device replies, 22 = RemoveOk (17–21 are `control`
    /// crate withdrawal messages and the RemoveService command).
    pub fn kind_id(&self) -> u8 {
        match self {
            DeviceReply::InstallOk { .. } => 13,
            DeviceReply::InstallRejected { .. } => 14,
            DeviceReply::Inventory { .. } => 15,
            DeviceReply::DigestAnswer { .. } | DeviceReply::LogData { .. } => 16,
            DeviceReply::RemoveOk { .. } => 22,
        }
    }
}

/// Counters shared with the owning scenario via [`DeviceHandle`].
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// All packets that transited this node while the device was attached.
    pub seen_pkts: u64,
    /// Packets redirected through at least one service graph.
    pub redirected_pkts: u64,
    /// Bytes redirected.
    pub redirected_bytes: u64,
    /// Drops by reason.
    pub dropped: HashMap<DropReason, u64>,
    /// Telemetry events emitted within budget.
    pub telemetry_events: u64,
    /// Telemetry bytes emitted.
    pub telemetry_bytes: u64,
    /// Telemetry events suppressed by the budget guard.
    pub suppressed_events: u64,
    /// Current primitive rule count across installed services.
    pub rule_count: usize,
    /// Install attempts rejected by the safety verifier.
    pub rejected_installs: u64,
    /// Installs acked without touching the running graph because the spec
    /// hash matched what is already installed (retransmit suppression).
    pub idempotent_installs: u64,
    /// Crash/reboot cycles this device went through (volatile state —
    /// owners, services, telemetry budget — was lost each time).
    pub crashes: u64,
    /// Service slots autonomously uninstalled because their lease ran out
    /// before any renewal arrived (orphan reaps).
    pub lease_reaps: u64,
    /// Instant of the most recent lease reap (None = never); scenarios
    /// use this to measure orphan-filter dwell time.
    pub last_reap_at: Option<SimTime>,
}

/// Shared read handle onto a running device's stats.
pub type DeviceHandle = Arc<Mutex<DeviceStats>>;

/// The adaptive device agent.
pub struct AdaptiveDevice {
    ctx: DeviceContext,
    owners: OwnerTable,
    /// Installed service graphs. An `(owner, stage)` slot holds a *list*:
    /// users compose several services (e.g. a firewall plus statistics)
    /// and they execute in installation order. Reinstalling a service
    /// with the same name replaces it in place.
    services: HashMap<(OwnerId, Stage), Vec<ServiceGraph>>,
    /// Authority horizon per service slot: the slot is reaped when the
    /// clock passes this instant without a renewing install. Absent or
    /// `SimTime::MAX` = unleased (setup-time installs).
    leases: HashMap<(OwnerId, Stage), SimTime>,
    verifier: SafetyVerifier,
    /// Only this node's commands are accepted when set (the ISP NMS).
    manager: Option<NodeId>,
    stats: DeviceHandle,
    /// Telemetry bytes allowed per processed byte (footnote 1 allowance).
    telemetry_ratio: f64,
    /// Flat telemetry allowance so lightly-loaded devices can still notify.
    telemetry_floor: u64,
    processed_bytes: u64,
    events_buf: Vec<DeviceEvent>,
    /// Optional synchronous event tap for scenario code / tests.
    event_tap: Option<Sender<DeviceEvent>>,
    entry_cache: HashMap<LinkId, EntryKind>,
    /// Memoized route-consistency queries for the anti-spoofing check.
    /// Epoch-synced against the routing table's delta history: a localized
    /// link flip evicts only the damaged destinations' answers, keeping
    /// the rest warm across failure injection (see `dtcs_netsim::oracle`).
    oracle: RouteOracle,
}

impl AdaptiveDevice {
    /// Create a device for `node`. `manager` restricts who may reconfigure
    /// it (`None` accepts commands from any node — test use only).
    pub fn new(node: NodeId, manager: Option<NodeId>) -> (AdaptiveDevice, DeviceHandle) {
        let stats: DeviceHandle = Arc::new(Mutex::new(DeviceStats::default()));
        let dev = AdaptiveDevice {
            ctx: DeviceContext {
                node,
                local_prefixes: vec![Prefix::of_node(node)],
                is_transit: false,
            },
            owners: OwnerTable::new(),
            services: HashMap::new(),
            leases: HashMap::new(),
            verifier: SafetyVerifier::default(),
            manager,
            stats: stats.clone(),
            telemetry_ratio: 0.01,
            telemetry_floor: 64 * 1024,
            processed_bytes: 0,
            events_buf: Vec::new(),
            event_tap: None,
            entry_cache: HashMap::new(),
            oracle: RouteOracle::new(node),
        };
        (dev, stats)
    }

    /// Attach a synchronous event tap (scenario/test observation).
    pub fn set_event_tap(&mut self, tap: Sender<DeviceEvent>) {
        self.event_tap = Some(tap);
    }

    /// Configure the telemetry allowance (footnote 1 of the paper): at
    /// most `ratio` bytes of telemetry per processed data byte, plus a
    /// flat `floor` so lightly-loaded devices can still notify.
    pub fn set_telemetry_budget(&mut self, ratio: f64, floor: u64) {
        self.telemetry_ratio = ratio.clamp(0.0, 1.0);
        self.telemetry_floor = floor;
    }

    /// Direct (non-control-plane) command application, for scenario setup
    /// before the simulation starts.
    pub fn apply(&mut self, cmd: DeviceCommand) -> Option<DeviceReply> {
        self.handle_command(cmd)
    }

    fn handle_command(&mut self, cmd: DeviceCommand) -> Option<DeviceReply> {
        match cmd {
            DeviceCommand::RegisterOwner {
                owner,
                prefixes,
                contact,
            } => {
                for p in prefixes {
                    self.owners.register(p, owner, contact);
                }
                None
            }
            DeviceCommand::UnregisterOwner { owner } => {
                for p in self.owners.prefixes_of(owner) {
                    self.owners.unregister(p);
                }
                let removed: Vec<(OwnerId, Stage)> = self
                    .services
                    .keys()
                    .filter(|(o, _)| *o == owner)
                    .copied()
                    .collect();
                for k in removed {
                    self.services.remove(&k);
                    self.leases.remove(&k);
                }
                self.refresh_rule_count();
                None
            }
            DeviceCommand::InstallService {
                owner,
                stage,
                spec,
                txn,
                lease_until,
            } => {
                // Idempotency short-circuit: a byte-identical spec is
                // already running — ack without re-instantiating, so a
                // retransmitted install cannot reset trigger/logger state.
                // The lease still moves forward: this path IS a renewal.
                let hash = spec.content_hash();
                if self
                    .services
                    .get(&(owner, stage))
                    .into_iter()
                    .flatten()
                    .any(|g| g.name == spec.name && g.spec_hash == hash)
                {
                    self.leases.insert((owner, stage), lease_until);
                    self.stats.lock().idempotent_installs += 1;
                    return Some(DeviceReply::InstallOk {
                        node: self.ctx.node,
                        owner,
                        stage,
                        txn,
                    });
                }
                let reply = match self.verifier.verify(&spec) {
                    Ok(()) => {
                        let graphs = self.services.entry((owner, stage)).or_default();
                        let graph = ServiceGraph::from_spec(&spec);
                        let mut delta = graph.rule_count as i64;
                        match graphs.iter_mut().find(|g| g.name == spec.name) {
                            Some(slot) => {
                                delta -= slot.rule_count as i64; // changed spec: replace
                                *slot = graph;
                            }
                            None => graphs.push(graph),
                        }
                        self.adjust_rule_count(delta);
                        self.leases.insert((owner, stage), lease_until);
                        DeviceReply::InstallOk {
                            node: self.ctx.node,
                            owner,
                            stage,
                            txn,
                        }
                    }
                    Err(violation) => {
                        self.stats.lock().rejected_installs += 1;
                        DeviceReply::InstallRejected {
                            node: self.ctx.node,
                            owner,
                            stage,
                            violation,
                            txn,
                        }
                    }
                };
                Some(reply)
            }
            DeviceCommand::RemoveService { owner, stage, txn } => {
                if let Some(graphs) = self.services.remove(&(owner, stage)) {
                    let removed: usize = graphs.iter().map(|g| g.rule_count).sum();
                    self.adjust_rule_count(-(removed as i64));
                }
                self.leases.remove(&(owner, stage));
                Some(DeviceReply::RemoveOk {
                    node: self.ctx.node,
                    owner,
                    stage,
                    txn,
                })
            }
            DeviceCommand::SetServiceActive {
                owner,
                stage,
                active,
            } => {
                if let Some(graphs) = self.services.get_mut(&(owner, stage)) {
                    for g in graphs {
                        g.active = active;
                    }
                }
                None
            }
            DeviceCommand::SetModuleEnabled {
                owner,
                stage,
                module,
                enabled,
            } => {
                if let Some(graphs) = self.services.get_mut(&(owner, stage)) {
                    for g in graphs {
                        g.set_module_enabled(module, enabled);
                    }
                }
                None
            }
            DeviceCommand::QueryDigest {
                owner,
                digest,
                from,
                to,
                reply_to: _,
            } => {
                let mut hit: Option<bool> = None;
                for stage in [Stage::Src, Stage::Dst] {
                    for g in self.services.get(&(owner, stage)).into_iter().flatten() {
                        if let Some(h) = g.query_digest(digest, from, to) {
                            hit = Some(hit.unwrap_or(false) || h);
                        }
                    }
                }
                Some(DeviceReply::DigestAnswer {
                    node: self.ctx.node,
                    digest,
                    hit,
                })
            }
            DeviceCommand::ReadLog {
                owner,
                stage,
                reply_to: _,
            } => {
                let entries = self
                    .services
                    .get_mut(&(owner, stage))
                    .map(|graphs| graphs.iter_mut().flat_map(|g| g.drain_logs()).collect())
                    .unwrap_or_default();
                Some(DeviceReply::LogData {
                    node: self.ctx.node,
                    owner,
                    entries,
                })
            }
            DeviceCommand::QueryInventory { reply_to: _ } => {
                let mut installed: Vec<(OwnerId, Stage, u64)> = self
                    .services
                    .iter()
                    .flat_map(|((owner, stage), graphs)| {
                        graphs.iter().map(move |g| (*owner, *stage, g.spec_hash))
                    })
                    .collect();
                installed.sort(); // HashMap order is not deterministic
                Some(DeviceReply::Inventory {
                    node: self.ctx.node,
                    installed,
                })
            }
        }
    }

    fn refresh_rule_count(&mut self) {
        let count: usize = self
            .services
            .values()
            .flat_map(|graphs| graphs.iter())
            .map(|g| g.rule_count)
            .sum();
        self.stats.lock().rule_count = count;
    }

    fn adjust_rule_count(&mut self, delta: i64) {
        let mut s = self.stats.lock();
        s.rule_count = (s.rule_count as i64 + delta).max(0) as usize;
    }

    /// Classify how a packet entered this node (cached per link).
    fn classify_entry(&mut self, ctx: &AgentCtx<'_>, from: Option<LinkId>) -> EntryKind {
        let Some(link) = from else {
            return EntryKind::Local;
        };
        if let Some(cached) = self.entry_cache.get(&link) {
            return cached.clone();
        }
        let peer = ctx.topo.links[link.0].other(self.ctx.node);
        let kind = if ctx.topo.is_customer_of(peer, self.ctx.node) {
            EntryKind::Customer(vec![Prefix::of_node(peer)])
        } else {
            EntryKind::Transit
        };
        self.entry_cache.insert(link, kind.clone());
        kind
    }

    /// Charge and flush buffered telemetry events.
    fn flush_events(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.events_buf.is_empty() {
            return;
        }
        let events: Vec<DeviceEvent> = self.events_buf.drain(..).collect();
        let mut stats = self.stats.lock();
        for ev in events {
            let budget =
                (self.processed_bytes as f64 * self.telemetry_ratio) as u64 + self.telemetry_floor;
            if stats.telemetry_bytes + EVENT_BYTES > budget {
                stats.suppressed_events += 1;
                continue;
            }
            stats.telemetry_events += 1;
            stats.telemetry_bytes += EVENT_BYTES;
            let owner = match &ev {
                DeviceEvent::TriggerFired { owner, .. }
                | DeviceEvent::TriggerRelieved { owner, .. }
                | DeviceEvent::LogReady { owner, .. } => *owner,
            };
            if let Some(tap) = &self.event_tap {
                let _ = tap.send(ev.clone());
            }
            // Deliver to the owner's contact node over the control plane.
            if let Some(contact) = self
                .owners
                .prefixes_of(owner)
                .first()
                .and_then(|p| self.owners.owner_of(p.first()))
                .map(|e| e.contact)
            {
                let delay = ctx.path_delay(contact);
                ctx.send_control(contact, delay, ev);
            }
        }
    }

    /// Shared stats handle.
    pub fn handle(&self) -> DeviceHandle {
        self.stats.clone()
    }
}

impl NodeAgent for AdaptiveDevice {
    fn name(&self) -> &'static str {
        "adaptive-device"
    }

    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        from: Option<LinkId>,
    ) -> Verdict {
        {
            self.stats.lock().seen_pkts += 1;
        }
        // Redirect decision: does anyone own this packet?
        let src_owner = self.owners.owner_of(pkt.src).copied();
        let dst_owner = self.owners.owner_of(pkt.dst).copied();
        if src_owner.is_none() && dst_owner.is_none() {
            return Verdict::Forward; // direct path through the router
        }
        let entry = self.classify_entry(ctx, from);
        self.processed_bytes += pkt.size as u64;
        {
            let mut s = self.stats.lock();
            s.redirected_pkts += 1;
            s.redirected_bytes += pkt.size as u64;
        }

        // Spoof verdict for anti-spoofing modules: local emissions must
        // carry a local source; customer-side arrivals must be route-
        // consistent with the claimed source (Park & Lee route-based
        // filtering); transit arrivals are never judged.
        let spoof_suspect = match &entry {
            EntryKind::Local => !self.ctx.local_prefixes.iter().any(|p| p.contains(pkt.src)),
            EntryKind::Customer(_) => {
                let expected =
                    self.oracle
                        .enters_via(ctx.routing, ctx.topo, pkt.src.node(), pkt.dst.node());
                match (expected, from) {
                    (Some(via), Some(link)) => ctx.topo.links[link.0].other(self.ctx.node) != via,
                    _ => true, // claimed source could not be entering here
                }
            }
            EntryKind::Transit => false,
        };

        let mut verdict = Verdict::Forward;
        // Stage 1: source owner's processing; Stage 2: destination owner's
        // (Sec. 4.1 control handover order).
        let stages = [
            (src_owner.map(|e| e.owner), Stage::Src),
            (dst_owner.map(|e| e.owner), Stage::Dst),
        ];
        'stages: for (owner, stage) in stages {
            let Some(owner) = owner else { continue };
            let Some(graphs) = self.services.get_mut(&(owner, stage)) else {
                continue;
            };
            for graph in graphs.iter_mut() {
                let mut view = PacketView::new(pkt);
                let action = graph.process(
                    ctx.now,
                    &self.ctx,
                    &entry,
                    spoof_suspect,
                    from,
                    owner,
                    &mut self.events_buf,
                    &mut view,
                );
                if let ModuleAction::Drop(reason) = action {
                    if ctx.trace_wants(pkt) {
                        ctx.trace_verdict_detail(format!(
                            "svc={} stage={:?} owner={}",
                            graph.name, stage, owner.0
                        ));
                    }
                    *self.stats.lock().dropped.entry(reason).or_insert(0) += 1;
                    verdict = Verdict::Drop(reason);
                    break 'stages;
                }
            }
        }
        self.flush_events(ctx);
        verdict
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(cmd) = msg.get::<DeviceCommand>() else {
            return;
        };
        if let Some(mgr) = self.manager {
            if msg.from != mgr && msg.from != self.ctx.node {
                return; // not our manager: ignore (Sec. 4.5 misuse guard)
            }
        }
        let reply_to = match cmd {
            DeviceCommand::QueryDigest { reply_to, .. } => Some(*reply_to),
            DeviceCommand::ReadLog { reply_to, .. } => Some(*reply_to),
            DeviceCommand::QueryInventory { reply_to } => Some(*reply_to),
            _ => Some(msg.from),
        };
        let lease_until = match cmd {
            DeviceCommand::InstallService { lease_until, .. } => Some(*lease_until),
            _ => None,
        };
        if let Some(reply) = self.handle_command(cmd.clone()) {
            // Leased install accepted: wheel-schedule the reaper at the
            // authority horizon. Renewals arm a fresh timer; the old one
            // fires into a no-op because the lease has moved past it.
            if let (Some(lease), DeviceReply::InstallOk { .. }) = (lease_until, &reply) {
                if lease != SimTime::MAX {
                    ctx.set_timer(lease.saturating_since(ctx.now), TOKEN_LEASE);
                }
            }
            if ctx.cp_trace_enabled() {
                if let Some(m) = msg.meta {
                    let state = match &reply {
                        DeviceReply::InstallOk { .. } => Some("install_ok"),
                        DeviceReply::InstallRejected { .. } => Some("install_rejected"),
                        _ => None,
                    };
                    if let Some(state) = state {
                        ctx.cp_event(CpTraceEvent::State {
                            t: ctx.now.as_nanos(),
                            origin: m.origin,
                            txn: m.txn,
                            node: ctx.node,
                            actor: "device",
                            state,
                        });
                    }
                }
            }
            if let Some(to) = reply_to {
                let delay = ctx.path_delay(to);
                // Echo the request's transaction identity on the reply so
                // the flight recorder traces it under the same key.
                match msg.meta {
                    Some(m) => {
                        let meta = CpMeta {
                            kind: reply.kind_id(),
                            ..m
                        };
                        ctx.send_control_keyed(to, delay, reply, meta);
                    }
                    None => ctx.send_control(to, delay, reply),
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token != TOKEN_LEASE {
            return;
        }
        // Reap every slot whose authority horizon has passed. Sorted so
        // the rule-count walk (and any future per-reap telemetry) is
        // deterministic despite the HashMap.
        let mut expired: Vec<(OwnerId, Stage)> = self
            .leases
            .iter()
            .filter(|(_, &until)| until <= ctx.now)
            .map(|(&k, _)| k)
            .collect();
        expired.sort();
        if expired.is_empty() {
            return; // stale timer: the lease was renewed past this firing
        }
        for key in expired {
            self.leases.remove(&key);
            if let Some(graphs) = self.services.remove(&key) {
                let removed: usize = graphs.iter().map(|g| g.rule_count).sum();
                self.adjust_rule_count(-(removed as i64));
            }
            let mut s = self.stats.lock();
            s.lease_reaps += 1;
            s.last_reap_at = Some(ctx.now);
        }
    }

    fn on_crash(&mut self, _ctx: &mut AgentCtx<'_>) {
        // A reboot loses everything provisioned at run time: owner
        // registrations, installed service graphs (with their trigger /
        // logger / backlog state), buffered telemetry, and the processed-
        // byte telemetry budget. The manager binding and verifier are
        // device firmware — they survive. The NMS reconciliation sweep is
        // responsible for re-provisioning.
        self.owners = OwnerTable::new();
        self.services.clear();
        self.leases.clear();
        self.events_buf.clear();
        self.entry_cache.clear();
        self.processed_bytes = 0;
        let mut s = self.stats.lock();
        s.rule_count = 0;
        s.crashes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FilterRule, MatchExpr, ModuleSpec};
    use dtcs_netsim::{Addr, PacketBuilder, Proto, SimDuration, Simulator, Topology, TrafficClass};

    fn victim_owner() -> OwnerId {
        OwnerId(42)
    }

    /// Line topology: 0 (client) - 1 (device here) - 2 (victim).
    fn sim_with_device() -> (Simulator, DeviceHandle) {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner: victim_owner(),
            prefixes: vec![Prefix::of_node(NodeId(2))],
            contact: NodeId(2),
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain(
                "fw",
                vec![ModuleSpec::Filter {
                    rules: vec![FilterRule {
                        expr: MatchExpr::proto(Proto::Udp),
                        drop: true,
                    }],
                }],
            ),
        });
        sim.add_agent(NodeId(1), Box::new(dev));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        (sim, handle)
    }

    fn send(sim: &mut Simulator, proto: Proto, dst: Addr) {
        sim.emit_now(
            NodeId(0),
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                dst,
                proto,
                TrafficClass::Background,
            )
            .size(100),
        );
    }

    #[test]
    fn device_filters_owned_traffic_only() {
        let (mut sim, handle) = sim_with_device();
        let victim = Addr::new(NodeId(2), 1);
        send(&mut sim, Proto::Udp, victim); // owned + matches filter: drop
        send(&mut sim, Proto::TcpData, victim); // owned, no match: pass
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
        assert_eq!(sim.stats.drops_for_reason(DropReason::DeviceFilter).pkts, 1);
        let s = handle.lock();
        assert_eq!(s.redirected_pkts, 2);
        assert_eq!(s.dropped[&DropReason::DeviceFilter], 1);
    }

    #[test]
    fn unowned_traffic_takes_direct_path() {
        let (mut sim, handle) = sim_with_device();
        // Node 1 hosts no registered prefix for src node 0 or dst node 1.
        let unowned_dst = Addr::new(NodeId(1), 7);
        sim.install_app(unowned_dst, Box::new(dtcs_netsim::SinkApp));
        send(&mut sim, Proto::Udp, unowned_dst);
        sim.run_until(SimTime::from_secs(1));
        let s = handle.lock();
        assert_eq!(s.seen_pkts, 1);
        assert_eq!(s.redirected_pkts, 0, "no owner: direct path");
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
    }

    #[test]
    fn payload_signature_filtering_contains_a_worm() {
        // Sec. 4.2 payload-hash rules + Sec. 2.1 worm motivation: the
        // owner blocks packets carrying known worm payload hashes while
        // identical-header clean traffic passes.
        let (mut sim, handle) = sim_with_device();
        let victim = Addr::new(NodeId(2), 1);
        const WORM_SIG: u64 = 0x5A5A_BEEF;
        // Replace the UDP firewall with a signature filter.
        sim.deliver_control(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner: victim_owner(),
                stage: Stage::Dst,
                spec: ServiceSpec::chain(
                    "fw", // same name: replaces the UDP filter
                    vec![ModuleSpec::Filter {
                        rules: vec![FilterRule {
                            expr: MatchExpr::any().with_payload_hashes(vec![WORM_SIG]),
                            drop: true,
                        }],
                    }],
                ),
            },
        );
        sim.run_until(SimTime::from_millis(10));
        // A worm packet and a clean packet, identical except the payload.
        for tag in [WORM_SIG, 0x1111] {
            sim.emit_now(
                NodeId(0),
                PacketBuilder::new(
                    Addr::new(NodeId(0), 1),
                    victim,
                    Proto::TcpData,
                    TrafficClass::Background,
                )
                .size(400)
                .tag(tag),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::DeviceFilter).pkts, 1);
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
        assert_eq!(handle.lock().dropped[&DropReason::DeviceFilter], 1);
    }

    #[test]
    fn unregister_owner_clears_everything() {
        let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner: victim_owner(),
            prefixes: vec![Prefix::of_node(NodeId(2))],
            contact: NodeId(2),
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]),
        });
        assert_eq!(handle.lock().rule_count, 1);
        dev.apply(DeviceCommand::UnregisterOwner {
            owner: victim_owner(),
        });
        assert_eq!(
            handle.lock().rule_count,
            0,
            "services removed with the owner"
        );
        // Digest queries after removal: no backlog anywhere.
        let reply = dev.apply(DeviceCommand::QueryDigest {
            owner: victim_owner(),
            digest: 1,
            from: SimTime::ZERO,
            to: SimTime::from_secs(1),
            reply_to: NodeId(2),
        });
        assert!(matches!(
            reply,
            Some(DeviceReply::DigestAnswer { hit: None, .. })
        ));
    }

    #[test]
    fn unsafe_install_is_rejected() {
        let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
        let reply = dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: OwnerId(7),
            stage: Stage::Src,
            spec: ServiceSpec::chain("evil", vec![ModuleSpec::Amplify { factor: 100 }]),
        });
        assert!(matches!(
            reply,
            Some(DeviceReply::InstallRejected {
                violation: SafetyViolation::Amplification { .. },
                ..
            })
        ));
        assert_eq!(handle.lock().rejected_installs, 1);
        assert_eq!(handle.lock().rule_count, 0);
        // A benign install afterwards still works.
        let reply = dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: OwnerId(7),
            stage: Stage::Src,
            spec: ServiceSpec::chain("ok", vec![ModuleSpec::AntiSpoof]),
        });
        assert!(matches!(reply, Some(DeviceReply::InstallOk { .. })));
        assert_eq!(handle.lock().rule_count, 1);
    }

    #[test]
    fn composed_services_run_in_order() {
        // A firewall plus a logger at the same (owner, Dst) slot: both
        // execute; reinstalling the firewall by name replaces it instead
        // of stacking a duplicate.
        let (mut sim, handle) = sim_with_device();
        // sim_with_device installed "fw" dropping UDP; add a logger too.
        // Reach the device via control from its own node (manager None).
        sim.deliver_control(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner: victim_owner(),
                stage: Stage::Dst,
                spec: ServiceSpec::chain(
                    "stats",
                    vec![ModuleSpec::Logger {
                        capacity: 64,
                        sample_one_in: 1,
                    }],
                ),
            },
        );
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(handle.lock().rule_count, 2, "firewall + logger");
        // Reinstall the firewall (same name): rule count unchanged.
        sim.deliver_control(
            SimTime::from_millis(20),
            NodeId(1),
            NodeId(1),
            DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner: victim_owner(),
                stage: Stage::Dst,
                spec: ServiceSpec::chain(
                    "fw",
                    vec![ModuleSpec::Filter {
                        rules: vec![FilterRule {
                            expr: MatchExpr::proto(Proto::Udp),
                            drop: true,
                        }],
                    }],
                ),
            },
        );
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(handle.lock().rule_count, 2, "redeploy replaces in place");
        // Both services act: UDP dropped by fw, TCP logged+delivered.
        let victim = Addr::new(NodeId(2), 1);
        send(&mut sim, Proto::Udp, victim);
        send(&mut sim, Proto::TcpData, victim);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::DeviceFilter).pkts, 1);
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
    }

    #[test]
    fn manager_restriction_blocks_strangers() {
        let (mut dev, _handle) = AdaptiveDevice::new(NodeId(1), Some(NodeId(5)));
        // Direct apply is the trusted path; the control path checks
        // msg.from. Simulate a stranger's control message:
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 1);
        dev.apply(DeviceCommand::RegisterOwner {
            owner: OwnerId(1),
            prefixes: vec![Prefix::of_node(NodeId(2))],
            contact: NodeId(2),
        });
        let handle = dev.handle();
        sim.add_agent(NodeId(1), Box::new(dev));

        struct Stranger;
        impl NodeAgent for Stranger {
            fn name(&self) -> &'static str {
                "stranger"
            }
            fn on_packet(
                &mut self,
                ctx: &mut AgentCtx<'_>,
                _pkt: &mut Packet,
                _from: Option<LinkId>,
            ) -> Verdict {
                ctx.send_control(
                    NodeId(1),
                    SimDuration::from_millis(1),
                    DeviceCommand::InstallService {
                        txn: 0,
                        lease_until: SimTime::MAX,
                        owner: OwnerId(1),
                        stage: Stage::Dst,
                        spec: ServiceSpec::chain(
                            "fw",
                            vec![ModuleSpec::Filter {
                                rules: vec![FilterRule {
                                    expr: MatchExpr::any(),
                                    drop: true,
                                }],
                            }],
                        ),
                    },
                );
                Verdict::Forward
            }
        }
        sim.add_agent(NodeId(0), Box::new(Stranger));
        sim.install_app(Addr::new(NodeId(2), 1), Box::new(dtcs_netsim::SinkApp));
        // Trigger the stranger, then send victim-bound traffic.
        send(&mut sim, Proto::Udp, Addr::new(NodeId(2), 1));
        sim.run_until(SimTime::from_millis(100));
        send(&mut sim, Proto::Udp, Addr::new(NodeId(2), 1));
        sim.run_until(SimTime::from_secs(1));
        // The stranger's install was ignored: nothing dropped.
        assert_eq!(handle.lock().rule_count, 0);
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 2);
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner: victim_owner(),
            prefixes: vec![Prefix::of_node(NodeId(2))],
            contact: NodeId(2),
        });
        let install = |txn| DeviceCommand::InstallService {
            txn,
            lease_until: SimTime::MAX,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]),
        };
        let first = dev.apply(install(7));
        assert!(matches!(first, Some(DeviceReply::InstallOk { txn: 7, .. })));
        assert_eq!(handle.lock().idempotent_installs, 0);
        // A retransmit (same spec, new attempt's txn) re-acks without
        // touching the running graph.
        let again = dev.apply(install(8));
        assert!(matches!(again, Some(DeviceReply::InstallOk { txn: 8, .. })));
        assert_eq!(handle.lock().idempotent_installs, 1);
        assert_eq!(handle.lock().rule_count, 1);
        // A *changed* spec under the same name replaces, not re-acks.
        let changed = dev.apply(DeviceCommand::InstallService {
            txn: 9,
            lease_until: SimTime::MAX,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain(
                "fw",
                vec![ModuleSpec::Filter {
                    rules: vec![FilterRule {
                        expr: MatchExpr::proto(Proto::Udp),
                        drop: true,
                    }],
                }],
            ),
        });
        assert!(matches!(changed, Some(DeviceReply::InstallOk { .. })));
        assert_eq!(handle.lock().idempotent_installs, 1, "replace is not a dup");
    }

    #[test]
    fn inventory_lists_installed_services_sorted() {
        let (mut dev, _handle) = AdaptiveDevice::new(NodeId(1), None);
        for owner in [OwnerId(9), OwnerId(3)] {
            dev.apply(DeviceCommand::RegisterOwner {
                owner,
                prefixes: vec![Prefix::of_node(NodeId(2))],
                contact: NodeId(2),
            });
            dev.apply(DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner,
                stage: Stage::Dst,
                spec: ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]),
            });
        }
        let reply = dev.apply(DeviceCommand::QueryInventory {
            reply_to: NodeId(5),
        });
        let Some(DeviceReply::Inventory { node, installed }) = reply else {
            panic!("expected Inventory reply");
        };
        assert_eq!(node, NodeId(1));
        let hash = ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]).content_hash();
        assert_eq!(
            installed,
            vec![
                (OwnerId(3), Stage::Dst, hash),
                (OwnerId(9), Stage::Dst, hash)
            ]
        );
    }

    #[test]
    fn crash_wipes_owners_and_services_but_counts() {
        let (mut sim, handle) = sim_with_device();
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(handle.lock().rule_count, 1);
        sim.crash_node(NodeId(1));
        sim.run_until(SimTime::from_millis(2));
        let s = handle.lock();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.rule_count, 0, "volatile service state lost");
        drop(s);
        // Owned traffic now takes the direct path: registration is gone.
        send(&mut sim, Proto::Udp, Addr::new(NodeId(2), 1));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.class(TrafficClass::Background).delivered_pkts, 1);
        assert_eq!(handle.lock().redirected_pkts, 0);
    }

    fn leased_install(lease_until: SimTime) -> DeviceCommand {
        DeviceCommand::InstallService {
            txn: 1,
            lease_until,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]),
        }
    }

    #[test]
    fn expired_lease_reaps_orphaned_service() {
        let (mut sim, handle) = sim_with_device();
        // Replace the setup-time unleased install with a leased one.
        sim.deliver_control(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            leased_install(SimTime::from_millis(500)),
        );
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(handle.lock().rule_count, 1, "still within the lease");
        assert_eq!(handle.lock().lease_reaps, 0);
        sim.run_until(SimTime::from_secs(1));
        let s = handle.lock();
        assert_eq!(s.rule_count, 0, "no renewal: the filter is gone");
        assert_eq!(s.lease_reaps, 1);
        assert_eq!(s.last_reap_at, Some(SimTime::from_millis(500)));
    }

    #[test]
    fn renewal_pushes_lease_forward_and_stale_timer_noops() {
        let (mut sim, handle) = sim_with_device();
        sim.deliver_control(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            leased_install(SimTime::from_millis(500)),
        );
        // Renewal: byte-identical spec, later horizon — the idempotent
        // path must still move the lease.
        sim.deliver_control(
            SimTime::from_millis(300),
            NodeId(1),
            NodeId(1),
            leased_install(SimTime::from_millis(900)),
        );
        sim.run_until(SimTime::from_millis(700));
        let s = handle.lock();
        assert_eq!(s.rule_count, 1, "original timer fired into a no-op");
        assert_eq!(s.lease_reaps, 0);
        assert_eq!(s.idempotent_installs, 1);
        drop(s);
        sim.run_until(SimTime::from_secs(1));
        let s = handle.lock();
        assert_eq!(s.rule_count, 0, "renewed lease eventually expires too");
        assert_eq!(s.lease_reaps, 1);
        assert_eq!(s.last_reap_at, Some(SimTime::from_millis(900)));
    }

    #[test]
    fn remove_service_acks_even_when_absent() {
        let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
        let reply = dev.apply(DeviceCommand::RemoveService {
            owner: victim_owner(),
            stage: Stage::Dst,
            txn: 5,
        });
        assert!(
            matches!(reply, Some(DeviceReply::RemoveOk { txn: 5, .. })),
            "removing an absent slot still acks (idempotent teardown)"
        );
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: victim_owner(),
            stage: Stage::Dst,
            spec: ServiceSpec::chain("fw", vec![ModuleSpec::AntiSpoof]),
        });
        assert_eq!(handle.lock().rule_count, 1);
        let reply = dev.apply(DeviceCommand::RemoveService {
            owner: victim_owner(),
            stage: Stage::Dst,
            txn: 6,
        });
        assert!(matches!(reply, Some(DeviceReply::RemoveOk { txn: 6, .. })));
        assert_eq!(handle.lock().rule_count, 0);
    }
}
