//! Route-consistency oracle: memoized `enters_via` queries in amortized O(1).
//!
//! The route-based anti-spoofing check (Park & Lee, Sec. 3.2) asks, per
//! packet arriving at a filtering node: "on the real forwarding path from
//! the claimed source to the destination, which neighbour hands traffic to
//! this node?" [`Routing::enters_via`] answers by re-walking the src→dst
//! next-hop chain — O(path length) per packet, per filtering node. DDoS
//! workloads are massively flow-repetitive (the same spoofed (src, dst)
//! pairs arrive millions of times), so an E3-style coverage sweep pays that
//! walk over and over for answers that never change between routing
//! recomputes.
//!
//! A [`RouteOracle`] sits in front of the walk with a per-node cache keyed
//! by `(src_node, dst_node)` (the querying node `at` is fixed per oracle).
//! Both positive and negative answers are cached — negative answers are the
//! common case under spoofing, since most claimed sources do not enter via
//! the observed link. Correctness across failure injection comes from the
//! routing *epoch* plus a delta protocol: every [`Routing`] table carries a
//! generation counter which [`crate::sim::Simulator::set_link_up`] bumps
//! when it applies a link flip, and on the next query the oracle asks
//! [`Routing::dsts_invalidated_since`] which destinations actually changed.
//! A cached `(src, dst)` answer depends only on destination `dst`'s
//! next-hop row (the walk follows `next_hop(·, dst)`), so entries whose
//! destination survived the flip stay warm; only damaged destinations are
//! evicted. When the history cannot answer precisely (full recompute,
//! manually tagged epoch, consumer too far behind) the oracle falls back to
//! the wholesale clear. Either way it is answer-for-answer identical to
//! calling [`Routing::enters_via`] directly — pure memoization, with zero
//! behavioral drift (property-tested in this module and in
//! `crate::proptests` under random flap schedules).
//!
//! The cache itself is a small open-addressed table with a packed
//! `(src << 32) | dst` key and Fibonacci hashing, not a `std::collections::
//! HashMap`: at internet-realistic path lengths the walk costs only tens of
//! nanoseconds, so a SipHash lookup would eat most of the win. Lookups here
//! are a multiply, a shift and (almost always) one probe.

use crate::node::NodeId;
use crate::routing::Routing;
use crate::topology::Topology;

/// Slot sentinel: no key. Valid keys always have `src < n <= u32::MAX` and
/// `dst < n`, checked before insertion, so the all-ones pattern never
/// collides with a real `(src, dst)` pair that reaches the table.
const EMPTY: u64 = u64::MAX;

/// Cached "not on path / unreachable" answer.
const NONE_VAL: u32 = u32::MAX;

/// Initial table capacity (slots; power of two).
const INITIAL_SLOTS: usize = 1 << 10;

/// Largest table before the oracle resets instead of growing further.
/// Random-spoof floods can synthesize up to n² distinct keys; capping the
/// table bounds memory per filtering node (≤ 12 B × 2^17 ≈ 1.5 MiB) and
/// degrades gracefully to periodic full resets under that adversarial mix.
const MAX_SLOTS: usize = 1 << 17;

/// Open-addressed `(u64 key → u32 value)` map with linear probing.
#[derive(Clone, Debug)]
struct FlatCache {
    keys: Vec<u64>,
    vals: Vec<u32>,
    /// `slots - 1`; slots is a power of two.
    mask: usize,
    /// Bits to right-shift the mixed hash so the top bits index the table.
    shift: u32,
    len: usize,
}

#[inline]
fn mix(key: u64) -> u64 {
    // Fibonacci hashing: top bits of the product are well distributed.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl FlatCache {
    fn with_slots(slots: usize) -> FlatCache {
        debug_assert!(slots.is_power_of_two());
        FlatCache {
            keys: vec![EMPTY; slots],
            vals: vec![0; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
        }
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let mut i = (mix(key) >> self.shift) as usize;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, key: u64, val: u32) {
        // Keep load below 1/2 so probe chains stay short.
        if (self.len + 1) * 2 > self.keys.len() {
            if self.keys.len() >= MAX_SLOTS {
                self.clear();
            } else {
                self.grow();
            }
        }
        let mut i = (mix(key) >> self.shift) as usize;
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let mut bigger = FlatCache::with_slots(self.keys.len() * 2);
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                bigger.insert(k, self.vals[i]);
            }
        }
        *self = bigger;
    }

    fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Drop every entry whose key matches `pred`, keeping the rest warm.
    /// Returns how many entries were evicted. Rebuilds in place: linear
    /// probing cannot punch holes without breaking probe chains, and a
    /// single O(slots) rebuild costs the same order as the wholesale
    /// `clear` it replaces.
    fn evict_where(&mut self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let slots = self.keys.len();
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; slots]);
        self.len = 0;
        let mut evicted = 0;
        for (i, &k) in old_keys.iter().enumerate() {
            if k == EMPTY {
                continue;
            }
            if pred(k) {
                evicted += 1;
            } else {
                self.insert(k, old_vals[i]);
            }
        }
        evicted
    }
}

/// Amortized-O(1) route-consistency oracle for one filtering node.
///
/// Owned by the agent that queries it (one oracle per `at` node). Answers
/// are always identical to [`Routing::enters_via`]; a routing-epoch bump
/// (failure injection applying a link flip) invalidates — on the next
/// query — exactly the cached entries whose destination the flip damaged,
/// falling back to a wholesale clear when the table's delta history cannot
/// pinpoint the damage.
#[derive(Clone, Debug)]
pub struct RouteOracle {
    /// Node whose entry links are being checked (`at` in `enters_via`).
    at: NodeId,
    /// Routing epoch the cache contents were computed under.
    epoch: u64,
    cache: FlatCache,
    hits: u64,
    misses: u64,
    /// Epoch syncs resolved by targeted per-destination eviction.
    partial_evictions: u64,
    /// Epoch syncs that fell back to dropping the whole cache.
    full_clears: u64,
    /// Total cached entries dropped by targeted evictions.
    entries_evicted: u64,
}

impl RouteOracle {
    /// Oracle for route-consistency queries at node `at`.
    pub fn new(at: NodeId) -> RouteOracle {
        RouteOracle {
            at,
            epoch: 0,
            cache: FlatCache::with_slots(INITIAL_SLOTS),
            hits: 0,
            misses: 0,
            partial_evictions: 0,
            full_clears: 0,
            entries_evicted: 0,
        }
    }

    /// The node this oracle answers for.
    pub fn at(&self) -> NodeId {
        self.at
    }

    /// `(cache hits, cache misses)` since construction — observability for
    /// benches and perf assertions.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(partial evictions, full clears, entries evicted)` since
    /// construction: how often epoch syncs kept the cache warm vs dropped
    /// it, and how many entries the targeted path actually removed.
    pub fn invalidation_stats(&self) -> (u64, u64, u64) {
        (
            self.partial_evictions,
            self.full_clears,
            self.entries_evicted,
        )
    }

    /// Catch up with `routing`'s epoch: evict precisely the entries whose
    /// destination changed since we last looked, or everything when the
    /// delta history cannot say.
    #[cold]
    fn sync_epoch(&mut self, routing: &Routing) {
        match routing.dsts_invalidated_since(self.epoch) {
            Some(dsts) => {
                if !dsts.is_empty() {
                    let n = routing.n();
                    let mut damaged = vec![0u64; n.div_ceil(64).max(1)];
                    for d in dsts {
                        damaged[d.0 >> 6] |= 1u64 << (d.0 & 63);
                    }
                    self.entries_evicted += self.cache.evict_where(|key| {
                        let dst = (key & u64::from(u32::MAX)) as usize;
                        dst < n && damaged[dst >> 6] & (1u64 << (dst & 63)) != 0
                    }) as u64;
                }
                self.partial_evictions += 1;
            }
            None => {
                self.cache.clear();
                self.full_clears += 1;
            }
        }
        self.epoch = routing.epoch();
    }

    /// Memoized [`Routing::enters_via`]`(topo, src, dst, self.at())`: on the
    /// forwarding path `src → dst`, which neighbour hands traffic to this
    /// oracle's node? `None` when the node is not on that path, is the
    /// path's first node, or src/dst are unreachable or out of range.
    #[inline]
    pub fn enters_via(
        &mut self,
        routing: &Routing,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Option<NodeId> {
        if routing.epoch() != self.epoch {
            self.sync_epoch(routing);
        }
        let n = routing.n();
        if src.0 >= n || dst.0 >= n || self.at.0 >= n {
            return None; // out-of-range addresses never route here
        }
        let key = ((src.0 as u64) << 32) | dst.0 as u64;
        if let Some(v) = self.cache.get(key) {
            self.hits += 1;
            return if v == NONE_VAL {
                None
            } else {
                Some(NodeId(v as usize))
            };
        }
        self.misses += 1;
        let answer = routing.enters_via(topo, src, dst, self.at);
        let encoded = match answer {
            Some(via) => {
                debug_assert!(via.0 < NONE_VAL as usize);
                via.0 as u32
            }
            None => NONE_VAL,
        };
        self.cache.insert(key, encoded);
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LinkId;
    use crate::rng::seeded;
    use crate::topology::Topology;
    use rand::Rng;

    /// Every (src, dst, at) triple answers exactly like the direct walk,
    /// repeatedly (exercising both fill and hit paths).
    #[test]
    fn oracle_matches_direct_walk() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 7);
        let routing = Routing::compute(&topo);
        for at in 0..topo.n() {
            let mut oracle = RouteOracle::new(NodeId(at));
            for _round in 0..2 {
                for src in 0..topo.n() {
                    for dst in 0..topo.n() {
                        let want = routing.enters_via(&topo, NodeId(src), NodeId(dst), NodeId(at));
                        let got = oracle.enters_via(&routing, &topo, NodeId(src), NodeId(dst));
                        assert_eq!(got, want, "src={src} dst={dst} at={at}");
                    }
                }
            }
            let (hits, misses) = oracle.stats();
            assert_eq!(misses, (topo.n() * topo.n()) as u64, "one walk per pair");
            assert_eq!(hits, (topo.n() * topo.n()) as u64, "second round all hits");
        }
    }

    #[test]
    fn out_of_range_queries_answer_none_and_do_not_cache() {
        let topo = Topology::line(4);
        let routing = Routing::compute(&topo);
        let mut oracle = RouteOracle::new(NodeId(1));
        assert_eq!(
            oracle.enters_via(&routing, &topo, NodeId(9999), NodeId(3)),
            None
        );
        assert_eq!(
            oracle.enters_via(&routing, &topo, NodeId(0), NodeId(77777)),
            None
        );
        assert_eq!(oracle.stats(), (0, 0), "range rejects bypass the cache");
    }

    #[test]
    fn epoch_bump_invalidates() {
        // Ring of 4: 0-1-2-3-0. Path 0→2 tie-breaks via one side; failing
        // the link on that side must flip the cached answer.
        use crate::link::LinkProfile;
        use crate::node::NodeRole;
        let mut topo = Topology::new();
        for _ in 0..4 {
            topo.add_node(NodeRole::Stub);
        }
        for i in 0..4usize {
            topo.connect(NodeId(i), NodeId((i + 1) % 4), LinkProfile::transit());
        }
        let routing = Routing::compute(&topo);
        let mut oracle = RouteOracle::new(NodeId(1));
        let before = oracle.enters_via(&routing, &topo, NodeId(0), NodeId(2));
        assert_eq!(before, Some(NodeId(0)), "0→2 goes 0-1-2 by tie-break");

        // Fail link 0-1; recompute with a bumped epoch (as the simulator's
        // failure injection does).
        let l01 = topo.nodes[0]
            .links
            .iter()
            .copied()
            .find(|&l| topo.links[l.0].other(NodeId(0)) == NodeId(1))
            .unwrap();
        topo.links[l01.0].up = false;
        let mut recomputed = Routing::compute(&topo);
        recomputed.set_epoch(routing.epoch() + 1);

        let after = oracle.enters_via(&recomputed, &topo, NodeId(0), NodeId(2));
        assert_eq!(after, None, "0→2 now goes 0-3-2, bypassing node 1");
        assert_eq!(
            after,
            recomputed.enters_via(&topo, NodeId(0), NodeId(2), NodeId(1))
        );
    }

    /// Property: over random topologies and random link-failure schedules,
    /// the oracle (which only ever sees epoch bumps) answers identically to
    /// a fresh `Routing::compute` at every step.
    #[test]
    fn random_failures_never_desync_oracle() {
        for seed in 0..8u64 {
            let mut topo = Topology::barabasi_albert(40, 2, 0.1, seed);
            let mut routing = Routing::compute(&topo);
            let mut rng = seeded(seed ^ 0xFA11);
            let n = topo.n();
            let mut oracles: Vec<RouteOracle> =
                (0..n).map(|i| RouteOracle::new(NodeId(i))).collect();

            for _step in 0..6 {
                // Warm the caches with a batch of random queries, checking
                // against the walk.
                for _q in 0..300 {
                    let src = NodeId(rng.gen_range(0..n));
                    let dst = NodeId(rng.gen_range(0..n));
                    let at = rng.gen_range(0..n);
                    let want = routing.enters_via(&topo, src, dst, NodeId(at));
                    assert_eq!(
                        oracles[at].enters_via(&routing, &topo, src, dst),
                        want,
                        "seed={seed} src={src:?} dst={dst:?} at={at}"
                    );
                }
                // Flip a random link and recompute, as set_link_up does.
                let lid = LinkId(rng.gen_range(0..topo.links.len()));
                let up = topo.links[lid.0].up;
                topo.links[lid.0].up = !up;
                let epoch = routing.epoch();
                routing = Routing::compute(&topo);
                routing.set_epoch(epoch + 1);
                // Answers after the failure must match a *fresh* compute.
                let fresh = Routing::compute(&topo);
                for _q in 0..300 {
                    let src = NodeId(rng.gen_range(0..n));
                    let dst = NodeId(rng.gen_range(0..n));
                    let at = rng.gen_range(0..n);
                    let want = fresh.enters_via(&topo, src, dst, NodeId(at));
                    assert_eq!(
                        oracles[at].enters_via(&routing, &topo, src, dst),
                        want,
                        "post-failure seed={seed} src={src:?} dst={dst:?} at={at}"
                    );
                }
            }
        }
    }

    /// A localized flip evicts exactly the damaged destinations' entries;
    /// everything else answers from cache without re-walking.
    #[test]
    fn partial_eviction_keeps_undamaged_destinations_warm() {
        use crate::link::LinkProfile;
        let mut topo = Topology::star(5);
        let chord = topo
            .connect(NodeId(1), NodeId(2), LinkProfile::access())
            .unwrap();
        let mut routing = Routing::compute(&topo);
        let mut oracle = RouteOracle::new(NodeId(0)); // the hub sees all paths
        let n = topo.n();
        for src in 0..n {
            for dst in 0..n {
                oracle.enters_via(&routing, &topo, NodeId(src), NodeId(dst));
            }
        }
        let (_, misses_before) = oracle.stats();
        assert_eq!(misses_before, (n * n) as u64);

        // Flip the leaf-leaf shortcut: only destinations 1 and 2 change.
        topo.links[chord.0].up = false;
        routing.apply_link_flip(&topo, chord);

        // Undamaged destination: served warm, no new walk.
        assert_eq!(
            oracle.enters_via(&routing, &topo, NodeId(4), NodeId(3)),
            routing.enters_via(&topo, NodeId(4), NodeId(3), NodeId(0))
        );
        let (_, misses) = oracle.stats();
        assert_eq!(misses, misses_before, "undamaged dst stayed cached");
        let (partial, full, evicted) = oracle.invalidation_stats();
        assert_eq!((partial, full), (1, 0), "sync used the targeted path");
        assert_eq!(evicted as usize, 2 * n, "all entries for dsts 1 and 2");

        // Damaged destination: evicted, re-walks, still matches the table.
        assert_eq!(
            oracle.enters_via(&routing, &topo, NodeId(1), NodeId(2)),
            routing.enters_via(&topo, NodeId(1), NodeId(2), NodeId(0))
        );
        let (_, misses_after) = oracle.stats();
        assert_eq!(misses_after, misses + 1, "damaged dst was re-derived");
    }

    /// Targeted eviction drops matching keys, keeps the rest findable, and
    /// leaves the table consistent for further inserts.
    #[test]
    fn flat_cache_evict_where() {
        let mut c = FlatCache::with_slots(8);
        for k in 0..1000u64 {
            c.insert(k, k as u32);
        }
        let evicted = c.evict_where(|k| k % 3 == 0);
        assert_eq!(evicted, 334, "multiples of 3 in 0..1000");
        for k in 0..1000u64 {
            if k % 3 == 0 {
                assert_eq!(c.get(k), None);
            } else {
                assert_eq!(c.get(k), Some(k as u32));
            }
        }
        c.insert(999_999, 7);
        assert_eq!(c.get(999_999), Some(7));
    }

    /// The flat cache stays correct across growth and adversarial key mixes.
    #[test]
    fn flat_cache_grows_and_resets() {
        let mut c = FlatCache::with_slots(8);
        for k in 0..10_000u64 {
            c.insert(k * 2, (k % 1000) as u32);
        }
        for k in 0..10_000u64 {
            assert_eq!(c.get(k * 2), Some((k % 1000) as u32));
            assert_eq!(c.get(k * 2 + 1), None);
        }
        c.clear();
        assert_eq!(c.get(0), None);
        assert_eq!(c.len, 0);
    }
}
