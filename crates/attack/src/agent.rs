//! DDoS agent (zombie) application.
//!
//! An agent is a compromised host (Fig. 1) that, once triggered — either at
//! a recruitment time from the SI model or by a command packet relayed
//! through a master — emits attack traffic at a configured rate until its
//! stop time. Three firing modes cover the paper's attack taxonomy
//! (Sec. 2): direct flooding (optionally spoofed), reflector bouncing
//! (spoofed SYN/DNS/ICMP requests carrying the victim's source address),
//! and protocol misuse (forged TCP RSTs tearing down third-party
//! connections).

use rand::seq::SliceRandom;
use rand::Rng;

use dtcs_netsim::{
    Addr, App, AppApi, Disposition, Packet, PacketBuilder, Proto, SimDuration, SimTime,
    TrafficClass,
};

/// Payload tag of the "start attacking" command (Fig. 1 control packets).
pub const CMD_START: u64 = 0xA77A_C000_0000_0001;
/// Payload tag of the "stop attacking" command.
pub const CMD_STOP: u64 = 0xA77A_C000_0000_0002;

/// How source addresses are forged in direct mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpoofMode {
    /// Honest source (agent's own address).
    None,
    /// Uniformly random 32-bit source per packet.
    Random,
    /// Fixed forged source.
    Fixed(Addr),
}

/// What the agent sends when active.
#[derive(Clone, Debug)]
pub enum AgentMode {
    /// UDP flood straight at the victim.
    Direct {
        /// Target address.
        victim: Addr,
        /// Source forging policy.
        spoof: SpoofMode,
    },
    /// Reflector attack: requests to innocent servers with the victim's
    /// address as the spoofed source (Fig. 1).
    Reflector {
        /// Address written into the source field (the victim).
        victim: Addr,
        /// Reflector pool; one is drawn per packet.
        reflectors: Vec<Addr>,
        /// Request protocol (`TcpSyn`, `DnsQuery` or `IcmpEcho`).
        proto: Proto,
    },
    /// Protocol misuse: forged RSTs against `(client, server)` pairs
    /// (Sec. 2.1 "sending … TCP reset packets").
    MisuseRst {
        /// Connections to tear down; the RST claims `server` as source and
        /// is delivered to `client`.
        connections: Vec<(Addr, Addr)>,
    },
}

/// When the agent starts firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentTrigger {
    /// At an absolute time (recruitment time from the SI model).
    AtTime(SimTime),
    /// On receiving a [`CMD_START`] control packet from a master.
    OnCommand,
}

const TICK: u64 = 1;

/// A DDoS agent bound to one compromised host address.
pub struct AgentApp {
    /// Firing mode.
    pub mode: AgentMode,
    /// Activation trigger.
    pub trigger: AgentTrigger,
    /// Attack packets per second.
    pub rate_pps: f64,
    /// Attack packet size in bytes.
    pub pkt_size: u32,
    /// Stop emitting at this time (`SimTime::MAX` = never).
    pub stop_at: SimTime,
    active: bool,
    seq: u64,
}

impl AgentApp {
    /// New agent; inert until its trigger.
    pub fn new(mode: AgentMode, trigger: AgentTrigger, rate_pps: f64, pkt_size: u32) -> AgentApp {
        AgentApp {
            mode,
            trigger,
            rate_pps: rate_pps.max(0.001),
            pkt_size,
            stop_at: SimTime::MAX,
            active: false,
            seq: 0,
        }
    }

    /// Builder: stop time.
    pub fn until(mut self, stop_at: SimTime) -> AgentApp {
        self.stop_at = stop_at;
        self
    }

    fn interval(&self, api: &mut AppApi<'_>) -> SimDuration {
        // Exponential-ish jitter (±50%) desynchronises agents while the
        // mean rate stays `rate_pps`.
        let base = 1.0 / self.rate_pps;
        let jitter: f64 = api.rng.gen_range(0.5..1.5);
        SimDuration::from_secs_f64(base * jitter)
    }

    fn fire(&mut self, api: &mut AppApi<'_>) {
        self.seq += 1;
        let seq = self.seq;
        match &self.mode {
            AgentMode::Direct { victim, spoof } => {
                let src = match spoof {
                    SpoofMode::None => api.self_addr,
                    SpoofMode::Random => Addr(api.rng.gen()),
                    SpoofMode::Fixed(a) => *a,
                };
                let b = PacketBuilder::new(src, *victim, Proto::Udp, TrafficClass::AttackDirect)
                    .size(self.pkt_size)
                    .flow(seq)
                    .tag(seq);
                api.send(b);
            }
            AgentMode::Reflector {
                victim,
                reflectors,
                proto,
            } => {
                if let Some(&refl) = reflectors.choose(api.rng) {
                    // Spoofed source: the victim. The reflector's reply
                    // will therefore flood the victim.
                    let b = PacketBuilder::new(*victim, refl, *proto, TrafficClass::AttackDirect)
                        .size(self.pkt_size)
                        .flow(seq)
                        .tag(seq);
                    api.send(b);
                }
            }
            AgentMode::MisuseRst { connections } => {
                if let Some(&(client, server)) = connections.choose(api.rng) {
                    let b = PacketBuilder::new(
                        server, // forged: pretends to be the server
                        client,
                        Proto::TcpRst,
                        TrafficClass::AttackDirect,
                    )
                    .size(40)
                    .flow(seq);
                    api.send(b);
                }
            }
        }
    }
}

impl App for AgentApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        if let AgentTrigger::AtTime(t) = self.trigger {
            let delay = t.saturating_since(api.now);
            api.set_timer(delay, TICK);
        }
    }

    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if self.trigger == AgentTrigger::OnCommand && pkt.proto == Proto::Control {
            match pkt.payload_tag {
                CMD_START if !self.active => {
                    self.active = true;
                    api.set_timer(SimDuration::ZERO, TICK);
                }
                CMD_STOP => {
                    self.active = false;
                }
                _ => {}
            }
        }
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, token: u64) {
        if token != TICK {
            return;
        }
        match self.trigger {
            AgentTrigger::AtTime(_) => {
                self.active = true;
            }
            AgentTrigger::OnCommand => {
                if !self.active {
                    return;
                }
            }
        }
        if api.now >= self.stop_at {
            self.active = false;
            return;
        }
        self.fire(api);
        let next = self.interval(api);
        api.set_timer(next, TICK);
    }
}

/// Master host (Fig. 1): relays attacker commands to its agent group.
pub struct MasterApp {
    /// Agents this master controls.
    pub agents: Vec<Addr>,
}

impl App for MasterApp {
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if pkt.proto == Proto::Control
            && (pkt.payload_tag == CMD_START || pkt.payload_tag == CMD_STOP)
        {
            for &agent in &self.agents {
                let b = PacketBuilder::new(
                    api.self_addr,
                    agent,
                    Proto::Control,
                    TrafficClass::AttackControl,
                )
                .size(64)
                .tag(pkt.payload_tag);
                api.send(b);
            }
        }
        Disposition::Consumed
    }
}

/// The attacker: sends start/stop commands to the master tier at
/// configured instants (the top of the amplifying hierarchy in Fig. 1).
pub struct AttackerApp {
    /// Master addresses.
    pub masters: Vec<Addr>,
    /// When to issue [`CMD_START`].
    pub start_at: SimTime,
    /// When to issue [`CMD_STOP`] (`SimTime::MAX` = never).
    pub stop_at: SimTime,
}

const SEND_START: u64 = 10;
const SEND_STOP: u64 = 11;

impl App for AttackerApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        api.set_timer(self.start_at.saturating_since(api.now), SEND_START);
        if self.stop_at != SimTime::MAX {
            api.set_timer(self.stop_at.saturating_since(api.now), SEND_STOP);
        }
    }

    fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, token: u64) {
        let cmd = match token {
            SEND_START => CMD_START,
            SEND_STOP => CMD_STOP,
            _ => return,
        };
        for &m in &self.masters {
            let b = PacketBuilder::new(
                api.self_addr,
                m,
                Proto::Control,
                TrafficClass::AttackControl,
            )
            .size(64)
            .tag(cmd);
            api.send(b);
        }
    }
}
