//! Route-consistency query cost: the per-packet check every route-based
//! ingress filter and anti-spoofing device pays. Compares the direct
//! next-hop walk (`Routing::enters_via`) against the memoizing
//! [`RouteOracle`] on realistic query mixes — a small working set of
//! (src, dst) pairs (steady flows, cache-friendly) and a uniformly random
//! mix (spoof flood, cache-hostile).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::{NodeId, RouteOracle, Routing, Topology};

const N_NODES: usize = 400;
const AT: NodeId = NodeId(0);

fn query_mix(n_nodes: usize, pairs: usize) -> Vec<(NodeId, NodeId)> {
    // Deterministic LCG so the mix is identical across runs without rand.
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..pairs)
        .map(|_| (NodeId(next() % n_nodes), NodeId(next() % n_nodes)))
        .collect()
}

fn bench_oracle(c: &mut Criterion) {
    let topo = Topology::barabasi_albert(N_NODES, 2, 0.1, 5);
    let routing = Routing::compute(&topo);

    let mut group = c.benchmark_group("route_oracle");
    // Steady-flow mix: 256 distinct pairs queried round-robin, the shape a
    // filtering node sees from established flows.
    let flows = query_mix(N_NODES, 256);
    group.bench_with_input(BenchmarkId::new("walk", "flows256"), &(), |b, _| {
        b.iter(|| {
            for &(src, dst) in &flows {
                black_box(routing.enters_via(&topo, src, dst, AT));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("oracle", "flows256"), &(), |b, _| {
        let mut oracle = RouteOracle::new(AT);
        b.iter(|| {
            for &(src, dst) in &flows {
                black_box(oracle.enters_via(&routing, &topo, src, dst));
            }
        })
    });
    // Spoof-flood mix: 65536 near-unique pairs, exercising insert churn and
    // the bounded-table reset path.
    let flood = query_mix(N_NODES, 65_536);
    group.bench_with_input(BenchmarkId::new("walk", "flood64k"), &(), |b, _| {
        b.iter(|| {
            for &(src, dst) in &flood {
                black_box(routing.enters_via(&topo, src, dst, AT));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("oracle", "flood64k"), &(), |b, _| {
        let mut oracle = RouteOracle::new(AT);
        b.iter(|| {
            for &(src, dst) in &flood {
                black_box(oracle.enters_via(&routing, &topo, src, dst));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
