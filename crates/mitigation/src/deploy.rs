//! Deployment placement strategies.
//!
//! Partial deployment is central to the paper's argument: ingress filtering
//! "was only partially applied worldwide" (Sec. 3.2), and the TCS is
//! explicitly designed for incremental roll-out (Sec. 5.1). These helpers
//! choose which ASes host a defense, so experiments can sweep coverage and
//! compare placement policies (DESIGN.md §5 ablation).

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use dtcs_netsim::rng::{child_seed, seeded};
use dtcs_netsim::{NodeId, NodeRole, Topology};

/// How deployed nodes are selected.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniformly random ASes.
    Random,
    /// Highest-degree ASes first ("large ISPs sign up first").
    TopDegree,
    /// Transit ASes adjacent to stubs — the "border routers of stub
    /// networks" scoping of Fig. 5.
    StubBorders,
}

/// Pick `ceil(fraction * n)` nodes according to a placement policy.
pub fn choose_nodes(
    topo: &Topology,
    fraction: f64,
    placement: Placement,
    seed: u64,
) -> Vec<NodeId> {
    let n = topo.n();
    let k = ((n as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize).min(n);
    if k == 0 {
        return Vec::new();
    }
    match placement {
        Placement::Random => {
            let mut ids: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut rng = seeded(child_seed(seed, 0xDE91));
            ids.shuffle(&mut rng);
            ids.truncate(k);
            ids
        }
        Placement::TopDegree => topo.top_degree(k),
        Placement::StubBorders => {
            // Transit nodes with at least one stub neighbour, ordered by
            // how many stub customers they serve (coverage-greedy), then
            // padded with remaining nodes by degree.
            let mut borders: Vec<(usize, NodeId)> = topo
                .nodes
                .iter()
                .filter(|node| node.role == NodeRole::Transit)
                .map(|node| {
                    let stub_customers = topo
                        .neighbours(node.id)
                        .filter(|&(p, _)| topo.nodes[p.0].role == NodeRole::Stub)
                        .count();
                    (stub_customers, node.id)
                })
                .filter(|&(c, _)| c > 0)
                .collect();
            borders.sort_by_key(|&(c, id)| (std::cmp::Reverse(c), id.0));
            let mut out: Vec<NodeId> = borders.into_iter().map(|(_, id)| id).collect();
            if out.len() < k {
                for id in topo.top_degree(n) {
                    if !out.contains(&id) {
                        out.push(id);
                        if out.len() == k {
                            break;
                        }
                    }
                }
            }
            out.truncate(k);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_sizing() {
        let t = Topology::barabasi_albert(100, 2, 0.1, 3);
        assert_eq!(choose_nodes(&t, 0.0, Placement::Random, 1).len(), 0);
        assert_eq!(choose_nodes(&t, 0.2, Placement::Random, 1).len(), 20);
        assert_eq!(choose_nodes(&t, 1.0, Placement::TopDegree, 1).len(), 100);
    }

    #[test]
    fn random_is_seeded() {
        let t = Topology::barabasi_albert(100, 2, 0.1, 3);
        let a = choose_nodes(&t, 0.3, Placement::Random, 9);
        let b = choose_nodes(&t, 0.3, Placement::Random, 9);
        let c = choose_nodes(&t, 0.3, Placement::Random, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn top_degree_prefers_hubs() {
        let t = Topology::barabasi_albert(200, 2, 0.1, 5);
        let top = choose_nodes(&t, 0.05, Placement::TopDegree, 1);
        let mean = t.mean_degree();
        for id in top {
            assert!(t.nodes[id.0].degree() as f64 >= mean);
        }
    }

    #[test]
    fn stub_borders_touch_stubs() {
        let t = Topology::transit_stub_multihomed(6, 8, 0.1, 2);
        let borders = choose_nodes(&t, 0.1, Placement::StubBorders, 1);
        assert!(!borders.is_empty());
        for id in &borders {
            assert_eq!(t.nodes[id.0].role, NodeRole::Transit);
            assert!(t
                .neighbours(*id)
                .any(|(p, _)| t.nodes[p.0].role == NodeRole::Stub));
        }
    }
}
