//! Replicate-0 ↔ golden equivalence for the sweep ports.
//!
//! `replicate_seed(base, 0) == base`, so a 1-replicate sweep runs every
//! cell at exactly the seed the single-run experiment hardcodes. These
//! tests run both paths in `--quick` mode and assert the sweep's
//! replicate-0 samples are bit-identical (`f64::to_bits`) to the numbers
//! serialized into the single-run `<id>.json` raw rows — the proof that
//! threading the seed parameter through each experiment body was
//! behavior-preserving.
//!
//! Each test is `#[ignore]`d because it runs its experiment twice
//! (single-run + sweep); CI runs them in release with `-- --ignored`.

use dtcs_bench::sweep::{run_sweep, SweepCellReport};
use dtcs_bench::util::Report;
use dtcs_bench::{run_experiment, sweep_experiment, RunOpts};
use serde_json::Value;

fn quick() -> RunOpts {
    RunOpts {
        quick: true,
        ..Default::default()
    }
}

/// Single-run golden report for `id` (quick mode).
fn golden(id: &str) -> Report {
    run_experiment(id, &quick()).expect("known experiment id")
}

/// One-replicate sweep (= replicate 0 only) for `id`, on 2 threads to
/// exercise the work-stealing path too.
fn sweep_cells(id: &str) -> Vec<SweepCellReport> {
    let e = sweep_experiment(id).expect("sweep-capable experiment id");
    let mut outcome = run_sweep(&[e], &quick(), 1, 2);
    assert_eq!(outcome.reports.len(), 1);
    outcome.reports.remove(0).cells
}

/// Find the cell with the given scenario label.
fn cell<'a>(cells: &'a [SweepCellReport], scenario: &str) -> &'a SweepCellReport {
    cells
        .iter()
        .find(|c| c.scenario == scenario)
        .unwrap_or_else(|| {
            panic!(
                "no cell with scenario {scenario:?} (have: {:?})",
                cells.iter().map(|c| &c.scenario).collect::<Vec<_>>()
            )
        })
}

/// Replicate-0 sample of a metric: with one replicate, mean == min ==
/// max == the sample itself.
fn sample(c: &SweepCellReport, key: &str) -> f64 {
    let s = c
        .metrics
        .get(key)
        .unwrap_or_else(|| panic!("cell {:?} lacks metric {key:?}", c.scenario));
    assert_eq!(s.n, 1, "one replicate expected for {:?}/{key}", c.scenario);
    assert_eq!(s.mean.to_bits(), s.min.to_bits());
    assert_eq!(s.mean.to_bits(), s.max.to_bits());
    s.mean
}

/// Numeric field of a serialized raw row.
fn field(row: &Value, key: &str) -> f64 {
    row.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row lacks numeric field {key:?}: {row}"))
}

/// Bit-exact comparison with context on failure.
fn assert_bits(sweep_v: f64, golden_v: f64, ctx: &str) {
    assert_eq!(
        sweep_v.to_bits(),
        golden_v.to_bits(),
        "{ctx}: sweep replicate-0 {sweep_v} != golden {golden_v}"
    );
}

/// Compare a set of identically named metric/row fields.
fn assert_fields(c: &SweepCellReport, row: &Value, keys: &[&str]) {
    for key in keys {
        assert_bits(
            sample(c, key),
            field(row, key),
            &format!("{}/{key}", c.scenario),
        );
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e1_replicate0_matches_single_run() {
    let cells = sweep_cells("e1");
    let rep = golden("e1");
    let keys = [
        "control_pkts",
        "attack_pkts",
        "rate_amp",
        "byte_amp",
        "victim_inbound_pps",
    ];
    for row in &rep.tables[0].raw {
        let proto = row["proto"].as_str().expect("proto");
        assert_fields(cell(&cells, &format!("proto={proto}")), row, &keys);
    }
    for row in &rep.tables[1].raw {
        let agents = row["agents"].as_u64().expect("agents");
        assert_fields(cell(&cells, &format!("agents={agents}")), row, &keys);
    }
}

/// Shared check for experiments whose cells report `outcome_metrics`
/// over an `OutcomeRow` raw row.
fn assert_outcome(c: &SweepCellReport, row: &Value) {
    assert_fields(
        c,
        row,
        &[
            "legit_success",
            "collateral_success",
            "attack_delivered_ratio",
            "attack_byte_hops",
            "victim_overloaded",
        ],
    );
    assert_bits(
        sample(c, "reflected_at_victim"),
        field(row, "reflected_delivered_to_victim"),
        &format!("{}/reflected_at_victim", c.scenario),
    );
    match row.get("stop_distance") {
        Some(Value::Null) | None => assert!(
            !c.metrics.contains_key("stop_distance"),
            "{}: metric present but golden stop_distance is null",
            c.scenario
        ),
        Some(v) => assert_bits(
            sample(c, "stop_distance"),
            v.as_f64().expect("stop_distance"),
            &format!("{}/stop_distance", c.scenario),
        ),
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e4_replicate0_matches_single_run() {
    let cells = sweep_cells("e4");
    let rep = golden("e4");
    for row in &rep.tables[0].raw {
        let scheme = row["scheme"].as_str().expect("scheme");
        assert_outcome(cell(&cells, &format!("scheme={scheme}")), row);
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e5_replicate0_matches_single_run() {
    let cells = sweep_cells("e5");
    let rep = golden("e5");
    // Coverage grid: Row carries a subset of the outcome metrics.
    for row in &rep.tables[0].raw {
        let placement = row["placement"].as_str().expect("placement");
        let fraction = field(row, "fraction");
        let c = cell(
            &cells,
            &format!("coverage/{placement}/fraction={fraction:.2}"),
        );
        assert_fields(
            c,
            row,
            &[
                "legit_success",
                "attack_byte_hops",
                "attack_delivered_ratio",
            ],
        );
    }
    // Stage ablation.
    let stage_keys = [
        ("antispoof-only (stage 1)", "antispoof-only"),
        ("dst-firewall-only (stage 2)", "dst-firewall-only"),
        ("both stages", "both"),
    ];
    for row in &rep.tables[1].raw {
        let case = row["case"].as_str().expect("case");
        let key = stage_keys
            .iter()
            .find(|(label, _)| *label == case)
            .map(|(_, k)| *k)
            .expect("known stage case");
        let c = cell(&cells, &format!("stage/{key}"));
        assert_fields(c, row, &["legit_success", "attack_byte_hops"]);
        assert_bits(
            sample(c, "reflected_at_victim"),
            field(row, "refl_at_victim"),
            &format!("{}/reflected_at_victim", c.scenario),
        );
    }
    // The baseline cell has no raw-row counterpart (notes only); it must
    // still exist and carry the outcome metrics.
    sample(cell(&cells, "baseline/none"), "legit_success");
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e6_replicate0_matches_single_run() {
    let cells = sweep_cells("e6");
    let rep = golden("e6");
    for row in &rep.tables[0].raw {
        let subs = row["subscribers"].as_u64().expect("subscribers");
        let c = cell(&cells, &format!("rules/subscribers={subs}"));
        assert_fields(c, row, &["total_rules"]);
    }
    for row in &rep.tables[1].raw {
        let owners = row["owners"].as_u64().expect("owners");
        // Wall-clock columns are deliberately absent from the sweep; only
        // the deterministic packet count is comparable.
        let c = cell(&cells, &format!("throughput/owners={owners}"));
        assert_fields(c, row, &["pkts"]);
        assert!(!c.metrics.contains_key("wall_ms"));
        assert!(!c.metrics.contains_key("pkts_per_sec"));
    }
    // LPM cells have no timing-free golden counterpart; they must exist
    // with a deterministic hit count.
    for n in [100u64, 10_000] {
        sample(cell(&cells, &format!("lpm/entries={n}")), "hits");
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e7_replicate0_matches_single_run() {
    let cells = sweep_cells("e7");
    let rep = golden("e7");
    for (table, path) in [(0usize, "tcsp"), (1, "fallback")] {
        for row in &rep.tables[table].raw {
            let isps = row["isps"].as_u64().expect("isps");
            let c = cell(&cells, &format!("isps={isps}/path={path}"));
            assert_fields(c, row, &["devices"]);
            for key in ["registration_ms", "deployment_ms"] {
                // NaN serializes to null in the golden row and is skipped
                // by the sweep adapter; compare only when finite.
                match row.get(key) {
                    Some(Value::Null) | None => {
                        assert!(!c.metrics.contains_key(key))
                    }
                    Some(v) => assert_bits(
                        sample(c, key),
                        v.as_f64().expect("latency"),
                        &format!("{}/{key}", c.scenario),
                    ),
                }
            }
            assert_bits(
                sample(c, "fallback_used"),
                row["fallback_used"].as_bool().expect("fallback_used") as u64 as f64,
                &format!("{}/fallback_used", c.scenario),
            );
        }
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e8_replicate0_matches_single_run() {
    let cells = sweep_cells("e8");
    let rep = golden("e8");
    // Verifier corpus: the cell's counter equals the table's ok-count.
    let verifier_rows = &rep.tables[0].raw;
    let ok = verifier_rows
        .iter()
        .filter(|r| r["ok"].as_bool() == Some(true))
        .count();
    let c = cell(&cells, "verifier");
    assert_bits(sample(c, "cases"), verifier_rows.len() as f64, "e8 cases");
    assert_bits(
        sample(c, "rejected_as_expected"),
        ok as f64,
        "e8 rejected_as_expected",
    );
    // Allowance sweep: raw rows are (ratio, floor_kib, emitted,
    // suppressed) tuples.
    for row in &rep.tables[2].raw {
        let ratio = row[0].as_f64().expect("ratio");
        let floor = row[1].as_u64().expect("floor_kib");
        let c = cell(&cells, &format!("storm/ratio={ratio}/floor={floor}"));
        assert_bits(
            sample(c, "events_emitted"),
            row[2].as_u64().expect("emitted") as f64,
            &format!("{}/events_emitted", c.scenario),
        );
        assert_bits(
            sample(c, "events_suppressed"),
            row[3].as_u64().expect("suppressed") as f64,
            &format!("{}/events_suppressed", c.scenario),
        );
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e9_replicate0_matches_single_run() {
    let cells = sweep_cells("e9");
    let rep = golden("e9");
    let case_keys = [
        ("server-bound attack (fat uplink)", "fat-uplink/src-keyed"),
        (
            "bandwidth-bound, src-keyed (paper's pushback)",
            "skinny-uplink/src-keyed",
        ),
        (
            "bandwidth-bound, dst-keyed (ACC ablation)",
            "skinny-uplink/dst-keyed",
        ),
    ];
    for row in &rep.tables[0].raw {
        let case = row["case"].as_str().expect("case");
        let scenario = case_keys
            .iter()
            .find(|(label, _)| *label == case)
            .map(|(_, s)| *s)
            .expect("known e9 case");
        assert_fields(
            cell(&cells, scenario),
            row,
            &[
                "limits_installed",
                "limits_on_reflector_prefixes",
                "limits_on_agent_prefixes",
                "pushback_drops",
                "drops_on_reflector_traffic",
                "legit_success",
                "victim_overloaded",
            ],
        );
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e10_replicate0_matches_single_run() {
    let cells = sweep_cells("e10");
    let rep = golden("e10");
    for row in &rep.tables[0].raw {
        let coverage = field(row, "coverage");
        let windows = row["windows_retained"].as_u64().expect("windows");
        let c = cell(
            &cells,
            &format!("traceback/coverage={coverage:.2}/windows={windows}"),
        );
        assert_fields(
            c,
            row,
            &["queries", "exact_hits", "truncated", "misses", "accuracy"],
        );
    }
    for row in &rep.tables[1].raw {
        let threshold = field(row, "threshold_pps");
        let c = cell(&cells, &format!("trigger/threshold={threshold}"));
        assert_fields(c, row, &["limiter_drops"]);
        match row.get("reaction_ms") {
            Some(Value::Null) | None => assert!(!c.metrics.contains_key("reaction_ms")),
            Some(v) => assert_bits(
                sample(c, "reaction_ms"),
                v.as_f64().expect("reaction_ms"),
                &format!("{}/reaction_ms", c.scenario),
            ),
        }
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e11_replicate0_matches_single_run() {
    let cells = sweep_cells("e11");
    let rep = golden("e11");
    for row in &rep.tables[0].raw {
        let beta = field(row, "beta");
        let c = cell(&cells, &format!("growth/beta={beta}"));
        assert_fields(c, row, &["t10_s", "t50_s", "t90_s"]);
    }
    for row in &rep.tables[1].raw {
        let beta = field(row, "beta");
        let c = cell(&cells, &format!("ramp/beta={beta}"));
        assert_fields(c, row, &["agents", "victim_overloaded"]);
        match row.get("time_to_overload_s") {
            Some(Value::Null) | None => {
                assert!(!c.metrics.contains_key("time_to_overload_s"))
            }
            Some(v) => assert_bits(
                sample(c, "time_to_overload_s"),
                v.as_f64().expect("time_to_overload_s"),
                &format!("{}/time_to_overload_s", c.scenario),
            ),
        }
    }
}

#[test]
#[ignore = "runs the experiment twice; CI runs with --ignored in release"]
fn e12_replicate0_matches_single_run() {
    let cells = sweep_cells("e12");
    let rep = golden("e12");
    let c = cell(&cells, "incentives/fraction=0.25");
    // The aggregate table's raw rows are (group, MB before, MB after).
    for row in &rep.tables[1].raw {
        let group = row[0].as_str().expect("group");
        let before = row[1].as_f64().expect("before");
        let after = row[2].as_f64().expect("after");
        let prefix = match group {
            "deployers" => "deployers",
            "free-riders" => "free_riders",
            other => panic!("unknown aggregate group {other:?}"),
        };
        assert_bits(
            sample(c, &format!("{prefix}_mb_before")),
            before,
            &format!("e12 {group} before"),
        );
        assert_bits(
            sample(c, &format!("{prefix}_mb_after")),
            after,
            &format!("e12 {group} after"),
        );
    }
}
