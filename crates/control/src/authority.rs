//! Internet number authority (ARIN / RIPE NCC stand-in).
//!
//! "Ownership of (ranges of) IP addresses is maintained in databases of
//! organisations such as ARIN, RIPE NCC, etc." (Sec. 5.1, footnote 4).
//! The TCSP consults this registry during service registration (Fig. 4's
//! `verifyOwnership` exchange).

use std::collections::BTreeMap;

use dtcs_netsim::{Prefix, Simulator};

use crate::identity::UserId;

/// The allocation database.
#[derive(Clone, Debug, Default)]
pub struct InternetNumberAuthority {
    /// Allocations, keyed by `(bits, len)` for deterministic iteration.
    allocations: BTreeMap<(u32, u8), UserId>,
}

impl InternetNumberAuthority {
    /// Empty registry.
    pub fn new() -> InternetNumberAuthority {
        InternetNumberAuthority::default()
    }

    /// Record that `user` holds `prefix`.
    pub fn allocate(&mut self, prefix: Prefix, user: UserId) {
        self.allocations.insert((prefix.bits, prefix.len), user);
    }

    /// Does `user` hold `prefix` (exactly, or via a covering allocation)?
    pub fn owns(&self, user: UserId, prefix: Prefix) -> bool {
        self.allocations
            .iter()
            .any(|(&(bits, len), &holder)| holder == user && Prefix { bits, len }.covers(prefix))
    }

    /// Verify a whole claim set; returns the first prefix that fails, if
    /// any.
    pub fn verify_claim(&self, user: UserId, claimed: &[Prefix]) -> Result<(), Prefix> {
        for &p in claimed {
            if !self.owns(user, p) {
                return Err(p);
            }
        }
        Ok(())
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// Convenience: allocate each node's /16 of a simulator's topology to a
    /// distinct synthetic user `base_user + node_id`, returning nothing.
    /// Scenario code typically then re-allocates the prefixes of interest.
    pub fn allocate_all_nodes(&mut self, sim: &Simulator, base_user: u64) {
        for i in 0..sim.topo.n() {
            self.allocate(
                Prefix::of_node(dtcs_netsim::NodeId(i)),
                UserId(base_user + i as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::NodeId;

    #[test]
    fn ownership_exact_and_covering() {
        let mut a = InternetNumberAuthority::new();
        a.allocate(Prefix::new(0x0A00_0000, 8), UserId(1));
        assert!(a.owns(UserId(1), Prefix::new(0x0A00_0000, 8)));
        assert!(
            a.owns(UserId(1), Prefix::new(0x0A0B_0000, 16)),
            "sub-prefix"
        );
        assert!(!a.owns(UserId(2), Prefix::new(0x0A00_0000, 8)));
        assert!(!a.owns(UserId(1), Prefix::new(0x0B00_0000, 8)));
    }

    #[test]
    fn claim_verification_reports_offender() {
        let mut a = InternetNumberAuthority::new();
        a.allocate(Prefix::of_node(NodeId(1)), UserId(1));
        let claim = vec![Prefix::of_node(NodeId(1)), Prefix::of_node(NodeId(2))];
        assert_eq!(
            a.verify_claim(UserId(1), &claim),
            Err(Prefix::of_node(NodeId(2)))
        );
        assert_eq!(a.verify_claim(UserId(1), &claim[..1]), Ok(()));
    }
}
