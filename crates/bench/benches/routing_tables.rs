//! Routing-table computation cost (rayon-parallel all-pairs Dijkstra):
//! the one-time per-scenario cost that bounds experiment sweep sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::{Routing, Topology};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_compute");
    group.sample_size(10);
    for &n in &[100usize, 400, 1000] {
        let topo = Topology::barabasi_albert(n, 2, 0.1, 5);
        group.bench_with_input(BenchmarkId::new("all_pairs", n), &n, |b, _| {
            b.iter(|| Routing::compute(&topo))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
