//! Reliability primitives for the faulty-channel control plane: capped
//! exponential backoff with deterministic jitter, a generic retransmitter
//! that rides the simulator's agent-timer facility, and duplicate
//! suppression for at-least-once delivery.
//!
//! The Fig. 4/5 protocol was written for a lossless channel; under the
//! [`FaultPlane`](dtcs_netsim::FaultPlane) every control message may be
//! dropped, duplicated, or delayed. The agents recover by (a) keying every
//! message with `(origin, txn, attempt)`, (b) retransmitting unacked
//! requests on a backoff schedule, and (c) deduplicating receipts so a
//! duplicated ack can never double-count.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::rng::child_seed;
use dtcs_netsim::{AgentCtx, NodeId, SimDuration};

/// Identity of one logical control-plane message. `origin` + `txn` name
/// the transaction (stable across retries); `attempt` distinguishes
/// retransmits of the same transaction so traces stay unambiguous.
/// Responses echo the request's `origin`/`txn`, which is what receivers
/// deduplicate on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Stable id of the requesting principal (user id, or 0 for
    /// infrastructure-internal transactions).
    pub origin: u64,
    /// Transaction id, chosen by the origin, stable across retries.
    pub txn: u64,
    /// Retransmit counter: 0 for the first send.
    pub attempt: u32,
}

impl MsgKey {
    /// Key for the first attempt of a transaction.
    pub fn first(origin: u64, txn: u64) -> MsgKey {
        MsgKey {
            origin,
            txn,
            attempt: 0,
        }
    }

    /// The dedup identity: everything but the attempt counter.
    pub fn identity(&self) -> (u64, u64) {
        (self.origin, self.txn)
    }
}

/// Capped exponential backoff: attempt `k` waits
/// `min(base · 2^k, cap)` plus a deterministic jitter in `[0, rto/4)`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First retransmit timeout.
    pub base: SimDuration,
    /// Ceiling for the doubled timeout.
    pub cap: SimDuration,
    /// Total send attempts (first transmission included) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_millis(250),
            cap: SimDuration::from_secs(2),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Retransmit timeout for `attempt` (0-based), jittered by a hash of
    /// `(seed, slot, attempt)` so concurrent retries decorrelate without
    /// consulting the simulator RNG (keeps packet-plane streams intact).
    pub fn rto(&self, seed: u64, slot: u64, attempt: u32) -> SimDuration {
        let backoff = self
            .base
            .0
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap.0);
        let jitter_bits = child_seed(child_seed(seed, slot), attempt as u64) & 0xFFFF;
        let jitter = (backoff / 4).saturating_mul(jitter_bits) / 65536;
        SimDuration(backoff + jitter)
    }
}

/// What [`Retransmitter::on_timer`] decided about a timer token.
#[derive(Debug)]
pub enum RetryEvent<K, T> {
    /// Token belongs to a different timer family — caller should try its
    /// other handlers.
    NotMine,
    /// Token was ours but the transaction is already acked (stale timer).
    Stale,
    /// Retransmit now: the caller re-sends `payload` to `dest` with the
    /// bumped attempt number, then the next timer is already armed.
    Resend {
        /// Transaction key.
        key: K,
        /// Destination node.
        dest: NodeId,
        /// Cloned payload context for rebuilding the message.
        payload: T,
        /// Attempt number to stamp on the resend (1-based retransmits).
        attempt: u32,
    },
    /// Retry budget exhausted; the transaction is dropped from tracking.
    GaveUp {
        /// Transaction key.
        key: K,
        /// Destination that never acked.
        dest: NodeId,
        /// Payload context, for salvage (e.g. partial confirmation).
        payload: T,
    },
}

struct Pending<K, T> {
    key: K,
    dest: NodeId,
    payload: T,
    attempt: u32,
}

/// At-least-once sender side: tracks unacked transactions and re-arms an
/// agent timer per pending entry. Timer tokens are `family | slot` where
/// `family` occupies the high bits, so several retransmitters (and the
/// agent's own protocol timers) coexist on one agent without collisions.
///
/// There is no timer-cancel facility in the simulator, so acked entries
/// simply let their timer fire into [`RetryEvent::Stale`] — a no-op.
pub struct Retransmitter<K, T> {
    family: u64,
    policy: RetryPolicy,
    seed: u64,
    next_slot: u64,
    by_key: BTreeMap<K, u64>,
    slots: BTreeMap<u64, Pending<K, T>>,
}

/// High-bit mask separating a token's family from its slot.
pub const FAMILY_MASK: u64 = 0xFFFF_0000_0000_0000;

impl<K: Ord + Copy, T: Clone> Retransmitter<K, T> {
    /// New retransmitter for `family` (one of the `FAM_*` constants in
    /// [`plane`](crate::plane)); `seed` decorrelates its jitter stream.
    pub fn new(family: u64, policy: RetryPolicy, seed: u64) -> Retransmitter<K, T> {
        debug_assert_eq!(family & !FAMILY_MASK, 0, "family must live in high bits");
        Retransmitter {
            family,
            policy,
            seed,
            next_slot: 0,
            by_key: BTreeMap::new(),
            slots: BTreeMap::new(),
        }
    }

    /// Begin tracking a transaction the caller has just sent (attempt 0)
    /// and arm its first retransmit timer. Re-tracking a live key resets
    /// its payload but keeps the backoff schedule.
    pub fn track(&mut self, ctx: &mut AgentCtx<'_>, key: K, dest: NodeId, payload: T) {
        if let Some(&slot) = self.by_key.get(&key) {
            if let Some(p) = self.slots.get_mut(&slot) {
                p.payload = payload;
                return;
            }
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.by_key.insert(key, slot);
        self.slots.insert(
            slot,
            Pending {
                key,
                dest,
                payload,
                attempt: 0,
            },
        );
        ctx.set_timer(self.policy.rto(self.seed, slot, 0), self.family | slot);
    }

    /// The transaction completed; stop retransmitting. Returns whether it
    /// was still tracked (false for duplicate acks).
    pub fn ack(&mut self, key: &K) -> bool {
        match self.by_key.remove(key) {
            Some(slot) => self.slots.remove(&slot).is_some(),
            None => false,
        }
    }

    /// Ack and return the tracked payload (None for duplicate acks).
    pub fn take(&mut self, key: &K) -> Option<T> {
        let slot = self.by_key.remove(key)?;
        self.slots.remove(&slot).map(|p| p.payload)
    }

    /// Is this transaction still awaiting its ack?
    pub fn is_pending(&self, key: &K) -> bool {
        self.by_key.contains_key(key)
    }

    /// Number of unacked transactions.
    pub fn pending_len(&self) -> usize {
        self.slots.len()
    }

    /// Route an agent-timer token. On [`RetryEvent::Resend`] the caller
    /// must actually re-send; the follow-up timer is already armed.
    pub fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) -> RetryEvent<K, T> {
        if token & FAMILY_MASK != self.family {
            return RetryEvent::NotMine;
        }
        let slot = token & !FAMILY_MASK;
        let Some(p) = self.slots.get_mut(&slot) else {
            return RetryEvent::Stale;
        };
        p.attempt += 1;
        if p.attempt >= self.policy.max_attempts {
            let p = self.slots.remove(&slot).expect("just seen");
            self.by_key.remove(&p.key);
            return RetryEvent::GaveUp {
                key: p.key,
                dest: p.dest,
                payload: p.payload,
            };
        }
        ctx.set_timer(
            self.policy.rto(self.seed, slot, p.attempt),
            self.family | slot,
        );
        RetryEvent::Resend {
            key: p.key,
            dest: p.dest,
            payload: p.payload.clone(),
            attempt: p.attempt,
        }
    }
}

/// Receiver-side duplicate suppression: remembers `(origin, txn, kind,
/// extra)` quadruples. `kind` is [`CpMsg::kind_id`](crate::plane::CpMsg)
/// (one transaction can legitimately produce several message kinds);
/// `extra` disambiguates multi-party fan-in (e.g. the acking NMS node).
#[derive(Default)]
pub struct Dedup {
    seen: BTreeSet<(u64, u64, u8, u64)>,
}

impl Dedup {
    /// New, empty.
    pub fn new() -> Dedup {
        Dedup::default()
    }

    /// True exactly once per quadruple; later calls are duplicates.
    pub fn first_time(&mut self, origin: u64, txn: u64, kind: u8, extra: u64) -> bool {
        self.seen.insert((origin, txn, kind, extra))
    }

    /// Distinct receipts recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// No receipts recorded yet?
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Control-plane-wide reliability counters, shared by every protocol agent
/// of one installed [`ControlPlane`](crate::scenario::ControlPlane). The
/// acceptance check reconciles these against the fault plane's own
/// drop/duplicate counts.
#[derive(Clone, Debug, Default)]
pub struct CpStats {
    /// Messages retransmitted after an RTO expiry (all agents).
    pub retransmits: u64,
    /// Transactions abandoned after exhausting the retry budget.
    pub give_ups: u64,
    /// Duplicate *requests* answered from a done-cache (re-acked).
    pub dup_requests: u64,
    /// Duplicate *responses* suppressed by receiver-side dedup.
    pub dup_responses: u64,
    /// Deployments confirmed partially because an ISP never acked.
    pub partial_confirms: u64,
    /// Anti-entropy inventory rounds started by NMS agents.
    pub reconcile_sweeps: u64,
    /// Services re-installed because a sweep found them missing.
    pub reconcile_reinstalls: u64,
    /// Lease renewal messages issued by NMS agents (keyed re-installs
    /// that push a device lease forward).
    pub lease_renewals: u64,
    /// Desired-state entries dropped because the backing credential
    /// expired before the next renewal round.
    pub lease_expirations: u64,
    /// Owner-initiated withdrawals accepted by the TCSP.
    pub withdrawals: u64,
    /// Device removals confirmed during a withdrawal fan-out.
    pub withdraw_removes: u64,
    /// Device-resident services removed because a sweep found them
    /// absent from desired state (bidirectional anti-entropy).
    pub reconcile_removals: u64,
    /// Deployments rejected because the presented credential had
    /// expired (including mid-retry expiry).
    pub expired_deploys: u64,
}

/// Shared handle to [`CpStats`].
pub type CpStatsHandle = Arc<Mutex<CpStats>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_backs_off_and_caps() {
        let p = RetryPolicy::default();
        let r0 = p.rto(1, 0, 0);
        let r1 = p.rto(1, 0, 1);
        let r5 = p.rto(1, 0, 5);
        // Base grows 250ms → 500ms …; jitter adds at most rto/4.
        assert!(r0.0 >= SimDuration::from_millis(250).0);
        assert!(r0.0 < SimDuration::from_millis(313).0);
        assert!(r1.0 >= SimDuration::from_millis(500).0);
        assert!(r5.0 >= SimDuration::from_secs(2).0, "capped at 2s");
        assert!(r5.0 < SimDuration::from_millis(2500).0);
        // Deterministic.
        assert_eq!(p.rto(1, 0, 0), p.rto(1, 0, 0));
        // Different slots jitter differently (with these constants).
        assert_ne!(p.rto(1, 0, 0), p.rto(1, 7, 0));
    }

    #[test]
    fn dedup_admits_once() {
        let mut d = Dedup::new();
        assert!(d.first_time(1, 2, 3, 0));
        assert!(!d.first_time(1, 2, 3, 0));
        assert!(d.first_time(1, 2, 3, 9), "extra disambiguates");
        assert!(d.first_time(1, 2, 4, 0), "kind disambiguates");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn msg_key_identity_ignores_attempt() {
        let a = MsgKey {
            origin: 5,
            txn: 9,
            attempt: 0,
        };
        let b = MsgKey {
            origin: 5,
            txn: 9,
            attempt: 3,
        };
        assert_eq!(a.identity(), b.identity());
        assert_ne!(a, b);
    }
}
