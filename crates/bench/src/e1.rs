//! E1 — Reflector-attack anatomy (Fig. 1 / Sec. 2.2).
//!
//! Measures the three amplification properties the paper attributes to the
//! attacker → master → agent → reflector hierarchy: packet-rate
//! amplification, byte amplification (per reflector protocol), and the
//! untraceability shift (the victim's inbound traffic carries genuine
//! reflector sources, zero agent sources).

use rayon::prelude::*;
use serde::Serialize;

use dtcs::attack::{ReflectorAttack, ReflectorAttackConfig};
use dtcs::netsim::{Proto, SimTime, Simulator, Topology, TrafficClass};

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct Row {
    proto: String,
    agents: usize,
    reflectors: usize,
    control_pkts: u64,
    attack_pkts: u64,
    rate_amp: f64,
    byte_amp: f64,
    victim_inbound_pps: f64,
    victim_srcs_are_reflectors: bool,
}

/// Base seed shared by the single-run tables and the sweep cells.
/// Historically baked as a literal into the topology, simulator, and
/// attack config below; replicate 0 reuses it so those runs are
/// byte-identical to the pre-sweep tables.
const SEED: u64 = 101;

/// Agent-population axis shared by `run()` and the sweep adapter.
fn agent_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 40, 80]
    } else {
        vec![10, 25, 50, 100, 200, 400]
    }
}

/// Reflector protocols compared at fixed population.
const PROTOS: [Proto; 3] = [Proto::TcpSyn, Proto::DnsQuery, Proto::IcmpEcho];

fn one(
    proto: Proto,
    agents: usize,
    reflectors: usize,
    quick: bool,
    seed: u64,
) -> (Row, dtcs::netsim::Stats) {
    let n = if quick { 120 } else { 300 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, seed);
    let mut sim = Simulator::new(topo, seed);
    let victim_node = sim.topo.stub_nodes()[1];
    let dur = if quick { 8 } else { 15 };
    let cfg = ReflectorAttackConfig {
        n_agents: agents,
        n_reflectors: reflectors,
        agent_rate_pps: 50.0,
        proto,
        start_at: SimTime::from_secs(1),
        stop_at: SimTime::from_secs(dur),
        victim_capacity_pps: 1e9, // measure raw inbound, no overload
        seed,
        ..Default::default()
    };
    let attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
    sim.run_until(SimTime::from_secs(dur + 2));

    let control = sim.stats.class(TrafficClass::AttackControl);
    let direct = sim.stats.class(TrafficClass::AttackDirect);
    let reflected = sim.stats.class(TrafficClass::AttackReflected);
    let v = attack.victim_stats.lock();
    let active_secs = (dur - 1) as f64;
    let row = Row {
        proto: format!("{proto:?}"),
        agents,
        reflectors,
        control_pkts: control.sent_pkts,
        attack_pkts: direct.sent_pkts + reflected.sent_pkts,
        rate_amp: (direct.sent_pkts + reflected.sent_pkts) as f64 / control.sent_pkts.max(1) as f64,
        byte_amp: reflected.sent_bytes as f64 / direct.sent_bytes.max(1) as f64,
        victim_inbound_pps: v.received as f64 / active_secs,
        victim_srcs_are_reflectors: v.attack_absorbed + v.overloaded > 0 || v.received > 0,
    };
    drop(v);
    (row, sim.stats)
}

/// Sweep-grid adapter: one cell per reflector protocol (at the fixed
/// 60-agent / 120-reflector population) plus one cell per agent count
/// (TcpSyn, 120 reflectors), mirroring the two single-run tables.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let mut cells = Vec::new();
        for &p in &PROTOS {
            cells.push(crate::sweep::SweepCell {
                experiment: "e1",
                scenario: format!("proto={p:?}"),
                base_seed: SEED,
                run: Box::new(move |seed| cell(p, 60, quick, seed)),
            });
        }
        for a in agent_counts(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e1",
                scenario: format!("agents={a}"),
                base_seed: SEED,
                run: Box::new(move |seed| cell(Proto::TcpSyn, a, quick, seed)),
            });
        }
        cells
    }
}

fn cell(proto: Proto, agents: usize, quick: bool, seed: u64) -> crate::sweep::CellRun {
    let (row, stats) = one(proto, agents, 120, quick, seed);
    let mut metrics = std::collections::BTreeMap::new();
    metrics.insert("control_pkts".to_string(), row.control_pkts as f64);
    metrics.insert("attack_pkts".to_string(), row.attack_pkts as f64);
    metrics.insert("rate_amp".to_string(), row.rate_amp);
    metrics.insert("byte_amp".to_string(), row.byte_amp);
    metrics.insert("victim_inbound_pps".to_string(), row.victim_inbound_pps);
    metrics.insert(
        "victim_srcs_are_reflectors".to_string(),
        row.victim_srcs_are_reflectors as u64 as f64,
    );
    crate::sweep::CellRun { metrics, stats }
}

/// Run E1.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e1",
        "Reflector-attack anatomy: amplification factors",
        "Fig. 1 / Sec. 2.2",
    );

    // Sweep 1: protocol (byte amplification differs per reflector type).
    let (rows, mut run_stats): (Vec<Row>, Vec<_>) = PROTOS
        .par_iter()
        .map(|&p| one(p, 60, 120, quick, SEED))
        .collect::<Vec<_>>()
        .into_iter()
        .unzip();
    let mut t = Table::new(
        "amplification by reflector protocol (60 agents, 120 reflectors)",
        &[
            "proto",
            "ctrl_pkts",
            "attack_pkts",
            "rate_amp",
            "byte_amp",
            "victim_pps",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.proto.clone(),
                r.control_pkts.to_string(),
                r.attack_pkts.to_string(),
                f(r.rate_amp),
                f(r.byte_amp),
                f(r.victim_inbound_pps),
            ],
            r,
        );
    }
    report.table(t);

    // Sweep 2: agent population (rate amplification scales with agents).
    let (rows, stats2): (Vec<Row>, Vec<_>) = agent_counts(quick)
        .par_iter()
        .map(|&a| one(Proto::TcpSyn, a, 120, quick, SEED))
        .collect::<Vec<_>>()
        .into_iter()
        .unzip();
    run_stats.extend(stats2);
    for s in &run_stats {
        crate::util::enforce_run_invariants("e1", s);
    }
    report.health(crate::util::wheel_health(run_stats.iter()));
    report.health(crate::util::hist_health(run_stats.iter()));
    let mut t = Table::new(
        "scaling with agent population (TcpSyn, 120 reflectors)",
        &["agents", "attack_pkts", "rate_amp", "victim_pps"],
    );
    for r in &rows {
        t.push(
            vec![
                r.agents.to_string(),
                r.attack_pkts.to_string(),
                f(r.rate_amp),
                f(r.victim_inbound_pps),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Victim-side sources are all innocent reflectors (unspoofed), matching Sec. 2.2: \
         'the source addresses of the actual attack packets received by the victim are not \
         spoofed'. Rate amplification grows linearly with the agent tier; DNS reflectors add \
         ~8x byte amplification on top.",
    );
    report
}
