//! `trace-report` — the control-plane convergence-attribution analyzer
//! (DESIGN.md §6.9).
//!
//! Reads a `--cp-trace` JSONL flight record, reconstructs each control
//! transaction's causal timeline from its `(origin, txn)`-keyed events,
//! and answers two questions the raw event stream cannot:
//!
//! 1. **Did every transaction finish?** Any keyed group that contains a
//!    `send` but no `terminal` event is a protocol bug (a transaction the
//!    retry/reconcile machinery silently lost), and the analyzer
//!    hard-fails — exit code 1 — naming the offenders. CI runs this gate
//!    over a 20%-loss E13 trace.
//! 2. **Where did the convergence time go?** The window from the first
//!    `send` to the last non-reconcile `terminal` is partitioned into
//!    inter-event gaps, each attributed to the *event that ends it*:
//!    a gap closed by a drop verdict was spent losing that message, a
//!    gap closed by a retry fire was spent waiting out the backoff that
//!    the preceding verdict made necessary, and so on. The gaps
//!    telescope, so the buckets sum to the window **exactly** — 100% of
//!    E13's time-to-coverage is attributed, with nothing double-counted.
//!
//! The parser is deliberately hand-rolled: the JSONL schema is flat
//! (integers, literal strings, booleans — see
//! [`dtcs::netsim::CpTraceEvent::write_json`]), produced by our own
//! writer, and strictly validated here field-by-field per event kind, so
//! the analyzer doubles as the schema check and runs identically with or
//! without a real `serde_json` behind it.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;

/// The reconcile pseudo-transaction: NMS anti-entropy traffic keys to
/// `(0, u64::MAX)` (`dtcs_control`'s `RECONCILE_TXN`). Its `terminal`
/// events recur at every sweep for the whole run — repair by repetition —
/// so the convergence window must end at the last *non*-reconcile
/// terminal, not simply the last one.
pub const RECONCILE_KEY: (u64, u64) = (0, u64::MAX);

/// One parsed JSONL event. Field names mirror the wire schema; every
/// field except `t` and `kind` is optional at the type level and
/// checked per-kind by [`parse_line`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ev {
    /// Timestamp (ns).
    pub t: u64,
    /// Event kind tag (`"send"`, `"verdict"`, …).
    pub kind: String,
    /// Transaction origin.
    pub origin: Option<u64>,
    /// Transaction id.
    pub txn: Option<u64>,
    /// Attempt number.
    pub attempt: Option<u64>,
    /// Message-kind id.
    pub mkind: Option<u64>,
    /// Sending node.
    pub from: Option<u64>,
    /// Destination node.
    pub to: Option<u64>,
    /// Acting node.
    pub node: Option<u64>,
    /// Retry destination.
    pub dest: Option<u64>,
    /// Stale-retry timer family.
    pub family: Option<u64>,
    /// Delivery instant (deliver verdicts).
    pub deliver: Option<u64>,
    /// Jitter applied (deliver verdicts).
    pub jitter: Option<u64>,
    /// Duplicate copy's extra delay (deliver verdicts).
    pub dup_extra: Option<u64>,
    /// Outage / crash window index.
    pub window: Option<u64>,
    /// Verdict or terminal outcome.
    pub outcome: Option<String>,
    /// State-transition actor role.
    pub actor: Option<String>,
    /// State entered.
    pub state: Option<String>,
    /// Dedup direction (true = duplicate response).
    pub response: Option<bool>,
}

impl Ev {
    /// The `(origin, txn)` transaction identity, when keyed.
    pub fn key(&self) -> Option<(u64, u64)> {
        match (self.origin, self.txn) {
            (Some(o), Some(x)) => Some((o, x)),
            _ => None,
        }
    }
}

/// Parse one JSONL line into an [`Ev`], rejecting unknown fields,
/// unknown kinds, and kind/field combinations the writer never emits.
pub fn parse_line(line: &str) -> Result<Ev, String> {
    let mut ev = Ev::default();
    let mut saw_t = false;
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("line is not a JSON object")?;
    let mut rest = body;
    while !rest.is_empty() {
        let key_start = rest.strip_prefix('"').ok_or("expected quoted key")?;
        let key_end = key_start.find('"').ok_or("unterminated key")?;
        let key = &key_start[..key_end];
        rest = key_start[key_end + 1..]
            .strip_prefix(':')
            .ok_or("expected ':' after key")?;
        // Value: quoted string, bool literal, or unsigned integer. The
        // writer emits nothing else (floats, nulls, nesting).
        let (value, tail) = if let Some(s) = rest.strip_prefix('"') {
            let end = s.find('"').ok_or("unterminated string value")?;
            (Val::Str(&s[..end]), &s[end + 1..])
        } else if let Some(tail) = rest.strip_prefix("true") {
            (Val::Bool(true), tail)
        } else if let Some(tail) = rest.strip_prefix("false") {
            (Val::Bool(false), tail)
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return Err(format!("field {key:?}: expected a value"));
            }
            let n: u64 = rest[..end]
                .parse()
                .map_err(|e| format!("field {key:?}: {e}"))?;
            (Val::Num(n), &rest[end..])
        };
        rest = tail.strip_prefix(',').unwrap_or(tail);
        let num = |v: &Val| -> Result<u64, String> {
            match v {
                Val::Num(n) => Ok(*n),
                _ => Err(format!("field {key:?} must be an integer")),
            }
        };
        match key {
            "t" => {
                ev.t = num(&value)?;
                saw_t = true;
            }
            "kind" => match value {
                Val::Str(s) => ev.kind = s.to_string(),
                _ => return Err("kind must be a string".into()),
            },
            "origin" => ev.origin = Some(num(&value)?),
            "txn" => ev.txn = Some(num(&value)?),
            "attempt" => ev.attempt = Some(num(&value)?),
            "mkind" => ev.mkind = Some(num(&value)?),
            "from" => ev.from = Some(num(&value)?),
            "to" => ev.to = Some(num(&value)?),
            "node" => ev.node = Some(num(&value)?),
            "dest" => ev.dest = Some(num(&value)?),
            "family" => ev.family = Some(num(&value)?),
            "deliver" => ev.deliver = Some(num(&value)?),
            "jitter" => ev.jitter = Some(num(&value)?),
            "dup_extra" => ev.dup_extra = Some(num(&value)?),
            "window" => ev.window = Some(num(&value)?),
            "outcome" => match value {
                Val::Str(s) => ev.outcome = Some(s.to_string()),
                _ => return Err("outcome must be a string".into()),
            },
            "actor" => match value {
                Val::Str(s) => ev.actor = Some(s.to_string()),
                _ => return Err("actor must be a string".into()),
            },
            "state" => match value {
                Val::Str(s) => ev.state = Some(s.to_string()),
                _ => return Err("state must be a string".into()),
            },
            "response" => match value {
                Val::Bool(b) => ev.response = Some(b),
                _ => return Err("response must be a boolean".into()),
            },
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if !saw_t {
        return Err("missing field \"t\"".into());
    }
    validate(&ev)?;
    Ok(ev)
}

enum Val<'a> {
    Num(u64),
    Str(&'a str),
    Bool(bool),
}

/// Per-kind schema check: exactly the fields the writer emits.
fn validate(ev: &Ev) -> Result<(), String> {
    let req = |ok: bool, what: &str| -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(format!("{} event missing field {what:?}", ev.kind))
        }
    };
    let keyed = ev.origin.is_some() && ev.txn.is_some();
    match ev.kind.as_str() {
        "send" => {
            req(ev.from.is_some(), "from")?;
            req(ev.to.is_some(), "to")?;
            if ev.origin.is_some() {
                req(
                    keyed && ev.attempt.is_some() && ev.mkind.is_some(),
                    "txn/attempt/mkind",
                )?;
            }
        }
        "verdict" => {
            req(ev.from.is_some(), "from")?;
            req(ev.to.is_some(), "to")?;
            match ev.outcome.as_deref() {
                Some("deliver") => {
                    req(ev.deliver.is_some(), "deliver")?;
                    req(ev.jitter.is_some(), "jitter")?;
                }
                Some("drop") | Some("outage") => {}
                Some("partition") => req(ev.window.is_some(), "window")?,
                other => return Err(format!("verdict outcome {other:?} unknown")),
            }
        }
        "dedup_hit" => {
            req(keyed, "origin/txn")?;
            req(ev.mkind.is_some(), "mkind")?;
            req(ev.node.is_some(), "node")?;
            req(ev.response.is_some(), "response")?;
        }
        "retry_schedule" | "retry_give_up" => {
            req(keyed, "origin/txn")?;
            req(ev.node.is_some(), "node")?;
            req(ev.dest.is_some(), "dest")?;
        }
        "retry_fire" => {
            req(keyed, "origin/txn")?;
            req(ev.attempt.is_some(), "attempt")?;
            req(ev.node.is_some(), "node")?;
            req(ev.dest.is_some(), "dest")?;
        }
        "retry_stale" => {
            req(ev.node.is_some(), "node")?;
            req(ev.family.is_some(), "family")?;
        }
        "state" => {
            req(keyed, "origin/txn")?;
            req(ev.node.is_some(), "node")?;
            req(ev.actor.is_some(), "actor")?;
            req(ev.state.is_some(), "state")?;
        }
        "sweep" => req(ev.node.is_some(), "node")?,
        "crash" => req(ev.node.is_some(), "node")?,
        "terminal" => {
            req(keyed, "origin/txn")?;
            req(ev.node.is_some(), "node")?;
            req(ev.outcome.is_some(), "outcome")?;
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(())
}

/// Attribution bucket names, in report order. Every nanosecond of the
/// convergence window lands in exactly one.
pub const BUCKETS: [&str; 7] = [
    "baseline_protocol",
    "channel_loss",
    "dup_suppression",
    "nms_outage",
    "partition_loss",
    "device_crash_reconcile",
    "retry_backoff_idle",
];

/// The analyzer's findings over one trace.
#[derive(Debug)]
pub struct Analysis {
    /// Total events parsed.
    pub events: usize,
    /// Keyed `(origin, txn)` groups containing at least one send.
    pub groups: usize,
    /// Final terminal outcome per group, tallied.
    pub outcomes: BTreeMap<String, usize>,
    /// Convergence window start (ns): the first send.
    pub t0: u64,
    /// Convergence window end (ns): the last non-reconcile terminal.
    pub t1: u64,
    /// Nanoseconds attributed per bucket; sums to `t1 - t0` exactly.
    pub buckets: BTreeMap<&'static str, u64>,
}

impl Analysis {
    /// The attributed window, ns.
    pub fn window_ns(&self) -> u64 {
        self.t1.saturating_sub(self.t0)
    }
}

/// How a transaction's most recent channel verdict went — the context a
/// later `retry_fire` gap is attributed by.
#[derive(Clone, Copy, PartialEq)]
enum LastVerdict {
    Dropped,
    OutageCrash,
    Outage,
    Partitioned,
    Delivered,
}

/// Analyze a parsed event stream (file order == chronological order:
/// the recorder is fed by a single-threaded deterministic simulator).
pub fn analyze(evs: &[Ev]) -> Result<Analysis, String> {
    // -- Pass 1: terminal gate + window + crash-window inventory --------
    let mut sends = 0u64;
    let mut verdicts = 0u64;
    let mut group_send: HashSet<(u64, u64)> = HashSet::new();
    let mut group_terminal: HashMap<(u64, u64), String> = HashMap::new();
    let mut crash_windows: HashSet<u64> = HashSet::new();
    let (mut t0, mut t1) = (None::<u64>, None::<u64>);
    for ev in evs {
        match ev.kind.as_str() {
            "send" => {
                sends += 1;
                if t0.is_none() {
                    t0 = Some(ev.t);
                }
                if let Some(k) = ev.key() {
                    group_send.insert(k);
                }
            }
            "verdict" => verdicts += 1,
            "crash" => {
                if let Some(w) = ev.window {
                    crash_windows.insert(w);
                }
            }
            "terminal" => {
                let k = ev.key().expect("validated terminal is keyed");
                group_terminal.insert(k, ev.outcome.clone().expect("validated"));
                if k != RECONCILE_KEY {
                    t1 = Some(ev.t);
                }
            }
            _ => {}
        }
    }
    if sends != verdicts {
        return Err(format!(
            "unbalanced funnel: {sends} sends but {verdicts} verdicts — \
             the channel must rule on every message exactly once"
        ));
    }
    let unterminated: Vec<(u64, u64)> = group_send
        .iter()
        .filter(|k| !group_terminal.contains_key(*k))
        .copied()
        .collect();
    if !unterminated.is_empty() {
        let mut sorted = unterminated;
        sorted.sort_unstable();
        return Err(format!(
            "{} transaction(s) have sends but no terminal outcome: {:?}{}",
            sorted.len(),
            &sorted[..sorted.len().min(8)],
            if sorted.len() > 8 { " …" } else { "" },
        ));
    }
    let t0 = t0.ok_or("trace contains no send events")?;
    let t1 = t1.unwrap_or(t0); // reconcile-only traffic: empty window

    // -- Pass 2: gap-partition attribution over [t0, t1] ----------------
    let mut buckets: BTreeMap<&'static str, u64> = BUCKETS.iter().map(|&b| (b, 0u64)).collect();
    let mut last_verdict: HashMap<(u64, u64), LastVerdict> = HashMap::new();
    let mut prev_t = t0;
    for ev in evs {
        // Bookkeeping runs over every event; attribution only in-window.
        let bucket = match ev.kind.as_str() {
            "verdict" => match ev.outcome.as_deref() {
                Some("drop") => "channel_loss",
                Some("outage") => {
                    if ev.window.is_some_and(|w| crash_windows.contains(&w)) {
                        "device_crash_reconcile"
                    } else {
                        "nms_outage"
                    }
                }
                Some("partition") => "partition_loss",
                _ => "baseline_protocol",
            },
            "dedup_hit" => "dup_suppression",
            "retry_fire" | "retry_give_up" => {
                match ev.key().and_then(|k| last_verdict.get(&k)) {
                    Some(LastVerdict::Dropped) => "channel_loss",
                    Some(LastVerdict::OutageCrash) => "device_crash_reconcile",
                    Some(LastVerdict::Outage) => "nms_outage",
                    Some(LastVerdict::Partitioned) => "partition_loss",
                    // Delivered (dup in flight) or unknown: the timer
                    // itself was the wait — pure backoff idling.
                    _ => "retry_backoff_idle",
                }
            }
            "sweep" | "crash" => "device_crash_reconcile",
            "state" if ev.state.as_deref() == Some("reinstall") => "device_crash_reconcile",
            _ => "baseline_protocol",
        };
        // Attribute only in-window; past t1 the gap walk stops but the
        // verdict bookkeeping below keeps running.
        if ev.t > prev_t && ev.t <= t1 {
            *buckets.get_mut(bucket).expect("known bucket") += ev.t - prev_t;
            prev_t = ev.t;
        }
        if ev.kind == "verdict" {
            if let Some(k) = ev.key() {
                let v = match ev.outcome.as_deref() {
                    Some("drop") => LastVerdict::Dropped,
                    Some("outage") => {
                        if ev.window.is_some_and(|w| crash_windows.contains(&w)) {
                            LastVerdict::OutageCrash
                        } else {
                            LastVerdict::Outage
                        }
                    }
                    Some("partition") => LastVerdict::Partitioned,
                    _ => LastVerdict::Delivered,
                };
                last_verdict.insert(k, v);
            }
        }
    }

    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    for (k, outcome) in &group_terminal {
        if group_send.contains(k) {
            *outcomes.entry(outcome.clone()).or_insert(0) += 1;
        }
    }
    Ok(Analysis {
        events: evs.len(),
        groups: group_send.len(),
        outcomes,
        t0,
        t1,
        buckets,
    })
}

/// Render the analysis as the human report printed by `trace-report`.
pub fn render(path: &Path, a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace-report: {}", path.display());
    let _ = writeln!(
        out,
        "  {} events, {} keyed transactions, all terminated",
        a.events, a.groups
    );
    let _ = write!(out, "  terminal outcomes:");
    for (outcome, n) in &a.outcomes {
        let _ = write!(out, " {outcome}={n}");
    }
    out.push('\n');
    let window = a.window_ns();
    let _ = writeln!(
        out,
        "  convergence window: {:.3} ms -> {:.3} ms (Δ = {:.3} ms)",
        a.t0 as f64 / 1e6,
        a.t1 as f64 / 1e6,
        window as f64 / 1e6
    );
    let _ = writeln!(out, "  attribution (gap-partition, ends-of-gap rule):");
    let mut total = 0u64;
    for &b in &BUCKETS {
        let ns = a.buckets[b];
        total += ns;
        let pct = if window == 0 {
            0.0
        } else {
            ns as f64 / window as f64 * 100.0
        };
        let _ = writeln!(out, "    {b:<24} {:>12.3} ms  {pct:>5.1}%", ns as f64 / 1e6);
    }
    let _ = writeln!(
        out,
        "  attributed {:.1}% of the window ({total} of {window} ns)",
        if window == 0 {
            100.0
        } else {
            total as f64 / window as f64 * 100.0
        }
    );
    out
}

/// Run the analyzer over `path`, print the report (or the failure),
/// and return the process exit code: 0 on success, 1 when the trace
/// fails a gate (unterminated transaction, unbalanced funnel, schema
/// violation), 2 when the file cannot be read.
pub fn run(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let mut evs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(ev) => evs.push(ev),
            Err(e) => {
                eprintln!("trace-report: {}:{}: {e}", path.display(), i + 1);
                return 1;
            }
        }
    }
    match analyze(&evs) {
        Ok(a) => {
            // The buckets telescope over the window; a mismatch here is
            // an analyzer bug, not a trace property.
            debug_assert_eq!(a.buckets.values().sum::<u64>(), a.window_ns());
            print!("{}", render(path, &a));
            0
        }
        Err(e) => {
            eprintln!("trace-report: {}: {e}", path.display());
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: &str) -> Ev {
        parse_line(line).expect(line)
    }

    #[test]
    fn parses_every_wire_shape() {
        let e = ev("{\"t\":5,\"kind\":\"send\",\"origin\":43521,\"txn\":9,\
             \"attempt\":2,\"mkind\":5,\"from\":1,\"to\":4}");
        assert_eq!(e.key(), Some((43521, 9)));
        assert_eq!((e.t, e.attempt, e.mkind), (5, Some(2), Some(5)));
        let e = ev("{\"t\":6,\"kind\":\"send\",\"from\":2,\"to\":3}");
        assert_eq!(e.key(), None);
        let e = ev("{\"t\":7,\"kind\":\"verdict\",\"from\":2,\"to\":3,\
             \"outcome\":\"deliver\",\"deliver\":1000,\"jitter\":30,\"dup_extra\":12}");
        assert_eq!(e.dup_extra, Some(12));
        let e = ev("{\"t\":7,\"kind\":\"verdict\",\"from\":2,\"to\":3,\
             \"outcome\":\"partition\",\"window\":2}");
        assert_eq!(e.window, Some(2));
        ev("{\"t\":8,\"kind\":\"crash\",\"node\":5,\"window\":3}");
        ev("{\"t\":9,\"kind\":\"sweep\",\"node\":1}");
        ev("{\"t\":10,\"kind\":\"retry_stale\",\"node\":1,\"family\":2}");
        let e = ev("{\"t\":11,\"kind\":\"dedup_hit\",\"origin\":1,\"txn\":2,\
             \"mkind\":5,\"node\":3,\"response\":true}");
        assert_eq!(e.response, Some(true));
        let e = ev(
            "{\"t\":12,\"kind\":\"state\",\"origin\":1,\"txn\":2,\"node\":3,\
             \"actor\":\"nms\",\"state\":\"reinstall\"}",
        );
        assert_eq!(e.state.as_deref(), Some("reinstall"));
        ev("{\"t\":13,\"kind\":\"terminal\",\"origin\":1,\"txn\":2,\
             \"node\":3,\"outcome\":\"confirmed\"}");
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(parse_line("not json").is_err());
        assert!(
            parse_line("{\"kind\":\"sweep\",\"node\":1}").is_err(),
            "missing t"
        );
        assert!(
            parse_line("{\"t\":1,\"kind\":\"nope\"}").is_err(),
            "unknown kind"
        );
        assert!(
            parse_line("{\"t\":1,\"kind\":\"sweep\",\"bogus\":2,\"node\":1}").is_err(),
            "unknown field"
        );
        assert!(
            parse_line("{\"t\":1,\"kind\":\"terminal\",\"origin\":1,\"txn\":2,\"node\":3}")
                .is_err(),
            "terminal without outcome"
        );
        assert!(
            parse_line("{\"t\":1,\"kind\":\"verdict\",\"from\":0,\"to\":1,\"outcome\":\"maybe\"}")
                .is_err(),
            "unknown verdict outcome"
        );
        assert!(
            parse_line(
                "{\"t\":1,\"kind\":\"verdict\",\"from\":0,\"to\":1,\"outcome\":\"partition\"}"
            )
            .is_err(),
            "partition verdict without its window index"
        );
    }

    /// Terse builders for synthetic streams.
    fn send(t: u64, origin: u64, txn: u64) -> Ev {
        ev(&format!(
            "{{\"t\":{t},\"kind\":\"send\",\"origin\":{origin},\"txn\":{txn},\
             \"attempt\":0,\"mkind\":1,\"from\":0,\"to\":1}}"
        ))
    }
    fn verdict(t: u64, origin: u64, txn: u64, outcome: &str) -> Ev {
        let extra = if outcome == "deliver" {
            ",\"deliver\":0,\"jitter\":0"
        } else {
            ""
        };
        ev(&format!(
            "{{\"t\":{t},\"kind\":\"verdict\",\"origin\":{origin},\"txn\":{txn},\
             \"attempt\":0,\"mkind\":1,\"from\":0,\"to\":1,\"outcome\":\"{outcome}\"{extra}}}"
        ))
    }
    fn fire(t: u64, origin: u64, txn: u64) -> Ev {
        ev(&format!(
            "{{\"t\":{t},\"kind\":\"retry_fire\",\"origin\":{origin},\"txn\":{txn},\
             \"attempt\":1,\"node\":0,\"dest\":1}}"
        ))
    }
    fn terminal(t: u64, origin: u64, txn: u64, outcome: &str) -> Ev {
        ev(&format!(
            "{{\"t\":{t},\"kind\":\"terminal\",\"origin\":{origin},\"txn\":{txn},\
             \"node\":1,\"outcome\":\"{outcome}\"}}"
        ))
    }

    #[test]
    fn unterminated_transaction_fails_the_gate() {
        let evs = vec![send(10, 7, 1), verdict(10, 7, 1, "deliver")];
        let err = analyze(&evs).unwrap_err();
        assert!(err.contains("no terminal outcome"), "{err}");
        assert!(err.contains("(7, 1)"), "{err}");
    }

    #[test]
    fn unbalanced_funnel_fails_the_gate() {
        let evs = vec![send(10, 7, 1), terminal(20, 7, 1, "confirmed")];
        let err = analyze(&evs).unwrap_err();
        assert!(err.contains("unbalanced funnel"), "{err}");
    }

    #[test]
    fn gap_attribution_telescopes_to_the_exact_window() {
        // 10 → 40: drop verdict ends 30 ns of loss; 40 → 100: retry fire
        // after a drop ends 60 ns of loss; 100 → 130: deliver verdict is
        // baseline; 130 → 200: terminal is baseline. Window = 190.
        let evs = vec![
            send(10, 7, 1),
            verdict(40, 7, 1, "drop"),
            fire(100, 7, 1),
            send(100, 7, 1),
            verdict(100, 7, 1, "deliver"),
            // Late reconcile terminals must not stretch the window.
            terminal(130, RECONCILE_KEY.0, RECONCILE_KEY.1, "reconciled"),
            terminal(200, 7, 1, "confirmed"),
            terminal(5000, RECONCILE_KEY.0, RECONCILE_KEY.1, "reconciled"),
        ];
        let a = analyze(&evs).unwrap();
        assert_eq!((a.t0, a.t1), (10, 200));
        assert_eq!(a.window_ns(), 190);
        assert_eq!(a.buckets.values().sum::<u64>(), 190, "exact attribution");
        assert_eq!(a.buckets["channel_loss"], 30 + 60);
        // deliver verdict gap (0: same t as fire… 100→100) + 130-gap
        // (reconcile terminal = baseline) + 200-gap (keyed terminal).
        assert_eq!(a.buckets["baseline_protocol"], 30 + 70);
        assert_eq!(a.buckets["retry_backoff_idle"], 0);
        assert_eq!(a.outcomes.get("confirmed"), Some(&1));
        assert_eq!(a.groups, 1, "reconcile key never sent, not a group");
    }

    #[test]
    fn retry_after_deliver_is_backoff_idle_and_crash_outages_classify() {
        let evs = vec![
            ev("{\"t\":5,\"kind\":\"crash\",\"node\":9,\"window\":3}"),
            send(10, 7, 1),
            verdict(10, 7, 1, "deliver"),
            fire(60, 7, 1), // last verdict delivered → pure backoff idle
            send(60, 7, 1),
            ev("{\"t\":80,\"kind\":\"verdict\",\"origin\":7,\"txn\":1,\
                 \"attempt\":1,\"mkind\":1,\"from\":0,\"to\":1,\
                 \"outcome\":\"outage\",\"window\":3}"),
            fire(140, 7, 1), // last verdict: crash-window outage
            send(140, 7, 1),
            verdict(140, 7, 1, "deliver"),
            terminal(150, 7, 1, "confirmed"),
        ];
        let a = analyze(&evs).unwrap();
        assert_eq!(a.window_ns(), 140);
        assert_eq!(a.buckets.values().sum::<u64>(), 140);
        assert_eq!(a.buckets["retry_backoff_idle"], 50);
        // outage verdict gap (20) + retry after crash outage (60).
        assert_eq!(a.buckets["device_crash_reconcile"], 20 + 60);
        assert_eq!(a.buckets["nms_outage"], 0);
        assert_eq!(a.buckets["baseline_protocol"], 10);
    }

    #[test]
    fn partition_swallows_attribute_to_partition_loss() {
        // A partition verdict ends its gap in partition_loss, and the
        // retry fired to repair it inherits the same attribution —
        // time lost to a cut is charged to the cut, not to backoff.
        let evs = vec![
            send(10, 7, 1),
            ev("{\"t\":40,\"kind\":\"verdict\",\"origin\":7,\"txn\":1,\
                 \"attempt\":0,\"mkind\":1,\"from\":0,\"to\":1,\
                 \"outcome\":\"partition\",\"window\":0}"),
            fire(100, 7, 1), // last verdict: partition → still the cut's fault
            send(100, 7, 1),
            verdict(100, 7, 1, "deliver"),
            terminal(150, 7, 1, "confirmed"),
        ];
        let a = analyze(&evs).unwrap();
        assert_eq!(a.window_ns(), 140);
        assert_eq!(a.buckets.values().sum::<u64>(), 140, "exact attribution");
        assert_eq!(a.buckets["partition_loss"], 30 + 60);
        assert_eq!(a.buckets["baseline_protocol"], 50);
        assert_eq!(a.buckets["nms_outage"], 0, "a cut is not an outage");
    }

    #[test]
    fn withdrawal_terminals_satisfy_the_gate() {
        // The withdrawal/renewal vocabulary terminates its transactions
        // like any other: sends with a "withdrawn" / "renewed" terminal
        // pass the every-transaction-terminated gate and tally.
        let evs = vec![
            send(10, 7, 1),
            verdict(10, 7, 1, "deliver"),
            terminal(20, 7, 1, "withdrawn"),
            send(30, 0, 1 << 62),
            verdict(30, 0, 1 << 62, "deliver"),
            terminal(40, 0, 1 << 62, "renewed"),
        ];
        let a = analyze(&evs).unwrap();
        assert_eq!(a.groups, 2);
        assert_eq!(a.outcomes.get("withdrawn"), Some(&1));
        assert_eq!(a.outcomes.get("renewed"), Some(&1));
    }

    #[test]
    fn render_reports_full_attribution() {
        let evs = vec![
            send(0, 7, 1),
            verdict(0, 7, 1, "deliver"),
            terminal(1_000_000, 7, 1, "confirmed"),
        ];
        let a = analyze(&evs).unwrap();
        let text = render(Path::new("x.jsonl"), &a);
        assert!(text.contains("attributed 100.0% of the window"), "{text}");
        assert!(text.contains("confirmed=1"), "{text}");
        assert!(text.contains("baseline_protocol"), "{text}");
    }
}
