//! Experiment harness plumbing: reports, tables, JSON output.

use std::fs;
use std::path::Path;

use serde::Serialize;
use serde_json::Value;

/// One printable + serialisable table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Display rows.
    pub rows: Vec<Vec<String>>,
    /// Raw machine-readable rows.
    pub raw: Vec<Value>,
}

impl Table {
    /// Empty table with a caption and header.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Append a display row plus its machine-readable form.
    pub fn push<T: Serialize>(&mut self, cells: Vec<String>, raw: &T) {
        self.rows.push(cells);
        self.raw
            .push(serde_json::to_value(raw).expect("serialisable row"));
    }

    /// Print aligned.
    pub fn print(&self) {
        println!("\n--- {} ---", self.title);
        dtcs::print_table(&self.header, &self.rows);
    }
}

/// A whole experiment's output.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Experiment id (e.g. "e3").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper anchor (section/figure the experiment reproduces).
    pub anchor: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations recorded by the experiment.
    pub notes: Vec<String>,
    /// Engine-health lines (timing-wheel occupancy, cascade rates, route
    /// churn). Printed with the summary but **never serialised** — golden
    /// report JSON stays byte-identical whether or not health is recorded.
    #[serde(skip)]
    pub health: Vec<String>,
}

impl Report {
    /// New report.
    pub fn new(id: &str, title: &str, anchor: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            anchor: anchor.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
            health: Vec::new(),
        }
    }

    /// Attach a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Attach a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Attach a print-only engine-health line (see [`Report::health`]).
    pub fn health(&mut self, s: impl Into<String>) {
        self.health.push(s.into());
    }

    /// Print everything.
    pub fn print(&self) {
        println!("\n==================================================================");
        println!(
            "{}: {}   [{}]",
            self.id.to_uppercase(),
            self.title,
            self.anchor
        );
        println!("==================================================================");
        for t in &self.tables {
            t.print();
        }
        for n in &self.notes {
            println!("note: {n}");
        }
        for h in &self.health {
            println!("health: {h}");
        }
    }

    /// Write JSON next to the workspace (`results/<id>.json`).
    pub fn save(&self, dir: &Path) {
        fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, serde_json::to_string_pretty(self).expect("json")).expect("write report");
        println!("[saved {}]", path.display());
    }
}

/// One-line timing-wheel health summary aggregated over simulator runs:
/// worst slot/queue high-water marks and the cascade rate (events refiled
/// from coarser wheel levels per processed event). A cascade rate near 0
/// means almost every event lands directly in a level-0 slot; sustained
/// growth flags a schedule horizon outgrowing the wheel's inner levels.
///
/// The counters are read through the unified
/// [`dtcs::netsim::MetricsSnapshot`] registry (DESIGN.md §6.9) rather
/// than ad-hoc `Stats` field pokes, so this print-only line and the
/// `--cp-trace` metrics exports can never disagree on a counter's name
/// or meaning. Counters fit in f64 exactly up to 2^53 — far beyond any
/// run here.
pub fn wheel_health<'a>(runs: impl IntoIterator<Item = &'a dtcs::netsim::Stats>) -> String {
    let (mut slot, mut len, mut cascades, mut events, mut n) = (0u64, 0u64, 0u64, 0u64, 0usize);
    let mut clamped = 0u64;
    for s in runs {
        let m = dtcs::netsim::MetricsSnapshot::from_stats(s);
        let g = |name: &str| m.get(name).expect("registry counter") as u64;
        slot = slot.max(g("wheel_slot_occupancy_hwm"));
        len = len.max(g("wheel_len_hwm"));
        cascades += g("wheel_cascade_moves");
        events += g("events");
        clamped += g("past_events_clamped");
        n += 1;
    }
    let rate = if events == 0 {
        0.0
    } else {
        cascades as f64 / events as f64
    };
    format!(
        "timing wheel over {n} runs: slot occupancy hwm {slot}, queue len hwm {len}, \
         {cascades} cascade moves across {events} events ({rate:.4}/event), \
         {clamped} past-events clamped"
    )
}

/// One-line latency-telemetry summary aggregated over simulator runs:
/// the three engine-maintained log2 histograms (per-hop queueing delay,
/// end-to-end delivery latency, delivered hop counts) merged and printed
/// as `n/mean/p50/p99/max`. Print-only — attach via [`Report::health`].
pub fn hist_health<'a>(runs: impl IntoIterator<Item = &'a dtcs::netsim::Stats>) -> String {
    let mut h = dtcs::netsim::TelemetryHistograms::default();
    let mut n = 0usize;
    for s in runs {
        h.merge(&s.hist);
        n += 1;
    }
    format!(
        "telemetry over {n} runs: queue_delay_ns[{}] e2e_latency_ns[{}] hops[{}]",
        h.queue_delay_ns.summary(),
        h.e2e_latency_ns.summary(),
        h.hop_count.summary()
    )
}

/// The unified metrics registry for a control-plane run: every scalar
/// engine counter from [`dtcs::netsim::Stats`] (wheel, route, `cp_*`
/// fault, fluid) plus the protocol-layer [`dtcs::control::CpStats`]
/// counters appended under a `cp_` prefix, in fixed order. This is what
/// `--cp-trace` serialises to `<trace>.metrics.json` /`<trace>.prom`,
/// and the registry the flight-recorder reconciliation proptest balances
/// the event stream against.
pub fn control_metrics(
    stats: &dtcs::netsim::Stats,
    cp: &dtcs::control::CpStats,
) -> dtcs::netsim::MetricsSnapshot {
    let mut s = dtcs::netsim::MetricsSnapshot::from_stats(stats);
    s.push_counter(
        "cp_retransmits",
        cp.retransmits,
        "Control messages retransmitted by a retry timer",
    );
    s.push_counter(
        "cp_give_ups",
        cp.give_ups,
        "Control transactions whose retry budget was exhausted",
    );
    s.push_counter(
        "cp_dup_requests",
        cp.dup_requests,
        "Duplicate requests re-answered from a done-cache",
    );
    s.push_counter(
        "cp_dup_responses",
        cp.dup_responses,
        "Duplicate responses suppressed by receivers",
    );
    s.push_counter(
        "cp_partial_confirms",
        cp.partial_confirms,
        "Deployments confirmed at deadline with partial coverage",
    );
    s.push_counter(
        "cp_reconcile_sweeps",
        cp.reconcile_sweeps,
        "NMS anti-entropy inventory rounds started",
    );
    s.push_counter(
        "cp_reconcile_reinstalls",
        cp.reconcile_reinstalls,
        "Services reinstalled by an anti-entropy sweep",
    );
    s.push_counter(
        "cp_lease_renewals",
        cp.lease_renewals,
        "Lease renewals issued by NMS renewal rounds",
    );
    s.push_counter(
        "cp_lease_expirations",
        cp.lease_expirations,
        "Desired-state entries dropped because their credential expired",
    );
    s.push_counter(
        "cp_withdrawals",
        cp.withdrawals,
        "Owner-initiated withdrawal transactions accepted by the TCSP",
    );
    s.push_counter(
        "cp_withdraw_removes",
        cp.withdraw_removes,
        "Device removals confirmed during withdrawal fan-in",
    );
    s.push_counter(
        "cp_reconcile_removals",
        cp.reconcile_removals,
        "Undesired device-resident services removed by an anti-entropy sweep",
    );
    s.push_counter(
        "cp_expired_deploys",
        cp.expired_deploys,
        "Deploy attempts rejected because the credential expired",
    );
    s
}

/// Hard-enforce the engine invariants every finished bench run must
/// satisfy: packet conservation (every sent packet is delivered, dropped,
/// or still in flight at cutoff) and a clean schedule (no event was ever
/// scheduled in the past and clamped). Violations are simulator bugs, not
/// experiment noise, so they abort the harness rather than skew a table.
pub fn enforce_run_invariants(context: &str, stats: &dtcs::netsim::Stats) {
    if let Err(e) = stats.check_conservation() {
        panic!("{context}: packet conservation violated: {e}");
    }
    assert_eq!(
        stats.past_events_clamped, 0,
        "{context}: {} event(s) were scheduled in the past and clamped",
        stats.past_events_clamped
    );
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Format an optional float cell.
pub fn fopt(v: Option<f64>) -> String {
    match v {
        Some(v) => f(v),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_and_raw_stay_in_sync() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()], &(1, 2));
        t.push(vec!["3".into(), "4".into()], &(3, 4));
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.raw.len(), 2);
        assert_eq!(t.raw[1], serde_json::json!([3, 4]));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = Report::new("eX", "title", "Sec. 0");
        let mut t = Table::new("t", &["k"]);
        t.push(vec!["v".into()], &"v");
        r.table(t);
        r.note("a note");
        let json = serde_json::to_string(&r).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["id"], "eX");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
        assert_eq!(v["notes"][0], "a note");
    }

    #[test]
    fn health_lines_never_reach_the_json() {
        let mut r = Report::new("eX", "t", "a");
        r.health("timing wheel: hwm 3");
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("health"),
            "health must stay print-only so golden reports are unaffected: {json}"
        );
    }

    #[test]
    fn save_writes_json_file() {
        let dir = std::env::temp_dir().join("dtcs_bench_util_test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = Report::new("etest", "t", "a");
        r.save(&dir);
        let content = std::fs::read_to_string(dir.join("etest.json")).unwrap();
        assert!(content.contains("\"etest\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn control_metrics_appends_cp_registry_in_fixed_order() {
        let st = dtcs::netsim::Stats::new();
        let cp = dtcs::control::CpStats {
            retransmits: 2,
            reconcile_reinstalls: 5,
            expired_deploys: 9,
            ..Default::default()
        };
        let s = control_metrics(&st, &cp);
        assert_eq!(s.get("cp_retransmits"), Some(2.0));
        assert_eq!(s.get("cp_reconcile_reinstalls"), Some(5.0));
        assert_eq!(s.get("cp_lease_renewals"), Some(0.0));
        assert_eq!(s.get("cp_withdrawals"), Some(0.0));
        let json = s.to_json_string();
        // CpStats counters extend the engine registry, in declaration
        // order, with the protocol prefix.
        assert!(json.ends_with("\"cp_expired_deploys\":9}"), "{json}");
        let a = json.find("\"cp_msgs\":").expect("engine counter");
        let b = json.find("\"cp_retransmits\":").expect("protocol counter");
        assert!(a < b, "engine registry precedes the CpStats suffix");
        assert!(s
            .to_prometheus()
            .contains("# TYPE dtcs_cp_give_ups counter\n"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(1234.0), "1.234e3");
        assert_eq!(f(0.001), "1.000e-3");
        assert_eq!(fopt(None), "-");
        assert_eq!(fopt(Some(2.0)), "2.000");
    }
}
