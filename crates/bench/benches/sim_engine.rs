//! Engine benches: raw event throughput of the discrete-event core under
//! a steady packet workload (the substrate cost every experiment pays),
//! plus a scheduler-only comparison of the hierarchical timing wheel
//! against the `(time, seq)` binary heap it replaced (DESIGN.md §6.2;
//! numbers recorded in `BENCH_event_wheel.json`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::wheel::TimingWheel;
use dtcs::netsim::{
    Addr, App, AppApi, Disposition, NodeId, Packet, PacketBuilder, Proto, SimTime, Simulator,
    Topology, TrafficClass,
};

/// Source app that replays a precomputed emission schedule through the
/// timer machinery. One app per node replaces the old
/// one-boxed-closure-per-packet scheduling, so the bench measures the
/// engine's steady-state event cost rather than closure allocation.
struct SprayApp {
    /// `(when, flow, dst)`, sorted by `when`.
    schedule: Vec<(SimTime, u64, Addr)>,
    next: usize,
}

impl SprayApp {
    fn arm(&mut self, api: &mut AppApi<'_>) {
        if let Some(&(when, _, _)) = self.schedule.get(self.next) {
            api.set_timer(when.saturating_since(api.now), 0);
        }
    }
}

impl App for SprayApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        self.arm(api);
    }

    fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, _token: u64) {
        while let Some(&(when, flow, dst)) = self.schedule.get(self.next) {
            if when > api.now {
                break;
            }
            self.next += 1;
            api.send(
                PacketBuilder::new(api.self_addr, dst, Proto::Udp, TrafficClass::Background)
                    .size(200)
                    .flow(flow),
            );
        }
        self.arm(api);
    }
}

fn run_workload(n_nodes: usize, pkts: u64) -> u64 {
    let topo = Topology::barabasi_albert(n_nodes, 2, 0.1, 3);
    let mut sim = Simulator::new(topo, 3);
    for i in 0..n_nodes {
        sim.install_app(Addr::new(NodeId(i), 1), Box::new(dtcs::netsim::SinkApp));
    }
    // Same traffic pattern as before: packet k leaves node (17k mod n) for
    // node (31k+7 mod n) at t = 10k µs — but pre-bucketed per source node.
    let mut schedules: Vec<Vec<(SimTime, u64, Addr)>> = vec![Vec::new(); n_nodes];
    for k in 0..pkts {
        let from = (k as usize * 17) % n_nodes;
        let to = Addr::new(NodeId((k as usize * 31 + 7) % n_nodes), 1);
        schedules[from].push((SimTime::from_nanos(k * 10_000), k, to));
    }
    for (i, schedule) in schedules.into_iter().enumerate() {
        if !schedule.is_empty() {
            sim.install_app(
                Addr::new(NodeId(i), 2),
                Box::new(SprayApp { schedule, next: 0 }),
            );
        }
    }
    sim.run_until(SimTime::from_secs(600));
    sim.stats.events
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    for &n in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::new("ba_nodes", n), &n, |b, &n| {
            b.iter(|| run_workload(n, 5_000))
        });
    }
    group.finish();
}

/// Hold-and-churn scheduler workload: keep `pending` events queued, then
/// pop-one/push-one `churn` times with near-uniform spacing plus periodic
/// same-tick bursts and occasional far timers — the event mix
/// `run_workload` produces, minus the packet handling, so the two queue
/// implementations are compared on scheduling cost alone.
fn churn_wheel(pending: u64, churn: u64) -> u64 {
    let mut q = TimingWheel::new();
    let mut seq = 0u64;
    for i in 0..pending {
        q.push(i * 9_973, seq, ());
        seq += 1;
    }
    let mut acc = 0u64;
    for i in 0..churn {
        let e = q.pop_next(u64::MAX).expect("queue never empties");
        acc = acc.wrapping_add(e.time);
        let off = match i % 97 {
            0 => 0,                      // same-tick burst
            96 => 40_000_000,            // coarse timer, cascades down
            _ => 9_000 + (i % 13) * 157, // near-uniform per-hop delay
        };
        q.push(e.time + off, seq, ());
        seq += 1;
    }
    acc
}

/// Same workload over the old scheduler's exact ordering structure.
fn churn_heap(pending: u64, churn: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for i in 0..pending {
        q.push(Reverse((i * 9_973, seq)));
        seq += 1;
    }
    let mut acc = 0u64;
    for i in 0..churn {
        let Reverse((t, _)) = q.pop().expect("queue never empties");
        acc = acc.wrapping_add(t);
        let off = match i % 97 {
            0 => 0,
            96 => 40_000_000,
            _ => 9_000 + (i % 13) * 157,
        };
        q.push(Reverse((t + off, seq)));
        seq += 1;
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &pending in &[1_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("timing_wheel", pending),
            &pending,
            |b, &p| b.iter(|| black_box(churn_wheel(p, 200_000))),
        );
        group.bench_with_input(
            BenchmarkId::new("binary_heap", pending),
            &pending,
            |b, &p| b.iter(|| black_box(churn_heap(p, 200_000))),
        );
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    for &n in &[200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| Topology::barabasi_albert(n, 2, 0.1, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_event_queue, bench_topology);
criterion_main!(benches);
