//! Deterministic randomness.
//!
//! Every stochastic component takes a `u64` seed and derives a
//! `ChaCha8Rng`. ChaCha8 is chosen over `SmallRng` because its output is
//! stable across platforms and rand versions, keeping experiments
//! reproducible bit-for-bit (see DESIGN.md §6).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derive a deterministic RNG from a seed.
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so independent
/// components never share RNG streams (SplitMix64 finaliser).
pub fn child_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn child_seeds_differ_per_label() {
        let s = 1234;
        assert_ne!(child_seed(s, 0), child_seed(s, 1));
        assert_ne!(child_seed(s, 1), child_seed(s, 2));
        assert_eq!(child_seed(s, 5), child_seed(s, 5));
    }
}
