//! Flight-recorder ↔ counter reconciliation: with full (unsampled)
//! control tracing, folding the recorded event stream must reproduce
//! every `cp_*` channel counter in [`dtcs_netsim::Stats`] and every
//! protocol-layer counter in [`dtcs_control::CpStats`] *exactly*. The
//! trace is not a best-effort log — it is a second, independent account
//! of the same run, and the two books must balance.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use dtcs_control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserId,
};
use dtcs_netsim::{
    CpFlightRecorder, CpTraceEvent, CpVerdict, FaultConfig, FaultPlane, Outage, Prefix,
    SimDuration, SimTime, Simulator, Topology,
};

/// Event-stream fold mirroring the counter registry: one bucket per
/// counter the recorder claims to account for.
#[derive(Debug, Default, PartialEq, Eq)]
struct Folded {
    sends: u64,
    drops: u64,
    outage_drops: u64,
    dups: u64,
    jittered: u64,
    crashes: u64,
    retry_fires: u64,
    give_ups: u64,
    dup_requests: u64,
    dup_responses: u64,
    partial_confirms: u64,
    sweeps: u64,
    reinstalls: u64,
}

fn fold(rec: &CpFlightRecorder) -> Folded {
    let mut f = Folded::default();
    for ev in rec.events() {
        match ev {
            CpTraceEvent::Send { .. } => f.sends += 1,
            CpTraceEvent::Verdict { verdict, .. } => match verdict {
                CpVerdict::Drop => f.drops += 1,
                CpVerdict::Outage { .. } => f.outage_drops += 1,
                CpVerdict::Deliver {
                    jitter_ns,
                    dup_extra_ns,
                    ..
                } => {
                    if *jitter_ns > 0 {
                        f.jittered += 1;
                    }
                    if dup_extra_ns.is_some() {
                        f.dups += 1;
                    }
                }
            },
            CpTraceEvent::DedupHit { response, .. } => {
                if *response {
                    f.dup_responses += 1;
                } else {
                    f.dup_requests += 1;
                }
            }
            CpTraceEvent::RetryFire { .. } => f.retry_fires += 1,
            CpTraceEvent::RetryGaveUp { .. } => f.give_ups += 1,
            CpTraceEvent::State { state, .. } => match *state {
                "partial_confirm" => f.partial_confirms += 1,
                "reinstall" => f.reinstalls += 1,
                _ => {}
            },
            CpTraceEvent::Sweep { .. } => f.sweeps += 1,
            CpTraceEvent::Crash { .. } => f.crashes += 1,
            CpTraceEvent::RetrySchedule { .. }
            | CpTraceEvent::RetryStale { .. }
            | CpTraceEvent::Terminal { .. } => {}
        }
    }
    f
}

/// Run the standard register → deploy scenario under the given fault
/// schedule with full tracing, and return (folded trace, expected fold
/// rebuilt from the counters).
fn run_and_fold(seed: u64, drop: f64, dup: f64, jitter_ms: u64, crash: bool) -> (Folded, Folded) {
    let topo = Topology::transit_stub_multihomed(2, 4, 0.2, 7);
    let mut sim = Simulator::new(topo, 3);
    let victim_node = sim.topo.stub_nodes()[0];
    let mut authority = InternetNumberAuthority::new();
    let user_prefix = Prefix::of_node(victim_node);
    authority.allocate(user_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp = ControlPlane::install_with_reconcile(
        &mut sim,
        authority,
        0x5EC,
        tcsp_node,
        authority_node,
        isps,
        SimDuration::from_secs(2),
    );
    cp.add_user(
        &mut sim,
        victim_node,
        vec![user_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    let outages = if crash {
        vec![Outage {
            node: sim.topo.stub_nodes()[1],
            from: SimTime::from_secs(5),
            until: SimTime::from_millis(5200),
            crash: true,
        }]
    } else {
        Vec::new()
    };
    sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed,
        drop_prob: drop,
        dup_prob: dup,
        jitter_max: SimDuration::from_millis(jitter_ms),
        outages,
    }));

    let rec = Arc::new(Mutex::new(CpFlightRecorder::new(1 << 20)));
    sim.set_cp_trace_sink(Box::new(rec.clone()), 1);
    sim.run_until(SimTime::from_secs(30));
    sim.take_cp_trace_sink();

    let guard = rec.lock().expect("recorder mutex");
    assert_eq!(guard.evicted(), 0, "capacity must hold the whole run");
    let folded = fold(&guard);

    let cs = cp.cp_stats.lock().clone();
    let expected = Folded {
        sends: sim.stats.cp_msgs,
        drops: sim.stats.cp_fault_dropped,
        outage_drops: sim.stats.cp_outage_dropped,
        dups: sim.stats.cp_fault_duplicated,
        jittered: sim.stats.cp_fault_jittered,
        crashes: sim.stats.node_crashes,
        retry_fires: cs.retransmits,
        give_ups: cs.give_ups,
        dup_requests: cs.dup_requests,
        dup_responses: cs.dup_responses,
        partial_confirms: cs.partial_confirms,
        sweeps: cs.reconcile_sweeps,
        reinstalls: cs.reconcile_reinstalls,
    };
    (folded, expected)
}

#[test]
fn crash_run_trace_reconciles_and_is_busy() {
    // Deterministic anchor: a lossy run with a device crash exercises
    // every bucket the proptest folds — and the books still balance.
    let (folded, expected) = run_and_fold(42, 0.20, 0.10, 20, true);
    assert_eq!(folded, expected);
    assert!(folded.sends > 0);
    assert!(folded.drops > 0, "20% loss must drop something");
    assert!(folded.crashes == 1, "the scheduled crash must be recorded");
    assert!(folded.sweeps > 0, "reconcile sweeps ran");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite (3): folding the full trace reproduces every channel
    /// (`cp_*`) and protocol (`CpStats`) counter exactly, across random
    /// fault schedules — nothing is double-recorded, nothing is missed.
    #[test]
    fn cp_trace_reconciles_with_cpstats_exactly(
        seed in 0u64..10_000,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.30,
        jitter_ms in 0u64..40,
        crash_sel in 0u8..2,
    ) {
        let (folded, expected) = run_and_fold(seed, drop, dup, jitter_ms, crash_sel == 1);
        prop_assert_eq!(folded, expected);
    }
}
