//! Sweep-engine scaling bench: the same heterogeneous grid of real
//! simulator runs drained two ways — the pre-sweep structure (a plain
//! sequential experiment loop, as the harness ran before the pool
//! existed) and the work-stealing shard pool at 1/2/4/8 threads.
//! The grid mixes cheap and expensive cells on purpose: uneven task
//! costs are exactly where stealing beats static partitioning, and
//! where the old per-experiment barriers idled cores. Numbers are
//! recorded in `BENCH_sweep_scaling.json`.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::mitigation::Placement;
use dtcs::netsim::SimTime;
use dtcs::{run_scenario, ScenarioConfig, Scheme};
use dtcs_bench::sweep::{run_grid, CellRun, SweepCell};

/// A deliberately uneven grid: small/medium/large scenarios under two
/// schemes each — six cost classes, roughly 1x..8x apart.
fn grid_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (tag, n_nodes, secs) in [("s", 40usize, 4u64), ("m", 70, 6), ("l", 110, 9)] {
        for scheme in [
            Scheme::None,
            Scheme::Ingress {
                fraction: 0.2,
                placement: Placement::TopDegree,
            },
        ] {
            let mut cfg = ScenarioConfig {
                n_nodes,
                n_clients: 8,
                n_collateral_clients: 5,
                ..Default::default()
            };
            cfg.attack.n_agents = n_nodes / 4;
            cfg.attack.n_reflectors = n_nodes / 3;
            cfg.attack.stop_at = SimTime::from_secs(secs - 1);
            cfg.duration = SimTime::from_secs(secs);
            cells.push(SweepCell {
                experiment: "bench",
                scenario: format!("{tag}/scheme={}", scheme.label()),
                base_seed: cfg.seed,
                run: Box::new(move |seed| {
                    let mut cfg = cfg.clone();
                    cfg.seed = seed;
                    let out = run_scenario(&cfg, &scheme);
                    let mut metrics = BTreeMap::new();
                    metrics.insert("legit_success".to_string(), out.row.legit_success);
                    CellRun {
                        metrics,
                        stats: out.stats,
                    }
                }),
            });
        }
    }
    cells
}

const REPLICATES: u32 = 2;

fn bench_sweep_scaling(c: &mut Criterion) {
    let cells = grid_cells();

    // One instrumented drain outside the timing loop: per-task wall
    // durations and tasks/sec, printed for BENCH_sweep_scaling.json.
    let probe = run_grid(&cells, REPLICATES, dtcs_bench::sweep::default_threads());
    let total: f64 = probe.task_durations.iter().map(|d| d.as_secs_f64()).sum();
    println!(
        "sweep_scaling probe: {} tasks, {:.3}s busy, {:.1} tasks/s wall",
        probe.task_metrics.len(),
        total,
        probe.task_metrics.len() as f64 / probe.wall.as_secs_f64()
    );

    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);

    // The old shape: one experiment at a time, cells in order, no pool.
    group.bench_function("sequential_loop", |b| {
        b.iter(|| {
            let mut metrics = Vec::new();
            for cell in &cells {
                for r in 0..REPLICATES {
                    let run = (cell.run)(dtcs_bench::sweep::replicate_seed(cell.base_seed, r));
                    metrics.push(run.metrics);
                }
            }
            metrics.len()
        })
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pool", threads),
            &threads,
            |b, &threads| b.iter(|| run_grid(&cells, REPLICATES, threads).task_metrics.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_scaling);
criterion_main!(benches);
