//! Network-wide statistics: the measurement substrate for every experiment.
//!
//! Counters are attributed by ground-truth [`TrafficClass`] (carried on each
//! packet's provenance) and, for drops, by [`DropReason`]. The stop-distance
//! and wasted-bandwidth metrics of experiments E5/E2 come straight from the
//! per-drop and per-delivery hop counts recorded here.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::node::NodeId;
use crate::packet::{Packet, TrafficClass};
use crate::time::{SimDuration, SimTime};
use crate::trace::TelemetryHistograms;

/// Why a packet died.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DropReason {
    /// Tail-dropped at a congested link queue.
    QueueOverflow,
    /// TTL reached zero.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// Delivered to a node with no listening application.
    NoListener,
    /// Static ingress filtering (RFC 2267 baseline).
    IngressFilter,
    /// Anti-spoofing module on an adaptive device (TCS).
    SpoofFilter,
    /// Firewall/classifier module on an adaptive device (TCS).
    DeviceFilter,
    /// Rate-limiter module on an adaptive device (TCS).
    DeviceRateLimit,
    /// Source blacklisted on an adaptive device (TCS).
    Blacklist,
    /// Pushback aggregate rate limit.
    PushbackLimit,
    /// Filter installed from a traceback verdict.
    TracebackFilter,
    /// Rejected at a secure-overlay (SOS/Mayday) perimeter.
    OverlayReject,
    /// Rejected by the i3 indirection defense (direct-IP traffic under
    /// attack).
    IndirectionReject,
    /// Receiving host out of processing capacity (resource exhaustion,
    /// Sec. 2.1).
    HostOverload,
    /// A module violated the device safety contract at run time and the
    /// packet was quarantined.
    SafetyGuard,
}

/// All drop reasons, for iteration in reports.
pub const ALL_DROP_REASONS: [DropReason; 15] = [
    DropReason::QueueOverflow,
    DropReason::TtlExpired,
    DropReason::NoRoute,
    DropReason::NoListener,
    DropReason::IngressFilter,
    DropReason::SpoofFilter,
    DropReason::DeviceFilter,
    DropReason::DeviceRateLimit,
    DropReason::Blacklist,
    DropReason::PushbackLimit,
    DropReason::TracebackFilter,
    DropReason::OverlayReject,
    DropReason::IndirectionReject,
    DropReason::HostOverload,
    DropReason::SafetyGuard,
];

/// Number of traffic classes (see [`class_index`]).
pub const N_CLASSES: usize = 7;

/// Dense index for a traffic class.
pub fn class_index(c: TrafficClass) -> usize {
    match c {
        TrafficClass::LegitRequest => 0,
        TrafficClass::LegitReply => 1,
        TrafficClass::AttackDirect => 2,
        TrafficClass::AttackReflected => 3,
        TrafficClass::AttackControl => 4,
        TrafficClass::Management => 5,
        TrafficClass::Background => 6,
    }
}

/// All classes in dense-index order.
pub const ALL_CLASSES: [TrafficClass; N_CLASSES] = [
    TrafficClass::LegitRequest,
    TrafficClass::LegitReply,
    TrafficClass::AttackDirect,
    TrafficClass::AttackReflected,
    TrafficClass::AttackControl,
    TrafficClass::Management,
    TrafficClass::Background,
];

/// Per-class send/deliver/drop counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Packets emitted.
    pub sent_pkts: u64,
    /// Bytes emitted.
    pub sent_bytes: u64,
    /// Packets delivered to an application.
    pub delivered_pkts: u64,
    /// Bytes delivered to an application.
    pub delivered_bytes: u64,
    /// Packets dropped anywhere.
    pub dropped_pkts: u64,
    /// Bytes dropped anywhere.
    pub dropped_bytes: u64,
    /// Sum of hop counts at delivery (path-length accounting).
    pub delivered_hops: u64,
    /// Sum over deliveries of `bytes * hops` (bandwidth actually consumed).
    pub delivered_byte_hops: u64,
    /// Sum over drops of `bytes * hops` (bandwidth wasted before the drop).
    pub dropped_byte_hops: u64,
}

/// Aggregate for one `(class, reason)` drop bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropAgg {
    /// Packets.
    pub pkts: u64,
    /// Bytes.
    pub bytes: u64,
    /// Sum of hop counts at the drop point (stop-distance numerator).
    pub hops_sum: u64,
}

/// Time series of delivered bytes at a small set of watched nodes.
///
/// The first node registered via [`Stats::watch`] populates the original
/// `watch`/`delivered_bytes` pair (single-node callers are untouched);
/// further `watch` calls append to `extra`, all sharing the first call's
/// bucket width.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Series {
    /// Bucket width (fixed by the first `watch` call).
    pub bucket: SimDuration,
    /// First watched node.
    pub watch: NodeId,
    /// Per-bucket delivered bytes at [`Series::watch`], one slot per
    /// traffic class.
    pub delivered_bytes: Vec<[u64; N_CLASSES]>,
    /// Additional watched nodes and their per-bucket delivered bytes.
    #[serde(default)]
    pub extra: Vec<(NodeId, Vec<[u64; N_CLASSES]>)>,
}

impl Series {
    fn record_at(&mut self, now: SimTime, node: NodeId, class: TrafficClass, bytes: u32) {
        let idx = (now.as_nanos() / self.bucket.as_nanos().max(1)) as usize;
        let buckets = if node == self.watch {
            &mut self.delivered_bytes
        } else if let Some((_, b)) = self.extra.iter_mut().find(|(n, _)| *n == node) {
            b
        } else {
            return;
        };
        if idx >= buckets.len() {
            buckets.resize(idx + 1, [0; N_CLASSES]);
        }
        buckets[idx][class_index(class)] += bytes as u64;
    }

    /// Per-bucket delivered bytes for a watched node; `None` if `node` was
    /// never registered.
    pub fn for_node(&self, node: NodeId) -> Option<&Vec<[u64; N_CLASSES]>> {
        if node == self.watch {
            return Some(&self.delivered_bytes);
        }
        self.extra.iter().find(|(n, _)| *n == node).map(|(_, b)| b)
    }

    /// All watched nodes, registration order.
    pub fn watched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.watch).chain(self.extra.iter().map(|(n, _)| *n))
    }

    /// Merge another series into this one: per-node buckets add
    /// element-wise (shorter vectors are zero-extended), nodes only one
    /// side watched are adopted, and the result is *canonicalized* — the
    /// lowest watched [`NodeId`] becomes [`Series::watch`], the rest sort
    /// into [`Series::extra`] — so the merged form is independent of
    /// merge order. Both series must share a bucket width; merging two
    /// different clock resolutions is a logic error.
    pub fn merge(&mut self, other: &Series) {
        assert_eq!(
            self.bucket, other.bucket,
            "Series::merge requires equal bucket widths"
        );
        fn add_into(dst: &mut Vec<[u64; N_CLASSES]>, src: &[[u64; N_CLASSES]]) {
            if dst.len() < src.len() {
                dst.resize(src.len(), [0; N_CLASSES]);
            }
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                for (a, b) in d.iter_mut().zip(s.iter()) {
                    *a += b;
                }
            }
        }
        // Fold both sides into one node-keyed map, then lay it back out
        // in NodeId order.
        let mut merged: Vec<(NodeId, Vec<[u64; N_CLASSES]>)> = Vec::new();
        let mut fold = |node: NodeId, buckets: &[[u64; N_CLASSES]]| match merged
            .iter_mut()
            .find(|(n, _)| *n == node)
        {
            Some((_, b)) => add_into(b, buckets),
            None => merged.push((node, buckets.to_vec())),
        };
        fold(self.watch, &self.delivered_bytes);
        for (n, b) in &self.extra {
            fold(*n, b);
        }
        fold(other.watch, &other.delivered_bytes);
        for (n, b) in &other.extra {
            fold(*n, b);
        }
        merged.sort_by_key(|(n, _)| *n);
        let (watch, delivered_bytes) = merged.remove(0);
        self.watch = watch;
        self.delivered_bytes = delivered_bytes;
        self.extra = merged;
    }
}

/// Global statistics collected by the simulator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Per-class counters, indexed by [`class_index`].
    pub per_class: [ClassCounters; N_CLASSES],
    /// Drop breakdown.
    pub drops: HashMap<(TrafficClass, DropReason), DropAgg>,
    /// Optional watched-node delivery series.
    pub series: Option<Series>,
    /// Always-on engine telemetry: queue delay, end-to-end latency and hop
    /// count log2 histograms (DESIGN.md §6.4). Print-only in reports —
    /// never serialized into golden experiment JSON.
    pub hist: TelemetryHistograms,
    /// Total events processed (engine health metric).
    pub events: u64,
    /// Events scheduled with a timestamp already in the past and clamped
    /// to the current instant. Always zero for well-behaved modules; a
    /// nonzero count flags a scheduling bug that, before the clamp, would
    /// have silently rewound the simulated clock in release builds.
    pub past_events_clamped: u64,
    /// Link flips applied by failure injection (`Simulator::set_link_up`
    /// calls that actually changed a link's state).
    pub route_link_flips: u64,
    /// Flips whose damage covered more than half the destinations, falling
    /// back to a whole-table parallel recompute.
    pub route_full_recomputes: u64,
    /// Destination trees re-derived across all flips (`n` per full
    /// recompute, only the damaged few per incremental splice). The ratio
    /// to `route_link_flips * n` measures how localized the churn was.
    pub route_trees_recomputed: u64,
    /// Timing wheel: deepest any single slot got (scheduler health; a
    /// runaway slot means pathological same-window event clustering).
    pub wheel_slot_occupancy_hwm: u64,
    /// Timing wheel: most events pending at once.
    pub wheel_len_hwm: u64,
    /// Timing wheel: entries refiled by cascades. See
    /// [`Stats::wheel_cascades_per_event`].
    pub wheel_cascade_moves: u64,
    /// Control messages pushed (all three paths: scenario injection,
    /// agent outboxes, app outboxes) — the fault plane's denominator.
    pub cp_msgs: u64,
    /// Control messages dropped by the fault plane's loss hash.
    pub cp_fault_dropped: u64,
    /// Control messages delivered twice by the fault plane.
    pub cp_fault_duplicated: u64,
    /// Control messages whose delivery was delay-jittered.
    pub cp_fault_jittered: u64,
    /// Control messages swallowed by an outage window (sender or receiver
    /// control channel down).
    pub cp_outage_dropped: u64,
    /// Control messages swallowed by a directed partition window (both
    /// endpoints up, but the cut between their sets was open at push
    /// time).
    pub cp_partition_dropped: u64,
    /// Node crashes executed (fault-plane crash windows plus ad-hoc
    /// [`crate::sim::Simulator::crash_node`] calls).
    pub node_crashes: u64,
    /// Fluid aggregates installed over the run (one per background demand
    /// routed through the fluid layer; see `crate::fluid`).
    pub fluid_aggregates: u64,
    /// Fluid admission rounds executed (one per tick with live aggregates).
    pub fluid_ticks: u64,
    /// Aggregate path recomputations (initial resolution plus every
    /// re-resolution after a route-epoch change).
    pub fluid_recomputes: u64,
    /// Route/filter epoch changes that invalidated cached aggregate state
    /// (each may trigger many [`Stats::fluid_recomputes`]).
    pub fluid_epoch_invalidations: u64,
    /// Demands materialized as discrete packet emitters because an
    /// endpoint sits in the packetized set (attack sources, filtering
    /// devices, the victim) — the fluid/packet boundary shim.
    pub fluid_boundary_conversions: u64,
}

impl ClassCounters {
    /// Fold another run's counters into this one (all fields add).
    /// Destructured without `..` so a new field cannot be forgotten here.
    pub fn merge(&mut self, other: &ClassCounters) {
        let ClassCounters {
            sent_pkts,
            sent_bytes,
            delivered_pkts,
            delivered_bytes,
            dropped_pkts,
            dropped_bytes,
            delivered_hops,
            delivered_byte_hops,
            dropped_byte_hops,
        } = *other;
        self.sent_pkts += sent_pkts;
        self.sent_bytes += sent_bytes;
        self.delivered_pkts += delivered_pkts;
        self.delivered_bytes += delivered_bytes;
        self.dropped_pkts += dropped_pkts;
        self.dropped_bytes += dropped_bytes;
        self.delivered_hops += delivered_hops;
        self.delivered_byte_hops += delivered_byte_hops;
        self.dropped_byte_hops += dropped_byte_hops;
    }
}

impl DropAgg {
    /// Fold another drop bucket into this one (exhaustive, like
    /// [`ClassCounters::merge`]).
    pub fn merge(&mut self, other: &DropAgg) {
        let DropAgg {
            pkts,
            bytes,
            hops_sum,
        } = *other;
        self.pkts += pkts;
        self.bytes += bytes;
        self.hops_sum += hops_sum;
    }
}

impl Stats {
    /// Fresh statistics.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Fold another run's statistics into this one.
    ///
    /// This is the shard-combining operation of the sweep engine
    /// (DESIGN.md §6.6): **commutative**, **associative**, with
    /// `Stats::default()` as the **identity**, so any work-stealing
    /// schedule over independent simulator shards folds to one identical
    /// aggregate. Counters and drop buckets add; telemetry histograms
    /// merge bucket-wise; the timing-wheel high-water marks take the max
    /// (worst shard wins); watched-node series merge element-wise keyed
    /// by node and are canonicalized by [`Series::merge`] so shard
    /// arrival order cannot leak into the result.
    pub fn merge(&mut self, other: &Stats) {
        // Exhaustive destructuring, no `..`: adding a Stats field without
        // deciding how it merges is a compile error here, not a silently
        // dropped counter in every sweep aggregate.
        let Stats {
            per_class,
            drops,
            series,
            hist,
            events,
            past_events_clamped,
            route_link_flips,
            route_full_recomputes,
            route_trees_recomputed,
            wheel_slot_occupancy_hwm,
            wheel_len_hwm,
            wheel_cascade_moves,
            cp_msgs,
            cp_fault_dropped,
            cp_fault_duplicated,
            cp_fault_jittered,
            cp_outage_dropped,
            cp_partition_dropped,
            node_crashes,
            fluid_aggregates,
            fluid_ticks,
            fluid_recomputes,
            fluid_epoch_invalidations,
            fluid_boundary_conversions,
        } = other;
        for (c, o) in self.per_class.iter_mut().zip(per_class.iter()) {
            c.merge(o);
        }
        for (k, agg) in drops {
            self.drops.entry(*k).or_default().merge(agg);
        }
        match (&mut self.series, series) {
            (_, None) => {}
            (None, Some(o)) => self.series = Some(o.clone()),
            (Some(s), Some(o)) => s.merge(o),
        }
        self.hist.merge(hist);
        self.events += *events;
        self.past_events_clamped += *past_events_clamped;
        self.route_link_flips += *route_link_flips;
        self.route_full_recomputes += *route_full_recomputes;
        self.route_trees_recomputed += *route_trees_recomputed;
        self.wheel_slot_occupancy_hwm =
            self.wheel_slot_occupancy_hwm.max(*wheel_slot_occupancy_hwm);
        self.wheel_len_hwm = self.wheel_len_hwm.max(*wheel_len_hwm);
        self.wheel_cascade_moves += *wheel_cascade_moves;
        self.cp_msgs += *cp_msgs;
        self.cp_fault_dropped += *cp_fault_dropped;
        self.cp_fault_duplicated += *cp_fault_duplicated;
        self.cp_fault_jittered += *cp_fault_jittered;
        self.cp_outage_dropped += *cp_outage_dropped;
        self.cp_partition_dropped += *cp_partition_dropped;
        self.node_crashes += *node_crashes;
        self.fluid_aggregates += *fluid_aggregates;
        self.fluid_ticks += *fluid_ticks;
        self.fluid_recomputes += *fluid_recomputes;
        self.fluid_epoch_invalidations += *fluid_epoch_invalidations;
        self.fluid_boundary_conversions += *fluid_boundary_conversions;
    }

    /// Enable a delivery time series at `watch` with the given bucket
    /// width. May be called repeatedly to watch a small set of nodes;
    /// calls after the first reuse the first call's bucket width, and
    /// re-watching an already-watched node is a no-op.
    pub fn watch(&mut self, watch: NodeId, bucket: SimDuration) {
        match &mut self.series {
            None => {
                self.series = Some(Series {
                    bucket,
                    watch,
                    delivered_bytes: Vec::new(),
                    extra: Vec::new(),
                });
            }
            Some(s) => {
                if s.watch == watch || s.extra.iter().any(|(n, _)| *n == watch) {
                    return;
                }
                s.extra.push((watch, Vec::new()));
            }
        }
    }

    /// Record a packet emission.
    pub fn record_sent(&mut self, pkt: &Packet) {
        let c = &mut self.per_class[class_index(pkt.provenance.class)];
        c.sent_pkts += 1;
        c.sent_bytes += pkt.size as u64;
    }

    /// Record a delivery to an application at `node`.
    pub fn record_delivered(&mut self, now: SimTime, node: NodeId, pkt: &Packet) {
        let c = &mut self.per_class[class_index(pkt.provenance.class)];
        c.delivered_pkts += 1;
        c.delivered_bytes += pkt.size as u64;
        c.delivered_hops += pkt.hops as u64;
        c.delivered_byte_hops += pkt.size as u64 * pkt.hops as u64;
        self.hist
            .e2e_latency_ns
            .record(now.saturating_since(pkt.sent_at).as_nanos());
        self.hist.hop_count.record(pkt.hops as u64);
        if let Some(s) = &mut self.series {
            s.record_at(now, node, pkt.provenance.class, pkt.size);
        }
    }

    /// Record a drop.
    pub fn record_dropped(&mut self, pkt: &Packet, reason: DropReason) {
        let class = pkt.provenance.class;
        let c = &mut self.per_class[class_index(class)];
        c.dropped_pkts += 1;
        c.dropped_bytes += pkt.size as u64;
        c.dropped_byte_hops += pkt.size as u64 * pkt.hops as u64;
        let agg = self.drops.entry((class, reason)).or_default();
        agg.pkts += 1;
        agg.bytes += pkt.size as u64;
        agg.hops_sum += pkt.hops as u64;
    }

    /// Counters for one class.
    pub fn class(&self, class: TrafficClass) -> &ClassCounters {
        &self.per_class[class_index(class)]
    }

    /// Delivery ratio (delivered/sent packets) for a class; 1.0 when none
    /// were sent.
    pub fn delivery_ratio(&self, class: TrafficClass) -> f64 {
        let c = self.class(class);
        if c.sent_pkts == 0 {
            1.0
        } else {
            c.delivered_pkts as f64 / c.sent_pkts as f64
        }
    }

    /// Mean hop count at which packets of `class` were dropped for `reason`
    /// — the "stop distance from source" of E5. `None` when no such drops.
    pub fn mean_stop_distance(&self, class: TrafficClass, reason: DropReason) -> Option<f64> {
        let agg = self.drops.get(&(class, reason))?;
        if agg.pkts == 0 {
            None
        } else {
            Some(agg.hops_sum as f64 / agg.pkts as f64)
        }
    }

    /// Mean drop distance over all reasons for a class.
    pub fn mean_stop_distance_all(&self, class: TrafficClass) -> Option<f64> {
        let mut pkts = 0u64;
        let mut hops = 0u64;
        for ((c, _), agg) in &self.drops {
            if *c == class {
                pkts += agg.pkts;
                hops += agg.hops_sum;
            }
        }
        if pkts == 0 {
            None
        } else {
            Some(hops as f64 / pkts as f64)
        }
    }

    /// Total bandwidth consumed by attack traffic, in byte·hops (delivered +
    /// wasted-before-drop). This is the paper's "network resources wasted
    /// for transporting attack traffic around the globe" (Sec. 6).
    pub fn attack_byte_hops(&self) -> u64 {
        [TrafficClass::AttackDirect, TrafficClass::AttackReflected]
            .iter()
            .map(|&c| {
                let cc = self.class(c);
                cc.delivered_byte_hops + cc.dropped_byte_hops
            })
            .sum()
    }

    /// Total drops for a reason across classes.
    pub fn drops_for_reason(&self, reason: DropReason) -> DropAgg {
        let mut out = DropAgg::default();
        for ((_, r), agg) in &self.drops {
            if *r == reason {
                out.pkts += agg.pkts;
                out.bytes += agg.bytes;
                out.hops_sum += agg.hops_sum;
            }
        }
        out
    }

    /// Mean cascade refiles per processed event. Should stay roughly
    /// constant (and well below 1) for healthy workload spacing; upward
    /// drift flags event patterns that keep landing in coarse wheel levels.
    /// Zero when no events ran.
    pub fn wheel_cascades_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.wheel_cascade_moves as f64 / self.events as f64
        }
    }

    /// Consistency invariant: for every class,
    /// `delivered + dropped <= sent` (the remainder is in flight).
    pub fn check_conservation(&self) -> Result<(), String> {
        for (i, c) in self.per_class.iter().enumerate() {
            if c.delivered_pkts + c.dropped_pkts > c.sent_pkts {
                return Err(format!(
                    "class {i}: delivered {} + dropped {} > sent {}",
                    c.delivered_pkts, c.dropped_pkts, c.sent_pkts
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::packet::{PacketBuilder, Proto};

    fn mk(class: TrafficClass, size: u32, hops: u8) -> Packet {
        let mut p = PacketBuilder::new(
            Addr::new(NodeId(0), 0),
            Addr::new(NodeId(1), 0),
            Proto::Udp,
            class,
        )
        .size(size)
        .build(1, NodeId(0));
        p.hops = hops;
        p
    }

    #[test]
    fn sent_delivered_dropped_accounting() {
        let mut s = Stats::new();
        let p = mk(TrafficClass::LegitRequest, 100, 3);
        s.record_sent(&p);
        s.record_delivered(SimTime::ZERO, NodeId(1), &p);
        let c = s.class(TrafficClass::LegitRequest);
        assert_eq!(c.sent_pkts, 1);
        assert_eq!(c.delivered_bytes, 100);
        assert_eq!(c.delivered_byte_hops, 300);
        assert_eq!(s.delivery_ratio(TrafficClass::LegitRequest), 1.0);
        s.check_conservation().unwrap();
    }

    #[test]
    fn stop_distance_mean() {
        let mut s = Stats::new();
        for hops in [2u8, 4u8] {
            let p = mk(TrafficClass::AttackDirect, 64, hops);
            s.record_sent(&p);
            s.record_dropped(&p, DropReason::SpoofFilter);
        }
        assert_eq!(
            s.mean_stop_distance(TrafficClass::AttackDirect, DropReason::SpoofFilter),
            Some(3.0)
        );
        assert_eq!(
            s.mean_stop_distance_all(TrafficClass::AttackDirect),
            Some(3.0)
        );
        assert_eq!(
            s.mean_stop_distance(TrafficClass::AttackDirect, DropReason::TtlExpired),
            None
        );
    }

    #[test]
    fn attack_byte_hops_counts_both_flavours() {
        let mut s = Stats::new();
        let d = mk(TrafficClass::AttackDirect, 100, 2);
        s.record_sent(&d);
        s.record_dropped(&d, DropReason::QueueOverflow);
        let r = mk(TrafficClass::AttackReflected, 200, 5);
        s.record_sent(&r);
        s.record_delivered(SimTime::ZERO, NodeId(1), &r);
        assert_eq!(s.attack_byte_hops(), 100 * 2 + 200 * 5);
    }

    #[test]
    fn series_buckets() {
        let mut s = Stats::new();
        s.watch(NodeId(1), SimDuration::from_millis(100));
        let p = mk(TrafficClass::LegitReply, 500, 1);
        s.record_delivered(SimTime::from_millis(50), NodeId(1), &p);
        s.record_delivered(SimTime::from_millis(250), NodeId(1), &p);
        // A delivery at another node is not sampled.
        s.record_delivered(SimTime::from_millis(250), NodeId(9), &p);
        let series = s.series.as_ref().unwrap();
        assert_eq!(series.delivered_bytes.len(), 3);
        let li = class_index(TrafficClass::LegitReply);
        assert_eq!(series.delivered_bytes[0][li], 500);
        assert_eq!(series.delivered_bytes[1][li], 0);
        assert_eq!(series.delivered_bytes[2][li], 500);
    }

    #[test]
    fn series_watches_multiple_nodes() {
        let mut s = Stats::new();
        s.watch(NodeId(1), SimDuration::from_millis(100));
        s.watch(NodeId(9), SimDuration::from_millis(100));
        s.watch(NodeId(1), SimDuration::from_millis(100)); // duplicate: no-op
        let p = mk(TrafficClass::LegitReply, 500, 1);
        s.record_delivered(SimTime::from_millis(50), NodeId(1), &p);
        s.record_delivered(SimTime::from_millis(250), NodeId(9), &p);
        // A delivery at an unwatched node is not sampled anywhere.
        s.record_delivered(SimTime::from_millis(250), NodeId(4), &p);
        let series = s.series.as_ref().unwrap();
        assert_eq!(
            series.watched_nodes().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(9)]
        );
        let li = class_index(TrafficClass::LegitReply);
        let first = series.for_node(NodeId(1)).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0][li], 500);
        let extra = series.for_node(NodeId(9)).unwrap();
        assert_eq!(extra.len(), 3);
        assert_eq!(extra[2][li], 500);
        assert!(series.for_node(NodeId(4)).is_none());
        // The original single-node view is untouched by extra watches.
        assert_eq!(series.delivered_bytes[0][li], 500);
    }

    #[test]
    fn delivery_telemetry_histograms_update() {
        let mut s = Stats::new();
        let mut p = mk(TrafficClass::LegitRequest, 100, 3);
        p.sent_at = SimTime::from_millis(10);
        s.record_sent(&p);
        s.record_delivered(SimTime::from_millis(14), NodeId(1), &p);
        assert_eq!(s.hist.e2e_latency_ns.count(), 1);
        assert_eq!(s.hist.e2e_latency_ns.max(), 4_000_000);
        assert_eq!(s.hist.hop_count.max(), 3);
    }

    #[test]
    fn conservation_violation_detected() {
        let mut s = Stats::new();
        let p = mk(TrafficClass::Background, 10, 0);
        s.record_delivered(SimTime::ZERO, NodeId(1), &p); // never sent
        assert!(s.check_conservation().is_err());
    }

    #[test]
    fn merge_folds_counters_histograms_and_hwms() {
        let mut a = Stats::new();
        let pa = mk(TrafficClass::LegitRequest, 100, 3);
        a.record_sent(&pa);
        a.record_delivered(SimTime::from_millis(1), NodeId(1), &pa);
        a.events = 10;
        a.wheel_slot_occupancy_hwm = 4;
        a.wheel_len_hwm = 100;
        a.wheel_cascade_moves = 2;

        a.cp_msgs = 20;
        a.cp_fault_dropped = 4;
        a.cp_fault_jittered = 1;
        a.route_link_flips = 6;
        a.route_full_recomputes = 2;
        a.route_trees_recomputed = 40;
        a.fluid_aggregates = 3;
        a.fluid_ticks = 100;
        a.fluid_recomputes = 5;

        let mut b = Stats::new();
        let pb = mk(TrafficClass::AttackDirect, 64, 2);
        b.record_sent(&pb);
        b.record_dropped(&pb, DropReason::SpoofFilter);
        b.events = 5;
        b.wheel_slot_occupancy_hwm = 9;
        b.wheel_len_hwm = 50;
        b.wheel_cascade_moves = 3;
        b.node_crashes = 1;
        b.cp_msgs = 7;
        b.cp_fault_dropped = 2;
        b.cp_fault_duplicated = 3;
        b.cp_outage_dropped = 5;
        b.cp_partition_dropped = 4;
        b.past_events_clamped = 0;
        b.route_link_flips = 1;
        b.fluid_aggregates = 2;
        b.fluid_recomputes = 1;
        b.fluid_epoch_invalidations = 4;
        b.fluid_boundary_conversions = 6;

        a.merge(&b);
        assert_eq!(a.class(TrafficClass::LegitRequest).delivered_pkts, 1);
        assert_eq!(a.class(TrafficClass::AttackDirect).dropped_pkts, 1);
        assert_eq!(
            a.drops
                .get(&(TrafficClass::AttackDirect, DropReason::SpoofFilter)),
            Some(&DropAgg {
                pkts: 1,
                bytes: 64,
                hops_sum: 2
            })
        );
        assert_eq!(a.events, 15);
        assert_eq!(a.wheel_slot_occupancy_hwm, 9, "HWMs take the max");
        assert_eq!(a.wheel_len_hwm, 100, "HWMs take the max");
        assert_eq!(a.wheel_cascade_moves, 5);
        assert_eq!(a.node_crashes, 1);
        // Control-plane fault counters (PR 5) all add.
        assert_eq!(a.cp_msgs, 27);
        assert_eq!(a.cp_fault_dropped, 6);
        assert_eq!(a.cp_fault_duplicated, 3);
        assert_eq!(a.cp_fault_jittered, 1);
        assert_eq!(a.cp_outage_dropped, 5);
        assert_eq!(a.cp_partition_dropped, 4);
        // Route-churn counters add.
        assert_eq!(a.route_link_flips, 7);
        assert_eq!(a.route_full_recomputes, 2);
        assert_eq!(a.route_trees_recomputed, 40);
        // Fluid-layer counters (PR 8) all add.
        assert_eq!(a.fluid_aggregates, 5);
        assert_eq!(a.fluid_ticks, 100);
        assert_eq!(a.fluid_recomputes, 6);
        assert_eq!(a.fluid_epoch_invalidations, 4);
        assert_eq!(a.fluid_boundary_conversions, 6);
        // Telemetry histograms (PR 4) fold bucket-wise: a delivered one
        // packet with 3 hops, b recorded none.
        assert_eq!(a.hist.e2e_latency_ns.count(), 1);
        assert_eq!(a.hist.hop_count.count(), 1);
        assert_eq!(a.hist.hop_count.max(), 3);
        a.check_conservation().unwrap();
    }

    #[test]
    fn merge_with_default_is_identity_both_ways() {
        let mut a = Stats::new();
        let p = mk(TrafficClass::LegitReply, 100, 3);
        a.record_sent(&p);
        a.record_delivered(SimTime::from_millis(4), NodeId(1), &p);
        a.watch(NodeId(1), SimDuration::from_millis(100));
        a.record_delivered(SimTime::from_millis(5), NodeId(1), &p);
        a.events = 7;
        let snapshot = a.clone();
        a.merge(&Stats::default());
        assert_eq!(a, snapshot, "right identity");
        let mut d = Stats::default();
        d.merge(&snapshot);
        assert_eq!(d, snapshot, "left identity");
    }

    #[test]
    fn merge_series_is_node_keyed_and_canonical() {
        let p = mk(TrafficClass::LegitReply, 500, 1);
        let mut a = Stats::new();
        a.watch(NodeId(9), SimDuration::from_millis(100));
        a.watch(NodeId(1), SimDuration::from_millis(100));
        a.record_delivered(SimTime::from_millis(50), NodeId(9), &p);
        a.record_delivered(SimTime::from_millis(150), NodeId(1), &p);
        let mut b = Stats::new();
        b.watch(NodeId(1), SimDuration::from_millis(100));
        b.record_delivered(SimTime::from_millis(150), NodeId(1), &p);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "series merge is commutative after canonicalization");
        let s = ab.series.as_ref().unwrap();
        assert_eq!(s.watch, NodeId(1), "lowest watched node becomes primary");
        let li = class_index(TrafficClass::LegitReply);
        assert_eq!(s.for_node(NodeId(1)).unwrap()[1][li], 1000);
        assert_eq!(s.for_node(NodeId(9)).unwrap()[0][li], 500);
    }

    #[test]
    fn drops_for_reason_sums_classes() {
        let mut s = Stats::new();
        let a = mk(TrafficClass::AttackDirect, 10, 1);
        let b = mk(TrafficClass::LegitRequest, 20, 2);
        s.record_sent(&a);
        s.record_sent(&b);
        s.record_dropped(&a, DropReason::IngressFilter);
        s.record_dropped(&b, DropReason::IngressFilter);
        let agg = s.drops_for_reason(DropReason::IngressFilter);
        assert_eq!(agg.pkts, 2);
        assert_eq!(agg.bytes, 30);
    }
}
