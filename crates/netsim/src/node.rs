//! Nodes: autonomous systems / sites in the simulated internetwork.

use serde::{Deserialize, Serialize};

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// Coarse role of a node in the AS hierarchy.
///
/// The traffic control service cares about *where* in the hierarchy a device
/// sits (Sec. 4.2 of the paper: anti-spoofing is only sound at the customer
/// edge, not on transit paths), so topology generators label each node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeRole {
    /// Backbone / transit provider carrying third-party traffic.
    Transit,
    /// Peripheral (stub) AS: originates and sinks traffic for its own
    /// customers only.
    Stub,
}

/// Static description of one node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (equal to its index in `Topology::nodes`).
    pub id: NodeId,
    /// Role in the hierarchy.
    pub role: NodeRole,
    /// Links incident to this node.
    pub links: Vec<LinkId>,
}

impl Node {
    /// Degree in the AS graph.
    pub fn degree(&self) -> usize {
        self.links.len()
    }
}
