//! The scheme-comparison scenario: one reflector attack, one legitimate
//! workload, one mitigation scheme — measured.
//!
//! This is the engine behind experiments E2 (effectiveness), E4
//! (collateral damage) and E9 (pushback misattribution): the same attack
//! and workload are replayed under each scheme, and the outcome row
//! captures who got served, who got cut off, and where attack traffic
//! died.

use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_attack::{
    hosts, install_clients_at, mean_success, plan_client_addrs, ClientApp, ClientHandle,
    ReflectorAttack, ReflectorAttackConfig, VictimApp, VictimHandle,
};
use dtcs_mitigation::{
    choose_nodes, deploy_fluid_ingress, deploy_ingress, deploy_ppm_everywhere,
    deploy_pushback_everywhere, install_traceback_filters, reconstruct_sources, I3Defense,
    MarkCollectorAgent, Placement, PushbackHandle, SosOverlay,
};
use dtcs_netsim::{
    Addr, FlightRecorder, FluidDemand, NodeId, Prefix, Proto, SimDuration, SimTime, Simulator,
    SinkApp, Topology, TrafficClass,
};

use crate::metrics::OutcomeRow;
use crate::schemes::Scheme;
use crate::tcs::{deploy_tcs_static, TcsDeployment};

/// Which attack the scenario runs (the E2-family row generator covers
/// both of the paper's threat shapes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Fig. 1 reflector attack: spoofed requests bounced off innocent
    /// servers.
    Reflector,
    /// Classic direct flood straight at the victim.
    Direct {
        /// Source forging policy of the flooding agents.
        spoof: dtcs_attack::SpoofMode,
    },
}

/// Packet-trace capture parameters for a scenario run (observation only:
/// an attached flight recorder never changes packet fates — see
/// `dtcs_netsim::trace`).
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Record every `one_in`-th emitted packet's lifecycle (1 = all).
    pub one_in: u64,
    /// Flight-recorder ring capacity in events; beyond it the oldest
    /// events are evicted.
    pub capacity: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            one_in: 1,
            capacity: 1 << 20,
        }
    }
}

/// Which network graph the scenario runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyChoice {
    /// Barabási–Albert preferential attachment, sized by
    /// [`ScenarioConfig::n_nodes`] — the historical default (BA-400 and
    /// smaller).
    BarabasiAlbert,
    /// Transit-stub hierarchy with at least `n` nodes
    /// (`Topology::transit_stub_at_least`): hierarchical routing, linear
    /// memory, the shape for 100k+-node scale scenarios.
    TransitStub {
        /// Minimum node count.
        n: usize,
    },
}

/// Steady background traffic between stub hosts (the load the fluid layer
/// exists to carry; see `dtcs_netsim::fluid`).
#[derive(Clone, Copy, Debug)]
pub struct BackgroundSpec {
    /// Number of long-lived flows. 0 (the default) keeps the scenario
    /// byte-identical to builds without background traffic.
    pub n_flows: usize,
    /// Per-flow rate, bits per second.
    pub rate_bps: f64,
    /// Per-flow packet size, bytes.
    pub pkt_size: u32,
}

impl Default for BackgroundSpec {
    fn default() -> Self {
        BackgroundSpec {
            n_flows: 0,
            rate_bps: 2e5,
            pkt_size: 500,
        }
    }
}

/// Scenario parameters shared across every scheme in a comparison.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// AS count of the Barabási–Albert topology.
    pub n_nodes: usize,
    /// BA attachment parameter.
    pub ba_m: usize,
    /// Fraction of top-degree nodes labelled transit.
    pub transit_fraction: f64,
    /// The attack.
    pub attack: ReflectorAttackConfig,
    /// Attack shape (the `attack` parameters are reused for both: agent
    /// counts, rates, timing, victim capacity).
    pub attack_kind: AttackKind,
    /// Legitimate clients of the victim.
    pub n_clients: usize,
    /// Client request period.
    pub client_period: SimDuration,
    /// Third-party clients of reflector-hosted services (collateral
    /// probes).
    pub n_collateral_clients: usize,
    /// Simulated duration.
    pub duration: SimTime,
    /// Master seed.
    pub seed: u64,
    /// Optional packet flight recording (None = zero-cost disabled path).
    pub trace: Option<TraceSpec>,
    /// Network graph shape.
    pub topology: TopologyChoice,
    /// Steady background traffic between stub hosts.
    pub background: BackgroundSpec,
    /// Carry background flows as fluid aggregates with this accounting
    /// tick instead of discrete packets. `None` (default) keeps the run
    /// purely packet-level. The victim is packetized either way, so its
    /// observables are real packets.
    pub fluid: Option<SimDuration>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_nodes: 200,
            ba_m: 2,
            transit_fraction: 0.1,
            attack: ReflectorAttackConfig {
                n_agents: 80,
                n_reflectors: 120,
                agent_rate_pps: 60.0,
                start_at: SimTime::from_secs(5),
                stop_at: SimTime::from_secs(25),
                victim_capacity_pps: 800.0,
                ..Default::default()
            },
            attack_kind: AttackKind::Reflector,
            n_clients: 30,
            client_period: SimDuration::from_millis(250),
            n_collateral_clients: 20,
            duration: SimTime::from_secs(30),
            seed: 42,
            trace: None,
            topology: TopologyChoice::BarabasiAlbert,
            background: BackgroundSpec::default(),
            fluid: None,
        }
    }
}

/// Unified ground truth of whichever attack shape was installed.
struct InstalledAttack {
    victim_stats: VictimHandle,
    /// Third-party service addresses for collateral probes (reflectors in
    /// the reflector case; uninvolved DNS servers in the direct case).
    service_addrs: Vec<Addr>,
}

/// Everything a finished run exposes.
pub struct ScenarioOutput {
    /// The metrics row.
    pub row: OutcomeRow,
    /// Final network statistics.
    pub stats: dtcs_netsim::Stats,
    /// The packet flight record, when [`ScenarioConfig::trace`] asked for
    /// one.
    pub trace: Option<FlightRecorder>,
}

/// Run one scheme under the configured scenario.
pub fn run_scenario(cfg: &ScenarioConfig, scheme: &Scheme) -> ScenarioOutput {
    let topo = match cfg.topology {
        TopologyChoice::BarabasiAlbert => {
            Topology::barabasi_albert(cfg.n_nodes, cfg.ba_m, cfg.transit_fraction, cfg.seed)
        }
        TopologyChoice::TransitStub { n } => Topology::transit_stub_at_least(n, cfg.seed),
    };
    let mut sim = Simulator::new(topo, cfg.seed);
    if let Some(tick) = cfg.fluid {
        sim.enable_fluid(tick);
    }
    let recorder = cfg.trace.map(|spec| {
        let rec = Arc::new(std::sync::Mutex::new(FlightRecorder::new(spec.capacity)));
        sim.set_trace_sink(Box::new(Arc::clone(&rec)), spec.one_in);
        rec
    });
    let stubs = sim.topo.stub_nodes();
    assert!(!stubs.is_empty(), "need stub nodes for a victim");
    let victim_node = stubs[cfg.seed as usize % stubs.len()];
    if cfg.fluid.is_some() {
        // The paper's observables live at the victim: keep its traffic
        // discrete regardless of engine.
        sim.fluid_packetize(victim_node);
    }
    let victim_addr = Addr::new(victim_node, hosts::SERVICE);
    let victim_prefix = Prefix::of_node(victim_node);
    let client_addrs = plan_client_addrs(&sim, victim_node, cfg.n_clients, cfg.seed);

    // --- Scheme pre-attack installation -------------------------------
    let mut attack_cfg = cfg.attack.clone();
    attack_cfg.seed = cfg.seed;
    let mut pushback: Option<PushbackHandle> = None;
    let mut sos: Option<SosOverlay> = None;
    let mut i3: Option<(I3Defense, VictimHandle)> = None;
    let mut tcs: Option<TcsDeployment> = None;
    let mut marks_for_traceback = None;
    let identified_sources: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));

    match scheme {
        Scheme::None => {}
        Scheme::Ingress {
            fraction,
            placement,
        } => {
            deploy_ingress(&mut sim, *fraction, *placement, cfg.seed ^ 0x1A);
            if sim.fluid_enabled() {
                // Rate-side mirror: the same nodes (same seed) police
                // fluid aggregates, so filter verdicts consume aggregate
                // rates just as they consume packets.
                deploy_fluid_ingress(&mut sim, *fraction, *placement, cfg.seed ^ 0x1A);
            }
        }
        Scheme::Pushback(pb_cfg) => {
            pushback = Some(deploy_pushback_everywhere(&mut sim, *pb_cfg));
        }
        Scheme::TracebackFilter { marking_p, .. } => {
            deploy_ppm_everywhere(&mut sim, *marking_p, cfg.seed ^ 0x7B);
            // The victim can classify attack junk by protocol: unsolicited
            // replies during a reflector attack, the flood protocol (UDP)
            // during a direct flood. Only those feed the reconstruction.
            let protos = match cfg.attack_kind {
                AttackKind::Reflector => crate::tcs::reflected_reply_protos(),
                AttackKind::Direct { .. } => vec![Proto::Udp],
            };
            let (collector, marks) = MarkCollectorAgent::new(victim_node);
            let collector = collector.with_proto_filter(protos);
            sim.add_agent(victim_node, Box::new(collector));
            marks_for_traceback = Some(marks);
        }
        Scheme::Sos {
            n_soaps,
            n_servlets,
        } => {
            // Overlay nodes drawn from well-connected ASes, away from the
            // victim.
            let pool: Vec<NodeId> = sim
                .topo
                .top_degree(n_soaps + n_servlets + 2)
                .into_iter()
                .filter(|&n| n != victim_node)
                .collect();
            let soap_nodes: Vec<NodeId> = pool.iter().copied().take(*n_soaps).collect();
            let servlet_nodes: Vec<NodeId> = pool
                .iter()
                .copied()
                .skip(*n_soaps)
                .take(*n_servlets)
                .collect();
            sos = Some(SosOverlay::install(
                &mut sim,
                victim_addr,
                &soap_nodes,
                &servlet_nodes,
                client_addrs.clone(),
            ));
        }
        Scheme::I3 { ip_hidden } => {
            let relay_node = sim
                .topo
                .top_degree(2)
                .into_iter()
                .find(|&n| n != victim_node)
                .expect("topology big enough");
            let defense = I3Defense::install(&mut sim, victim_addr, relay_node);
            // The victim serves only its trigger; install it ourselves.
            let (vapp, vstats) = VictimApp::new(cfg.attack.victim_capacity_pps, 600);
            sim.install_app(
                victim_addr,
                Box::new(vapp.restrict_sources(vec![defense.trigger])),
            );
            attack_cfg.install_victim = false;
            if *ip_hidden {
                // Attackers cannot name the victim; they aim at the
                // public trigger instead.
                attack_cfg.target_override = Some(defense.trigger);
            }
            i3 = Some((defense, vstats));
        }
        Scheme::Tcs(tcs_cfg) => {
            let mut tcs_cfg = tcs_cfg.clone();
            tcs_cfg.seed = cfg.seed ^ 0x7C5;
            tcs = Some(deploy_tcs_static(&mut sim, victim_prefix, &tcs_cfg));
        }
    }

    // --- Attack + victim ------------------------------------------------
    let attack = match cfg.attack_kind {
        AttackKind::Reflector => {
            let a = ReflectorAttack::install(&mut sim, victim_node, &attack_cfg);
            InstalledAttack {
                victim_stats: a.victim_stats,
                service_addrs: a.reflectors,
            }
        }
        AttackKind::Direct { spoof } => {
            // The victim app: installed here (unless i3 already did).
            let target = attack_cfg.target_override.unwrap_or(victim_addr);
            let (vapp, vstats) = VictimApp::new(attack_cfg.victim_capacity_pps, 600);
            if attack_cfg.install_victim {
                sim.install_app(target, Box::new(vapp));
            }
            let flood = dtcs_attack::DirectFlood::install(
                &mut sim,
                target,
                &dtcs_attack::DirectFloodConfig {
                    n_agents: attack_cfg.n_agents,
                    agent_rate_pps: attack_cfg.agent_rate_pps,
                    pkt_size: attack_cfg.request_size.max(200),
                    spoof,
                    start_at: attack_cfg.start_at,
                    stop_at: attack_cfg.stop_at,
                    seed: attack_cfg.seed,
                },
            );
            let _ = flood;
            // Uninvolved third-party services for the collateral probes.
            let mut services = Vec::new();
            let stubs = sim.topo.stub_nodes();
            for i in 0..attack_cfg.n_reflectors.min(stubs.len()) {
                let node = stubs[stubs.len() - 1 - i];
                if node == victim_node {
                    continue;
                }
                let addr = Addr::new(node, hosts::SERVICE);
                let (app, _h) =
                    dtcs_attack::ReflectorApp::new(dtcs_attack::ReflectorProfile::default());
                sim.install_app(addr, Box::new(app));
                services.push(addr);
            }
            InstalledAttack {
                victim_stats: vstats,
                service_addrs: services,
            }
        }
    };
    let victim_stats: VictimHandle = match &i3 {
        Some((_, vstats)) => vstats.clone(),
        None => attack.victim_stats.clone(),
    };

    // --- Legitimate workload -------------------------------------------
    let client_stop = cfg.duration;
    let clients: Vec<ClientHandle> = match (&sos, &i3) {
        (Some(overlay), _) => client_addrs
            .iter()
            .map(|&a| {
                let (app, h) = ClientApp::new(overlay.soap_for(a), cfg.client_period);
                sim.install_app(a, Box::new(app.until(client_stop)));
                h
            })
            .collect(),
        (_, Some((defense, _))) => client_addrs
            .iter()
            .map(|&a| {
                let (app, h) = ClientApp::new(defense.trigger, cfg.client_period);
                sim.install_app(a, Box::new(app.until(client_stop)));
                h
            })
            .collect(),
        _ => install_clients_at(
            &mut sim,
            &client_addrs,
            victim_addr,
            cfg.client_period,
            client_stop,
        ),
    };

    // Collateral probes: third parties using reflector-hosted (or simply
    // third-party) services.
    let n_coll = cfg.n_collateral_clients.min(attack.service_addrs.len());
    let coll_addrs = plan_client_addrs(&sim, victim_node, n_coll, cfg.seed ^ 0xC0).into_iter();
    let collateral: Vec<ClientHandle> = coll_addrs
        .enumerate()
        .map(|(i, a)| {
            let server = attack.service_addrs[i % attack.service_addrs.len()];
            let (app, h) = ClientApp::new(server, cfg.client_period);
            let app = app.request(Proto::DnsQuery, 60).until(client_stop);
            sim.install_app(a, Box::new(app));
            h
        })
        .collect();

    // --- Scheme post-attack steps ----------------------------------------
    if let Scheme::TracebackFilter {
        reconstruct_at,
        scope,
        min_share,
        ..
    } = scheme
    {
        let marks = marks_for_traceback.clone().expect("collector installed");
        let scope = *scope;
        let min_share = *min_share;
        let identified = identified_sources.clone();
        sim.schedule(*reconstruct_at, move |s| {
            let table = marks.lock().clone();
            let sources = reconstruct_sources(&s.topo, &s.routing, victim_node, &table, min_share);
            *identified.lock() = sources.len();
            install_traceback_filters(s, &sources, victim_node, scope);
        });
    }

    // --- Background traffic ---------------------------------------------
    install_background(
        &mut sim,
        victim_node,
        &cfg.background,
        cfg.duration,
        cfg.seed,
    );

    // --- Run --------------------------------------------------------------
    sim.stats.watch(victim_node, SimDuration::from_secs(1));
    sim.run_until(cfg.duration);

    // --- Collect -----------------------------------------------------------
    let mut row = OutcomeRow::from_stats(&scheme.label(), &sim.stats);
    row.legit_success = mean_success(&clients);
    row.collateral_success = mean_success(&collateral);
    {
        let v = victim_stats.lock();
        row.victim_overloaded = v.overloaded;
        row.victim_attack_absorbed = v.attack_absorbed;
    }
    if let Some(pb) = &pushback {
        let s = pb.lock();
        row = row
            .with_extra("pushback_limits", s.limits_installed.len() as f64)
            .with_extra("pushback_msgs", s.msgs_sent as f64);
    }
    if let Some(overlay) = &sos {
        row = row.with_extra("trust_relationships", overlay.trust_relationships as f64);
    }
    if matches!(scheme, Scheme::TracebackFilter { .. }) {
        row = row.with_extra("identified_sources", *identified_sources.lock() as f64);
    }
    if let Some(dep) = &tcs {
        row = row
            .with_extra("tcs_devices", dep.nodes.len() as f64)
            .with_extra("tcs_rules", dep.total_rules() as f64)
            .with_extra("tcs_device_drops", dep.total_device_drops() as f64);
    }
    // Mean RTT as a path-stretch indicator (overlay detours).
    let rtts: Vec<f64> = clients.iter().filter_map(|h| h.lock().mean_rtt()).collect();
    if !rtts.is_empty() {
        let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
        row = row.with_extra("mean_rtt_s", mean);
    }
    // Engine invariants are a hard gate on every scenario run: a
    // conservation hole or a clamped past-event would silently skew any
    // table built from this row.
    if let Err(e) = sim.stats.check_conservation() {
        panic!(
            "scenario[{}]: packet conservation violated: {e}",
            scheme.label()
        );
    }
    assert_eq!(
        sim.stats.past_events_clamped,
        0,
        "scenario[{}]: events were scheduled in the past and clamped",
        scheme.label()
    );
    let trace = recorder.map(|rec| {
        drop(sim.take_trace_sink());
        Arc::try_unwrap(rec)
            .ok()
            .expect("recorder uniquely owned once the sink is detached")
            .into_inner()
            .expect("flight recorder mutex poisoned")
    });
    ScenarioOutput {
        row,
        stats: sim.stats.clone(),
        trace,
    }
}

/// Pick deterministic helper nodes for schemes and experiments (exposed
/// for the bench harness).
pub fn pick_nodes(topo: &Topology, fraction: f64, placement: Placement, seed: u64) -> Vec<NodeId> {
    choose_nodes(topo, fraction, placement, seed)
}

/// Host id background demand sources claim (distinct from the attack
/// scenario's SERVICE/CLIENT/ZOMBIE hosts).
const BG_SRC_HOST: u16 = 0xB6;
/// Host id background demand sinks listen on.
const BG_DST_HOST: u16 = 0xB7;

/// Install the configured background flows between seeded stub pairs
/// (victim excluded on both ends). Each flow is one
/// [`Simulator::add_background_demand`] call, so whether it runs as a
/// fluid aggregate or a discrete CBR stream is decided by the engine, not
/// here — scenarios read identically under either.
fn install_background(
    sim: &mut Simulator,
    victim: NodeId,
    bg: &BackgroundSpec,
    until: SimTime,
    seed: u64,
) {
    use rand::seq::SliceRandom;
    if bg.n_flows == 0 {
        return;
    }
    let mut stubs: Vec<NodeId> = sim
        .topo
        .stub_nodes()
        .into_iter()
        .filter(|&n| n != victim)
        .collect();
    if stubs.len() < 2 {
        return;
    }
    let mut rng = dtcs_netsim::rng::seeded(dtcs_netsim::rng::child_seed(seed, 0xB6F1));
    stubs.shuffle(&mut rng);
    let half = (stubs.len() / 2).max(1);
    for i in 0..bg.n_flows {
        let src_node = stubs[i % stubs.len()];
        let dst_node = stubs[(i + half) % stubs.len()];
        if src_node == dst_node {
            continue;
        }
        let dst = Addr::new(dst_node, BG_DST_HOST);
        sim.install_app(dst, Box::new(SinkApp));
        sim.add_background_demand(FluidDemand {
            src: Addr::new(src_node, BG_SRC_HOST),
            dst,
            proto: Proto::Udp,
            class: TrafficClass::Background,
            rate_bps: bg.rate_bps,
            pkt_size: bg.pkt_size,
            until,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcs::TcsStaticConfig;
    use dtcs_mitigation::{BlockScope, PushbackConfig};

    fn small_cfg() -> ScenarioConfig {
        ScenarioConfig {
            n_nodes: 100,
            attack: ReflectorAttackConfig {
                n_agents: 40,
                n_reflectors: 60,
                agent_rate_pps: 50.0,
                start_at: SimTime::from_secs(2),
                stop_at: SimTime::from_secs(10),
                victim_capacity_pps: 400.0,
                ..Default::default()
            },
            n_clients: 15,
            n_collateral_clients: 10,
            duration: SimTime::from_secs(12),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn undefended_attack_degrades_service() {
        let out = run_scenario(&small_cfg(), &Scheme::None);
        assert!(
            out.row.legit_success < 0.85,
            "no defense: clients must suffer ({})",
            out.row.legit_success
        );
        assert!(
            out.row.collateral_success > 0.9,
            "no collateral without filters"
        );
        assert!(out.row.victim_overloaded > 0 || out.row.victim_attack_absorbed > 0);
    }

    #[test]
    fn tcs_proactive_restores_service() {
        let none = run_scenario(&small_cfg(), &Scheme::None);
        let tcs = run_scenario(
            &small_cfg(),
            &Scheme::Tcs(TcsStaticConfig {
                fraction: 1.0,
                ..Default::default()
            }),
        );
        assert!(
            tcs.row.legit_success > none.row.legit_success + 0.1,
            "TCS must beat no-defense: {} vs {}",
            tcs.row.legit_success,
            none.row.legit_success
        );
        assert!(tcs.row.collateral_success > 0.9, "TCS causes no collateral");
        // Attack stopped near the sources.
        assert!(tcs.row.attack_byte_hops < none.row.attack_byte_hops / 2);
    }

    #[test]
    fn traceback_null_route_causes_collateral() {
        let cfg = small_cfg();
        let out = run_scenario(
            &cfg,
            &Scheme::TracebackFilter {
                marking_p: 0.05,
                reconstruct_at: SimTime::from_secs(5),
                scope: BlockScope::AllTraffic,
                min_share: 0.002,
            },
        );
        // The reconstruction names reflectors, and null-routing them cuts
        // off their legitimate clients.
        let identified = out.row.extra["identified_sources"];
        assert!(identified > 0.0, "some sources must be identified");
        assert!(
            out.row.collateral_success < 0.9,
            "null-routing reflectors must hurt their clients ({})",
            out.row.collateral_success
        );
    }

    #[test]
    fn sos_protects_members() {
        let out = run_scenario(
            &small_cfg(),
            &Scheme::Sos {
                n_soaps: 3,
                n_servlets: 2,
            },
        );
        assert!(
            out.row.legit_success > 0.85,
            "overlay members stay served ({})",
            out.row.legit_success
        );
        assert!(out.row.extra["trust_relationships"] > 0.0);
        // Reflected traffic dies at the perimeter, not at the victim.
        assert_eq!(out.row.reflected_delivered_to_victim, 0);
    }

    #[test]
    fn i3_fails_when_ip_known() {
        let known = run_scenario(&small_cfg(), &Scheme::I3 { ip_hidden: false });
        let hidden = run_scenario(&small_cfg(), &Scheme::I3 { ip_hidden: true });
        assert!(
            hidden.row.legit_success > known.row.legit_success,
            "hiding the IP is the only thing that makes i3 work: {} vs {}",
            hidden.row.legit_success,
            known.row.legit_success
        );
    }

    #[test]
    fn direct_flood_traceback_finds_true_agents_and_works() {
        // For a classic spoofed direct flood (no reflectors), traceback
        // names the real agent ASes; null-routing them actually helps the
        // victim and leaves third parties mostly alone — the contrast to
        // the reflector case the paper builds its argument on.
        let mut cfg = small_cfg();
        cfg.attack_kind = AttackKind::Direct {
            spoof: dtcs_attack::SpoofMode::Random,
        };
        cfg.attack.agent_rate_pps = 120.0;
        let none = run_scenario(&cfg, &Scheme::None);
        let tb = run_scenario(
            &cfg,
            &Scheme::TracebackFilter {
                marking_p: 0.05,
                reconstruct_at: SimTime::from_secs(5),
                scope: BlockScope::AllTraffic,
                min_share: 0.002,
            },
        );
        assert!(tb.row.extra["identified_sources"] > 0.0);
        assert!(
            tb.row.legit_success > none.row.legit_success + 0.1,
            "traceback filtering must HELP against direct floods: {} vs {}",
            tb.row.legit_success,
            none.row.legit_success
        );
        // The victim actually recovers (attack absorbed drops sharply)...
        assert!(
            tb.row.victim_overloaded < none.row.victim_overloaded / 2,
            "null-routing true agents must relieve the victim: {} vs {}",
            tb.row.victim_overloaded,
            none.row.victim_overloaded
        );
        // ...and the residual collateral is the paper's Sec. 4.6 kind:
        // innocents co-located with zombies in "poorly managed access
        // networks", not the reflector-case cutting of service providers.
        assert!(
            tb.row.collateral_success > 0.4,
            "{}",
            tb.row.collateral_success
        );
    }

    #[test]
    fn traced_scenario_is_observation_only_and_deterministic() {
        let plain = run_scenario(&small_cfg(), &Scheme::None);
        let mut cfg = small_cfg();
        cfg.trace = Some(TraceSpec {
            one_in: 8,
            capacity: 1 << 18,
        });
        let a = run_scenario(&cfg, &Scheme::None);
        let b = run_scenario(&cfg, &Scheme::None);
        // Attaching the recorder must not perturb the outcome...
        assert_eq!(a.row.legit_success, plain.row.legit_success);
        assert_eq!(a.stats.events, plain.stats.events);
        // ...and the capture itself is byte-reproducible.
        let ja = a.trace.expect("trace requested").export_jsonl_string();
        let jb = b.trace.expect("trace requested").export_jsonl_string();
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "trace JSONL must be byte-identical across runs");
        assert!(plain.trace.is_none());
    }

    #[test]
    fn background_fluid_and_discrete_agree_on_victim_outcome() {
        // The fluid-equivalence contract in miniature: the same scenario
        // with background flows carried as discrete CBR packets vs fluid
        // aggregates must tell the same story at the victim.
        let mut cfg = small_cfg();
        cfg.background = BackgroundSpec {
            n_flows: 40,
            rate_bps: 2e5,
            pkt_size: 500,
        };
        let discrete = run_scenario(&cfg, &Scheme::None);
        assert_eq!(discrete.stats.fluid_aggregates, 0);
        assert!(
            discrete
                .stats
                .class(dtcs_netsim::TrafficClass::Background)
                .sent_pkts
                > 0
        );
        cfg.fluid = Some(SimDuration::from_millis(50));
        let fluid = run_scenario(&cfg, &Scheme::None);
        assert!(fluid.stats.fluid_aggregates > 0, "flows must go fluid");
        assert!(fluid.stats.fluid_ticks > 0);
        assert!(
            (fluid.row.legit_success - discrete.row.legit_success).abs() < 0.05,
            "victim outcome must agree across engines: {} vs {}",
            fluid.row.legit_success,
            discrete.row.legit_success
        );
        let fbg = fluid.stats.class(dtcs_netsim::TrafficClass::Background);
        let dbg = discrete.stats.class(dtcs_netsim::TrafficClass::Background);
        let rel = (fbg.sent_pkts as f64 - dbg.sent_pkts as f64).abs() / dbg.sent_pkts as f64;
        assert!(
            rel < 0.02,
            "background volume must agree: {} vs {}",
            fbg.sent_pkts,
            dbg.sent_pkts
        );
    }

    #[test]
    fn transit_stub_scale_scenario_runs_hybrid() {
        // A (small) instance of the scale shape: transit-stub topology,
        // fluid background, full attack machinery — the E2-at-100k recipe.
        let mut cfg = small_cfg();
        cfg.topology = TopologyChoice::TransitStub { n: 1500 };
        cfg.background = BackgroundSpec {
            n_flows: 100,
            rate_bps: 2e5,
            pkt_size: 500,
        };
        cfg.fluid = Some(SimDuration::from_millis(100));
        let out = run_scenario(&cfg, &Scheme::None);
        assert!(out.stats.fluid_aggregates >= 90, "most flows go fluid");
        assert!(out.row.legit_success >= 0.0 && out.row.legit_success <= 1.0);
        // Conservation + no-clamp hard gates already ran inside.
        let bg = out.stats.class(dtcs_netsim::TrafficClass::Background);
        assert!(bg.delivered_pkts > 0, "background must flow");
    }

    #[test]
    fn runs_are_deterministic() {
        // Determinism must hold for every scheme, including those with
        // internal state machines (pushback) and mid-run reconfiguration
        // (reactive TCS, traceback).
        let schemes = vec![
            Scheme::None,
            Scheme::Pushback(PushbackConfig::default()),
            Scheme::Tcs(TcsStaticConfig {
                fraction: 0.5,
                activate_at: SimTime::from_secs(4),
                ..Default::default()
            }),
            Scheme::TracebackFilter {
                marking_p: 0.05,
                reconstruct_at: SimTime::from_secs(5),
                scope: BlockScope::AllTraffic,
                min_share: 0.002,
            },
        ];
        for scheme in schemes {
            let a = run_scenario(&small_cfg(), &scheme);
            let b = run_scenario(&small_cfg(), &scheme);
            assert_eq!(
                a.row.legit_success,
                b.row.legit_success,
                "{} not deterministic",
                scheme.label()
            );
            assert_eq!(a.row.attack_byte_hops, b.row.attack_byte_hops);
            assert_eq!(a.stats.events, b.stats.events);
        }
    }
}
