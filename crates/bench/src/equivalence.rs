//! Fluid/discrete equivalence cross-check (`experiments --fluid-equivalence`).
//!
//! The fluid layer's contract (DESIGN.md §6.8) is that carrying steady
//! background traffic as rate aggregates must not change what the paper
//! measures at the victim. This module runs the E2 scenario per scheme
//! twice — background as discrete CBR packets vs as fluid aggregates —
//! and enforces pinned tolerances on the victim-side metrics and on the
//! background volume itself. The CI `fluid-equivalence` job runs it and
//! fails the build on any breach; the tolerances are deliberately
//! constants here, not CLI knobs, so loosening them is a reviewed diff.

use dtcs::mitigation::Placement;
use dtcs::netsim::{SimDuration, TrafficClass};
use dtcs::{run_scenario, Scheme};

/// Absolute |Δ| tolerance on success-ratio metrics (legit, collateral,
/// attack-delivered): the two engines must agree on every headline
/// outcome to within five percentage points.
pub const TOL_RATIO: f64 = 0.05;

/// Relative tolerance on background volume *offered* (sent bytes). The
/// fluid layer integrates the same rate the CBR emitter quantizes, so
/// the offered volumes must track each other tightly.
pub const TOL_BG_SENT: f64 = 0.02;

/// Relative tolerance on background volume *delivered*. Looser than the
/// offered bound: admission under attack load is where the closed-form
/// proportional share and per-packet queueing legitimately diverge.
pub const TOL_BG_DELIVERED: f64 = 0.05;

/// Run the cross-check grid and print one row per (scheme, metric).
/// Returns `true` iff every check passed.
pub fn run_fluid_equivalence(quick: bool) -> bool {
    let mut cfg = crate::e2::scenario(quick);
    if !quick {
        // The pinned cross-check grid is a BA-400 internet — the size
        // the discrete engine's golden results are anchored at.
        cfg.n_nodes = 400;
    }
    cfg.background.n_flows = if quick { 60 } else { 200 };
    let schemes = [
        Scheme::None,
        Scheme::Ingress {
            fraction: 0.3,
            placement: Placement::TopDegree,
        },
    ];
    println!(
        "fluid-equivalence cross-check: {} nodes, {} background flows, \
         tolerances ratio<= {TOL_RATIO}, bg sent<= {TOL_BG_SENT} rel, \
         bg delivered<= {TOL_BG_DELIVERED} rel",
        cfg.n_nodes, cfg.background.n_flows
    );
    println!(
        "{:<22} {:<26} {:>12} {:>12} {:>9} {:>7}  ok",
        "scheme", "metric", "fluid-off", "fluid-on", "delta", "limit"
    );
    let mut all_ok = true;
    for scheme in schemes {
        let off_cfg = cfg.clone();
        let mut on_cfg = cfg.clone();
        on_cfg.fluid = Some(SimDuration::from_millis(50));
        let off = run_scenario(&off_cfg, &scheme);
        let on = run_scenario(&on_cfg, &scheme);
        let label = scheme.label();
        let mut check = |metric: &str, a: f64, b: f64, limit: f64, relative: bool| {
            let delta = if relative {
                (a - b).abs() / a.abs().max(1.0)
            } else {
                (a - b).abs()
            };
            let ok = delta <= limit;
            all_ok &= ok;
            println!(
                "{label:<22} {metric:<26} {a:>12.4} {b:>12.4} {delta:>9.4} {limit:>7.4}  {}",
                if ok { "yes" } else { "NO" }
            );
        };
        check(
            "legit_success",
            off.row.legit_success,
            on.row.legit_success,
            TOL_RATIO,
            false,
        );
        check(
            "collateral_success",
            off.row.collateral_success,
            on.row.collateral_success,
            TOL_RATIO,
            false,
        );
        check(
            "attack_delivered_ratio",
            off.row.attack_delivered_ratio,
            on.row.attack_delivered_ratio,
            TOL_RATIO,
            false,
        );
        let boff = off.stats.class(TrafficClass::Background);
        let bon = on.stats.class(TrafficClass::Background);
        check(
            "background_sent_bytes",
            boff.sent_bytes as f64,
            bon.sent_bytes as f64,
            TOL_BG_SENT,
            true,
        );
        check(
            "background_delivered_bytes",
            boff.delivered_bytes as f64,
            bon.delivered_bytes as f64,
            TOL_BG_DELIVERED,
            true,
        );
        // The comparison is vacuous unless each run used the engine it
        // claims to: the fluid run must carry aggregates, the discrete
        // run must not.
        if on.stats.fluid_aggregates == 0 {
            println!("{label:<22} fluid run created no aggregates — check is vacuous  NO");
            all_ok = false;
        }
        if off.stats.fluid_aggregates != 0 {
            println!("{label:<22} discrete run unexpectedly used the fluid layer  NO");
            all_ok = false;
        }
    }
    println!(
        "fluid-equivalence: {}",
        if all_ok { "PASS" } else { "FAIL" }
    );
    all_ok
}
