//! Property-based tests for the support structures (rates never negative,
//! admission never exceeds the configured budget, Bloom filters never
//! false-negative, ring logs retain exactly the newest entries).

#![cfg(test)]

use proptest::prelude::*;

use crate::support::{Bloom, LogEntry, RingLog, TokenBucket, WindowRate};
use dtcs_netsim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Over any admission sequence, total admitted bytes never exceed
    /// burst + rate × elapsed-time (the defining token-bucket bound).
    #[test]
    fn token_bucket_never_over_admits(
        rate in 1.0f64..1e6,
        burst in 1u32..1_000_000,
        offers in proptest::collection::vec((0u64..10_000_000u64, 1u32..100_000), 1..200),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut admitted: f64 = 0.0;
        for (advance, size) in offers {
            now += SimDuration(advance);
            if tb.take(now, size) {
                admitted += size as f64;
            }
            let bound = burst as f64 + rate * now.as_secs_f64();
            prop_assert!(
                admitted <= bound + 1e-6,
                "admitted {admitted} exceeds bound {bound}"
            );
            prop_assert!(tb.tokens() >= -1e-9, "tokens never negative");
        }
    }

    /// Bloom filters never false-negative, under any insert set.
    #[test]
    fn bloom_never_false_negative(
        bits in 64u32..(1 << 16),
        hashes in 1u8..8,
        items in proptest::collection::vec(any::<u64>(), 0..500),
    ) {
        let mut b = Bloom::new(bits, hashes);
        for &x in &items {
            b.insert(x);
        }
        for &x in &items {
            prop_assert!(b.contains(x));
        }
        prop_assert_eq!(b.inserted(), items.len() as u64);
    }

    /// A ring log retains exactly the most recent `min(capacity, pushed)`
    /// entries, in order.
    #[test]
    fn ring_log_retains_newest(
        capacity in 1usize..64,
        n in 0u64..300,
    ) {
        let mut r = RingLog::new(capacity);
        for i in 0..n {
            r.push(LogEntry { at: SimTime(i), digest: i });
        }
        let snap = r.snapshot();
        let expect_len = capacity.min(n as usize);
        prop_assert_eq!(snap.len(), expect_len);
        prop_assert_eq!(r.total(), n);
        for (k, e) in snap.iter().enumerate() {
            prop_assert_eq!(e.digest, n - expect_len as u64 + k as u64);
        }
    }

    /// Window rates are non-negative and zero after long gaps.
    #[test]
    fn window_rate_sane(
        window in 1u64..1_000_000_000u64,
        events in proptest::collection::vec((0u64..10_000_000_000u64, 0.0f64..100.0), 1..100),
    ) {
        let mut w = WindowRate::new(SimDuration(window));
        let mut now = SimTime::ZERO;
        for (advance, amount) in events {
            now += SimDuration(advance);
            if let Some((rate, _gap)) = w.record(now, amount) {
                prop_assert!(rate >= 0.0);
            }
            prop_assert!(w.last_rate() >= 0.0);
        }
        // A very long silence then one event: the last completed window
        // must read as a gap (rate dropped to zero).
        let far = now + SimDuration(window.saturating_mul(1000).max(10));
        if let Some((_, gap)) = w.record(far, 1.0) {
            prop_assert!(gap || window >= far.as_nanos(), "long silences read as gaps");
        }
        prop_assert_eq!(w.last_rate(), 0.0);
    }
}
