//! Bridging device filter rules onto the fluid traffic layer.
//!
//! A filtering device drops packets its [`MatchExpr`] rules match; the
//! fluid engine (`dtcs_netsim::fluid`) carries background traffic as rate
//! aggregates that never become packets. [`FluidMatchFilter`] closes that
//! gap: it evaluates the *same* `MatchExpr` against an aggregate's header
//! tuple (src, dst, proto, size) and cuts the configured fraction of its
//! rate, so a service spec's verdicts apply uniformly to both engines.
//!
//! Payload-hash conditions cannot be evaluated on an aggregate (there is
//! no payload); a rule using them is treated as matching on headers alone,
//! the conservative over-approximation for a *filter* rule.

use dtcs_netsim::{Addr, FluidFilter, Proto, TrafficClass};

use crate::spec::MatchExpr;

/// A device filter rule lifted to the fluid layer: aggregates whose
/// header tuple matches `expr` keep only `pass` of their rate.
pub struct FluidMatchFilter {
    expr: MatchExpr,
    pass: f64,
}

impl FluidMatchFilter {
    /// Pass fraction `pass` (clamped to `[0, 1]`) of matching traffic.
    pub fn new(expr: MatchExpr, pass: f64) -> FluidMatchFilter {
        FluidMatchFilter {
            expr,
            pass: pass.clamp(0.0, 1.0),
        }
    }

    /// Drop all matching traffic — the fluid twin of a plain filter rule.
    pub fn drop_matching(expr: MatchExpr) -> FluidMatchFilter {
        FluidMatchFilter::new(expr, 0.0)
    }
}

impl FluidFilter for FluidMatchFilter {
    fn pass(&self, src: Addr, dst: Addr, proto: Proto, size: u32, _class: TrafficClass) -> f64 {
        if self.expr.matches(src, dst, proto, size) {
            self.pass
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{
        DropReason, FluidDemand, NodeId, SimDuration, SimTime, Simulator, SinkApp, Topology,
    };

    fn demand(dst_host: u16, proto: Proto) -> FluidDemand {
        FluidDemand {
            src: Addr::new(NodeId(0), 1),
            dst: Addr::new(NodeId(3), dst_host),
            proto,
            class: TrafficClass::Background,
            rate_bps: 4e6,
            pkt_size: 500,
            until: SimTime::from_secs(2),
        }
    }

    #[test]
    fn match_expr_cuts_only_matching_aggregates() {
        let mut sim = Simulator::new(Topology::line(4), 17);
        sim.enable_fluid(SimDuration::from_millis(50));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(SinkApp));
        sim.install_app(Addr::new(NodeId(3), 2), Box::new(SinkApp));
        // Drop UDP toward the victim at the device node; TCP untouched.
        let expr = MatchExpr::proto(Proto::Udp);
        sim.add_fluid_filter(NodeId(2), Box::new(FluidMatchFilter::drop_matching(expr)));
        sim.add_background_demand(demand(1, Proto::Udp));
        sim.add_background_demand(demand(2, Proto::TcpData));
        sim.run_until(SimTime::from_secs(3));
        let agg = sim.stats.drops_for_reason(DropReason::DeviceFilter);
        assert!(agg.pkts > 0, "udp aggregate must be filtered");
        // The filter sits two hops from the source.
        assert_eq!(agg.hops_sum, agg.pkts * 2);
        let c = sim.stats.class(TrafficClass::Background);
        assert_eq!(c.delivered_pkts + agg.pkts, c.sent_pkts);
        sim.stats.check_conservation().unwrap();
    }

    #[test]
    fn partial_pass_fraction_is_honoured() {
        let mut sim = Simulator::new(Topology::line(4), 17);
        sim.enable_fluid(SimDuration::from_millis(50));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(SinkApp));
        let expr = MatchExpr::any();
        sim.add_fluid_filter(NodeId(1), Box::new(FluidMatchFilter::new(expr, 0.25)));
        sim.add_background_demand(demand(1, Proto::Udp));
        sim.run_until(SimTime::from_secs(3));
        let c = sim.stats.class(TrafficClass::Background);
        let ratio = c.delivered_pkts as f64 / c.sent_pkts as f64;
        assert!((ratio - 0.25).abs() < 0.01, "ratio {ratio}");
    }
}
