//! Quickstart: protect a server against a DDoS reflector attack with the
//! distributed traffic control service.
//!
//! Walks the paper's whole story in one run:
//! 1. build a small internet and a victim server with legitimate clients;
//! 2. launch a Fig. 1 reflector attack (spoofed SYNs bounced off innocent
//!    servers) and watch service collapse;
//! 3. register the victim with the TCSP (ownership verified against the
//!    number authority, Fig. 4) and deploy worldwide anti-spoofing
//!    (Fig. 5);
//! 4. watch the attack die close to its sources and service recover.
//!
//! Run with: `cargo run --release -p dtcs --example quickstart`

use dtcs::attack::{install_clients, mean_success, ReflectorAttack, ReflectorAttackConfig};
use dtcs::control::{CatalogService, ControlPlane, DeployScope, InternetNumberAuthority, UserId};
use dtcs::netsim::{Prefix, SimDuration, SimTime, Simulator, Topology, TrafficClass};

fn main() {
    // 1. A 60-AS transit-stub internet: 4 providers, 14 stubs each.
    let topo = Topology::transit_stub_multihomed(4, 14, 0.2, 7);
    let mut sim = Simulator::new(topo, 7);
    let victim_node = sim.topo.stub_nodes()[0];
    let victim_prefix = Prefix::of_node(victim_node);
    println!("victim AS: {victim_node:?} (prefix {victim_prefix:?})");

    // 2. The attack: 60 zombies bounce spoofed SYNs off 80 reflectors,
    //    from t=10 s to t=40 s.
    let attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: 60,
            n_reflectors: 80,
            agent_rate_pps: 60.0,
            start_at: SimTime::from_secs(10),
            stop_at: SimTime::from_secs(40),
            victim_capacity_pps: 600.0,
            seed: 7,
            ..Default::default()
        },
    );
    let clients = install_clients(
        &mut sim,
        attack.victim,
        20,
        SimDuration::from_millis(250),
        SimTime::from_secs(50),
        7,
    );

    // 3. The control plane: number authority, TCSP, one NMS per provider,
    //    an adaptive device beside every router.
    let mut authority = InternetNumberAuthority::new();
    authority.allocate(victim_prefix, UserId(0xAA01)); // the victim's RIR record
    let isps = dtcs::control::partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp = ControlPlane::install(
        &mut sim,
        authority,
        0xC0FFEE,
        tcsp_node,
        authority_node,
        isps,
    );

    // The victim registers at t=20 s — mid-attack — and deploys
    // anti-spoofing everywhere its ISPs reach.
    let (_user, record) = cp.add_user(
        &mut sim,
        victim_node,
        vec![victim_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_secs(20),
        false,
    );

    // 4. Run and report in 10-second acts.
    sim.stats.watch(victim_node, SimDuration::from_secs(1));
    let mut last_ok = 0u64;
    let mut last_sent = 0u64;
    for act in 1..=5u64 {
        sim.run_until(SimTime::from_secs(act * 10));
        let (sent, ok) = clients.iter().fold((0, 0), |(s, o), h| {
            let c = h.lock();
            (s + c.sent, o + c.answered)
        });
        let window_ratio = if sent > last_sent {
            (ok - last_ok) as f64 / (sent - last_sent) as f64
        } else {
            1.0
        };
        let phase = match act {
            1 => "calm",
            2 | 3 => "under attack",
            _ => "defended",
        };
        println!(
            "t={:>3}s [{}] client success (last 10 s): {:.1}%",
            act * 10,
            phase,
            window_ratio * 100.0
        );
        last_ok = ok;
        last_sent = sent;
    }

    let r = record.lock();
    println!(
        "\nTCSP flow: registered at {:?}, deployment confirmed at {:?}, {} devices configured",
        r.registered_at.expect("registered"),
        r.deploy_confirmed_at.expect("deployed"),
        r.devices_configured,
    );
    let spoof_drops = sim
        .stats
        .drops_for_reason(dtcs::netsim::DropReason::SpoofFilter);
    println!(
        "anti-spoofing dropped {} spoofed packets at mean distance {:.1} hops from their source",
        spoof_drops.pkts,
        sim.stats
            .mean_stop_distance(
                TrafficClass::AttackDirect,
                dtcs::netsim::DropReason::SpoofFilter
            )
            .unwrap_or(0.0),
    );
    println!(
        "overall client success: {:.1}%",
        mean_success(&clients) * 100.0
    );
}
