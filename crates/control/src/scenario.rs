//! Whole-control-plane installation: builds the Fig. 3 network model —
//! number authority, TCSP, per-ISP network management systems, and an
//! adaptive device beside every managed router — inside a simulator.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_device::{AdaptiveDevice, DeviceHandle};
use dtcs_netsim::{NodeId, NodeRole, Prefix, SimDuration, SimTime, Simulator};

use crate::authority::InternetNumberAuthority;
use crate::catalog::CatalogService;
use crate::identity::UserId;
use crate::plane::{
    AuthorityAgent, DeployScope, IspContract, TcspAgent, TcspHandle, UserAgent, UserHandle,
    TOKEN_REGISTER, TOKEN_RENEW, TOKEN_SWEEP, TOKEN_WITHDRAW,
};
use crate::retry::CpStatsHandle;

/// Optional control-plane behaviours, selected at install time.
///
/// The default configuration reproduces the plain plane: no anti-entropy
/// sweep, no leases (installs are bounded only by the 24 h certificate
/// lifetime), unidirectional reconcile.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControlPlaneConfig {
    /// Anti-entropy sweep cadence (None = off).
    pub reconcile_every: Option<SimDuration>,
    /// Lease length granted with every install, and the renewal cadence.
    /// Renewals re-install (and re-lease) every desired-state entry; a
    /// device that misses its renewals reaps the service itself.
    pub leases: Option<(SimDuration, SimDuration)>,
    /// Bidirectional sweep: also remove device-resident services absent
    /// from desired state (requires `reconcile_every`).
    pub sweep_removals: bool,
    /// Override the TCSP certificate lifetime (None = default 24 h).
    pub cert_lifetime: Option<SimDuration>,
}

/// Partition a topology into ISPs: every transit node becomes an ISP
/// managing itself plus the stub ASes closest to it (ties to the
/// lowest-id transit). Degenerate topologies without transit nodes become
/// a single ISP run from node 0.
pub fn partition_by_provider(sim: &Simulator) -> Vec<IspContract> {
    let transit: Vec<NodeId> = sim
        .topo
        .nodes
        .iter()
        .filter(|n| n.role == NodeRole::Transit)
        .map(|n| n.id)
        .collect();
    if transit.is_empty() {
        return vec![IspContract {
            nms_node: NodeId(0),
            managed: (0..sim.topo.n()).map(NodeId).collect(),
        }];
    }
    let mut managed: BTreeMap<NodeId, Vec<NodeId>> =
        transit.iter().map(|&t| (t, vec![t])).collect();
    for i in 0..sim.topo.n() {
        let node = NodeId(i);
        if sim.topo.nodes[i].role == NodeRole::Transit {
            continue;
        }
        let provider = transit
            .iter()
            .copied()
            .min_by_key(|&t| (sim.routing.distance(node, t).unwrap_or(u16::MAX), t.0))
            .expect("transit set non-empty");
        managed
            .get_mut(&provider)
            .expect("provider exists")
            .push(node);
    }
    managed
        .into_iter()
        .map(|(nms_node, managed)| IspContract { nms_node, managed })
        .collect()
}

/// A fully-installed control plane.
pub struct ControlPlane {
    /// TCSP signing key (public side used by NMSes to verify certs).
    pub tcsp_key: u64,
    /// Node hosting the TCSP.
    pub tcsp_node: NodeId,
    /// Node hosting the number authority.
    pub authority_node: NodeId,
    /// Contracted ISPs.
    pub isps: Vec<IspContract>,
    /// TCSP observability.
    pub tcsp_stats: TcspHandle,
    /// Availability switch — set to `false` to simulate a DDoS against the
    /// TCSP itself.
    pub tcsp_available: Arc<Mutex<bool>>,
    /// Per-router device handles.
    pub devices: BTreeMap<NodeId, DeviceHandle>,
    /// Control-plane-wide reliability counters (retransmits, dedup hits,
    /// reconciliation activity) shared by every protocol agent.
    pub cp_stats: CpStatsHandle,
    user_seq: u64,
}

impl ControlPlane {
    /// Install the full control plane: authority at `authority_node`, TCSP
    /// at `tcsp_node`, one NMS per ISP, and an adaptive device on every
    /// managed router.
    pub fn install(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
    ) -> ControlPlane {
        Self::install_with(
            sim,
            authority,
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig::default(),
        )
    }

    /// Like [`ControlPlane::install`], with the NMS anti-entropy sweep
    /// enabled: every `reconcile_every`, each NMS inventories its managed
    /// devices and re-installs services lost to crashes.
    pub fn install_with_reconcile(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
        reconcile_every: SimDuration,
    ) -> ControlPlane {
        Self::install_with(
            sim,
            authority,
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig {
                reconcile_every: Some(reconcile_every),
                ..ControlPlaneConfig::default()
            },
        )
    }

    /// Install the control plane with explicit [`ControlPlaneConfig`]
    /// behaviours (leases, bidirectional sweep, certificate lifetime).
    #[allow(clippy::too_many_arguments)]
    pub fn install_with(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
        config: ControlPlaneConfig,
    ) -> ControlPlane {
        let cp_stats = CpStatsHandle::default();
        sim.add_agent(authority_node, Box::new(AuthorityAgent::new(authority)));
        let (mut tcsp, tcsp_stats, tcsp_available) =
            TcspAgent::new(tcsp_key, authority_node, isps.clone());
        if let Some(lifetime) = config.cert_lifetime {
            tcsp = tcsp.with_cert_lifetime(lifetime);
        }
        sim.add_agent(tcsp_node, Box::new(tcsp.with_cp_stats(cp_stats.clone())));
        let mut devices = BTreeMap::new();
        for isp in &isps {
            let peers: Vec<NodeId> = isps
                .iter()
                .map(|i| i.nms_node)
                .filter(|&n| n != isp.nms_node)
                .collect();
            let mut nms = crate::plane::NmsAgent::new(tcsp_key, isp.managed.clone(), peers)
                .with_cp_stats(cp_stats.clone());
            if let Some(every) = config.reconcile_every {
                nms = nms.with_reconcile(every);
            }
            if let Some((lease_len, renew_every)) = config.leases {
                nms = nms.with_leases(lease_len, renew_every);
            }
            if config.sweep_removals {
                nms = nms.with_sweep_removals();
            }
            let idx = sim.add_agent(isp.nms_node, Box::new(nms));
            if let Some(every) = config.reconcile_every {
                sim.schedule_agent_timer(isp.nms_node, idx, SimTime::ZERO + every, TOKEN_SWEEP);
            }
            if let Some((_, renew_every)) = config.leases {
                sim.schedule_agent_timer(
                    isp.nms_node,
                    idx,
                    SimTime::ZERO + renew_every,
                    TOKEN_RENEW,
                );
            }
            for &node in &isp.managed {
                let (dev, handle) = AdaptiveDevice::new(node, Some(isp.nms_node));
                sim.add_agent(node, Box::new(dev));
                devices.insert(node, handle);
            }
        }
        ControlPlane {
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            tcsp_stats,
            tcsp_available,
            devices,
            cp_stats,
            user_seq: 1,
        }
    }

    /// Add a network user at `node` who registers at `register_at`, then
    /// deploys `service` with `scope`. `fallback` enables the direct-ISP
    /// path when the TCSP stays silent.
    #[allow(clippy::too_many_arguments)]
    pub fn add_user(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        fallback: bool,
    ) -> (UserId, UserHandle) {
        self.add_user_with(
            sim,
            node,
            claim,
            service,
            scope,
            register_at,
            fallback,
            |a| a,
        )
    }

    /// Like [`ControlPlane::add_user`] with a customisation hook for the
    /// user agent (deploy delay, timeout, …).
    #[allow(clippy::too_many_arguments)]
    pub fn add_user_with(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        fallback: bool,
        customize: impl FnOnce(UserAgent) -> UserAgent,
    ) -> (UserId, UserHandle) {
        self.add_user_inner(
            sim,
            node,
            claim,
            service,
            scope,
            register_at,
            None,
            fallback,
            customize,
        )
    }

    /// Like [`ControlPlane::add_user_with`], additionally scheduling an
    /// owner-initiated withdrawal ([`TOKEN_WITHDRAW`]) at `withdraw_at`:
    /// the user tears its whole deployment down through the TCSP.
    #[allow(clippy::too_many_arguments)]
    pub fn add_user_withdrawing(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        withdraw_at: SimTime,
        fallback: bool,
        customize: impl FnOnce(UserAgent) -> UserAgent,
    ) -> (UserId, UserHandle) {
        self.add_user_inner(
            sim,
            node,
            claim,
            service,
            scope,
            register_at,
            Some(withdraw_at),
            fallback,
            customize,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn add_user_inner(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        withdraw_at: Option<SimTime>,
        fallback: bool,
        customize: impl FnOnce(UserAgent) -> UserAgent,
    ) -> (UserId, UserHandle) {
        let user = UserId(0xAA00 + self.user_seq);
        self.user_seq += 1;
        let (mut agent, handle) =
            UserAgent::new(user, claim, self.tcsp_node, service, scope, register_at);
        agent = agent.with_cp_stats(self.cp_stats.clone());
        if fallback {
            agent = agent.with_fallback(self.isps.iter().map(|i| i.nms_node).collect());
        }
        agent = customize(agent);
        let idx = sim.add_agent(node, Box::new(agent));
        sim.schedule_agent_timer(node, idx, register_at, TOKEN_REGISTER);
        if let Some(at) = withdraw_at {
            sim.schedule_agent_timer(node, idx, at, TOKEN_WITHDRAW);
        }
        (user, handle)
    }

    /// Total rules installed across all devices (E6 metric).
    pub fn total_rules(&self) -> usize {
        self.devices.values().map(|h| h.lock().rule_count).sum()
    }

    /// Number of devices with at least one installed rule.
    pub fn devices_configured(&self) -> usize {
        self.devices
            .values()
            .filter(|h| h.lock().rule_count > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::DeployScope;
    use dtcs_netsim::Topology;

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let topo = Topology::transit_stub_multihomed(4, 6, 0.2, 7);
        let sim = Simulator::new(topo, 3);
        let isps = partition_by_provider(&sim);
        assert_eq!(isps.len(), 4);
        let mut seen = vec![false; sim.topo.n()];
        for isp in &isps {
            for &n in &isp.managed {
                assert!(!seen[n.0], "node managed twice");
                seen[n.0] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every node managed");
    }

    #[test]
    fn full_registration_and_deployment_flow() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        // Pre-allocate: the user genuinely owns the victim prefix.
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp = ControlPlane::install(
            &mut sim,
            authority,
            0x5EC, // key
            tcsp_node,
            authority_node,
            isps,
        );
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(10));
        let r = record.lock();
        assert!(r.registered_at.is_some(), "registration must complete");
        assert!(!r.denied);
        assert!(
            r.deploy_confirmed_at.is_some(),
            "deployment must be confirmed"
        );
        assert!(r.devices_configured > 0, "devices configured: {r:?}");
        assert_eq!(r.installs_rejected, 0);
        drop(r);
        assert!(cp.total_rules() > 0);
        assert_eq!(cp.devices_configured(), sim.topo.n());
        assert_eq!(cp.tcsp_stats.lock().registrations_ok, 1);
    }

    #[test]
    fn bogus_ownership_claim_is_denied() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let foreign = Prefix::of_node(sim.topo.stub_nodes()[1]);
        let authority = InternetNumberAuthority::new(); // no allocations
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![foreign],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(5));
        let r = record.lock();
        assert!(r.denied, "claiming someone else's prefix must be denied");
        assert!(r.deploy_confirmed_at.is_none());
        assert_eq!(cp.total_rules(), 0, "no rules without a certificate");
        assert_eq!(cp.tcsp_stats.lock().registrations_denied, 1);
    }

    #[test]
    fn tcsp_outage_triggers_isp_fallback() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user_with(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            true, // fallback enabled
            |a| a.with_deploy_delay(dtcs_netsim::SimDuration::from_secs(1)),
        );
        // Let registration succeed, then take the TCSP down before the
        // deployment request lands.
        let available = cp.tcsp_available.clone();
        sim.schedule(SimTime::from_millis(500), move |_| {
            *available.lock() = false;
        });
        sim.run_until(SimTime::from_secs(20));
        let r = record.lock();
        assert!(r.registered_at.is_some());
        assert!(r.used_fallback, "user must fall back to the ISPs");
        assert!(
            r.devices_configured > 0,
            "fallback deployment configures devices: {r:?}"
        );
        assert!(r.fallback_acks > 0);
    }

    #[test]
    fn forged_certificates_deploy_nothing() {
        // A certificate signed under the wrong key is rejected by every
        // NMS, on both the TCSP path and the direct fallback path.
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let cp = ControlPlane::install(
            &mut sim,
            InternetNumberAuthority::new(),
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
        );
        // Forge: issued under a different key.
        let forged = crate::identity::Certificate::issue(
            0xBAD,
            UserId(0xAA01),
            vec![Prefix::of_node(victim_node)],
            SimTime::from_secs(1_000_000),
        );
        let nms = cp.isps[0].nms_node;
        sim.deliver_control(
            SimTime::from_millis(10),
            victim_node,
            nms,
            crate::plane::Envelope {
                to: crate::plane::Role::Nms,
                key: crate::retry::MsgKey::first(0xAA01, 1),
                msg: crate::plane::CpMsg::DeployRequest {
                    cert: forged,
                    service: CatalogService::AntiSpoofing,
                    scope: DeployScope::AllManaged,
                    txn: 1,
                    reply_to: victim_node,
                    forward_to_peers: true,
                },
            },
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(cp.total_rules(), 0, "forged cert must configure nothing");
    }

    #[test]
    fn withdrawal_removes_every_rule_and_confirms() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user_withdrawing(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            SimTime::from_secs(5), // tear down after the deploy settles
            false,
            |a| a,
        );
        sim.run_until(SimTime::from_secs(15));
        let r = record.lock();
        assert!(r.deploy_confirmed_at.is_some(), "{r:?}");
        assert!(
            r.withdraw_confirmed_at.is_some(),
            "withdrawal must confirm: {r:?}"
        );
        assert_eq!(
            r.services_removed, r.devices_configured,
            "every configured device must confirm its removal: {r:?}"
        );
        drop(r);
        assert_eq!(cp.total_rules(), 0, "no rules may survive a withdrawal");
        let cps = cp.cp_stats.lock();
        assert_eq!(cps.withdrawals, 1);
        assert!(cps.withdraw_removes > 0);
    }

    #[test]
    fn expired_certificate_still_authorises_withdrawal() {
        // Certificate lifetime of 2 s: by the time the user withdraws at
        // t=5 s the credential is stale, but teardown must still work.
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp = ControlPlane::install_with(
            &mut sim,
            authority,
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig {
                cert_lifetime: Some(SimDuration::from_secs(2)),
                ..ControlPlaneConfig::default()
            },
        );
        let (_user, record) = cp.add_user_withdrawing(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            SimTime::from_secs(5),
            false,
            |a| a,
        );
        sim.run_until(SimTime::from_secs(15));
        let r = record.lock();
        assert!(r.deploy_confirmed_at.is_some(), "{r:?}");
        assert!(
            r.withdraw_confirmed_at.is_some(),
            "expired-but-authentic credentials must still tear down: {r:?}"
        );
        drop(r);
        assert_eq!(cp.total_rules(), 0);
    }

    #[test]
    fn expired_certificate_rejects_new_deploys() {
        // Register immediately, but hold the deploy until after the 1 s
        // certificate lifetime: the TCSP must refuse and count it.
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp = ControlPlane::install_with(
            &mut sim,
            authority,
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig {
                cert_lifetime: Some(SimDuration::from_secs(1)),
                ..ControlPlaneConfig::default()
            },
        );
        let (_user, record) = cp.add_user_with(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
            |a| a.with_deploy_delay(SimDuration::from_secs(3)),
        );
        sim.run_until(SimTime::from_secs(30));
        let r = record.lock();
        assert!(r.registered_at.is_some());
        assert!(
            r.deploy_confirmed_at.is_none(),
            "a deploy presented after expiry must not confirm: {r:?}"
        );
        drop(r);
        assert_eq!(cp.total_rules(), 0, "no filter under a dead authority");
        assert!(
            cp.cp_stats.lock().expired_deploys > 0,
            "staleness rejections must be counted"
        );
    }

    #[test]
    fn leases_reap_orphans_after_nms_silence() {
        // Leased installs with renewals; at t=6 s the NMS withdraws the
        // owner NMS-side state only — simulated here by crashing every
        // device *after* stopping renewals is not possible directly, so
        // instead verify the full loop: deploy leased, withdraw while
        // devices are reachable, and confirm devices also reap on their
        // own when renewals stop (covered by the device unit tests); here
        // we assert the scenario-level invariant that leased deployments
        // renew and keep their rules alive.
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp = ControlPlane::install_with(
            &mut sim,
            authority,
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig {
                reconcile_every: Some(SimDuration::from_secs(2)),
                leases: Some((SimDuration::from_secs(3), SimDuration::from_secs(1))),
                sweep_removals: true,
                ..ControlPlaneConfig::default()
            },
        );
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
        );
        // Run well past several lease lengths: renewals must keep every
        // rule alive the whole time.
        sim.run_until(SimTime::from_secs(20));
        let r = record.lock();
        assert!(r.deploy_confirmed_at.is_some(), "{r:?}");
        drop(r);
        assert!(
            cp.total_rules() > 0,
            "renewals must keep leased rules alive"
        );
        let cps = cp.cp_stats.lock();
        assert!(cps.lease_renewals > 0, "renewal rounds must have run");
        assert_eq!(
            cps.lease_expirations, 0,
            "nothing expires while the certificate is fresh"
        );
        drop(cps);
        // Device-side reap counters stay zero while renewals flow.
        let reaps: u64 = cp.devices.values().map(|h| h.lock().lease_reaps).sum();
        assert_eq!(reaps, 0, "no orphan reaps while the NMS renews");
    }

    #[test]
    fn bidirectional_sweep_removes_undesired_services() {
        // Install a service directly on a device (outside the NMS's
        // desired state); the bidirectional sweep must remove it.
        use dtcs_device::{DeviceCommand, ModuleSpec, OwnerId, ServiceSpec, Stage};
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let rogue_node = isps[0].managed[0];
        let nms_node = isps[0].nms_node;
        let cp = ControlPlane::install_with(
            &mut sim,
            InternetNumberAuthority::new(),
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
            ControlPlaneConfig {
                reconcile_every: Some(SimDuration::from_secs(1)),
                sweep_removals: true,
                ..ControlPlaneConfig::default()
            },
        );
        // Plant a service the NMS never asked for.
        sim.deliver_control(
            SimTime::from_millis(10),
            nms_node,
            rogue_node,
            DeviceCommand::RegisterOwner {
                owner: OwnerId(0xEE),
                prefixes: vec![Prefix::of_node(rogue_node)],
                contact: nms_node,
            },
        );
        sim.deliver_control(
            SimTime::from_millis(20),
            nms_node,
            rogue_node,
            DeviceCommand::InstallService {
                txn: 0,
                owner: OwnerId(0xEE),
                stage: Stage::Dst,
                spec: ServiceSpec::chain("rogue", vec![ModuleSpec::AntiSpoof]),
                lease_until: SimTime::MAX,
            },
        );
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(
            cp.total_rules(),
            0,
            "the bidirectional sweep must remove undesired services"
        );
        assert!(cp.cp_stats.lock().reconcile_removals > 0);
    }

    #[test]
    fn scoped_deployment_configures_fewer_devices() {
        let topo = Topology::transit_stub_multihomed(4, 8, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::StubBorders,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(10));
        let r = record.lock();
        assert!(r.deploy_confirmed_at.is_some());
        // Only the 4 transit (stub-border) routers get rules.
        assert_eq!(cp.devices_configured(), 4, "{r:?}");
    }
}
