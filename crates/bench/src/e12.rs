//! E12 — Deployment incentives (Sec. 4.6).
//!
//! "Malicious or illegitimate traffic can now be filtered closer to the
//! source. This frees valuable bandwidth resources…" — the paper's pitch
//! to ISPs. This experiment measures it from the ISP's chair: partition
//! the internet into provider cones, run the same reflector attack with
//! and without a partial TCS deployment, and account each ISP's attack
//! bytes carried (from the per-link ground-truth counters). The split
//! between deployers and non-deployers quantifies both the direct benefit
//! and the free-rider effect.

use std::collections::BTreeMap;

use serde::Serialize;

use dtcs::attack::{install_clients, ReflectorAttack, ReflectorAttackConfig};
use dtcs::control::partition_by_provider;
use dtcs::mitigation::Placement;
use dtcs::netsim::{NodeId, Prefix, SimDuration, SimTime, Simulator, Topology};
use dtcs::{deploy_tcs_static, TcsStaticConfig};

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct IspRow {
    isp: usize,
    routers: usize,
    deployed: bool,
    attack_mb_undefended: f64,
    attack_mb_defended: f64,
    saved_pct: f64,
}

/// Attack bytes carried per ISP (sum over its routers' incident links,
/// halved since both endpoints count each link once here via ownership by
/// lower node id).
fn attack_bytes_per_isp(sim: &Simulator, isp_of: &BTreeMap<usize, usize>) -> BTreeMap<usize, u64> {
    let mut per_isp: BTreeMap<usize, u64> = BTreeMap::new();
    for link in &sim.topo.links {
        let bytes: u64 = link.dirs.iter().map(|d| d.attack_bytes_sent).sum();
        // Attribute half to each endpoint's ISP (a link burdens both).
        for end in [link.a, link.b] {
            if let Some(&isp) = isp_of.get(&end.0) {
                *per_isp.entry(isp).or_insert(0) += bytes / 2;
            }
        }
    }
    per_isp
}

/// Base seed shared by the single-run tables and the sweep cell
/// (historically the literal `88` for topology, simulator, TCS placement,
/// attack config, and client installer).
const SEED: u64 = 88;

fn run_once(deploy: bool, quick: bool, seed: u64) -> (Simulator, Vec<NodeId>) {
    let n = if quick { 120 } else { 250 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, seed);
    let mut sim = Simulator::new(topo, seed);
    let victim_node = sim.topo.stub_nodes()[2];
    let mut deployed_nodes = Vec::new();
    if deploy {
        let dep = deploy_tcs_static(
            &mut sim,
            Prefix::of_node(victim_node),
            &TcsStaticConfig {
                fraction: 0.25,
                // Random placement: entire provider cones stay undeployed,
                // making the free-rider group visible.
                placement: Placement::Random,
                seed,
                ..Default::default()
            },
        );
        deployed_nodes = dep.nodes;
    }
    let dur = if quick { 15u64 } else { 25 };
    let _attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: if quick { 60 } else { 100 },
            n_reflectors: if quick { 80 } else { 150 },
            agent_rate_pps: 60.0,
            start_at: SimTime::from_secs(2),
            stop_at: SimTime::from_secs(dur - 2),
            seed,
            ..Default::default()
        },
    );
    let _clients = install_clients(
        &mut sim,
        dtcs::netsim::Addr::new(victim_node, dtcs::attack::hosts::SERVICE),
        15,
        SimDuration::from_millis(250),
        SimTime::from_secs(dur),
        seed,
    );
    sim.run_until(SimTime::from_secs(dur));
    crate::util::enforce_run_invariants("e12", &sim.stats);
    (sim, deployed_nodes)
}

/// Per-ISP accounting of the undefended vs defended runs, sorted by
/// undefended load (descending) — shared by `run()` and the sweep cell.
fn isp_rows(sim_base: &Simulator, sim_tcs: &Simulator, deployed: &[NodeId]) -> Vec<IspRow> {
    // ISP partition (identical for both runs: same topology/seed).
    let isps = partition_by_provider(sim_base);
    let mut isp_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, isp) in isps.iter().enumerate() {
        for &node in &isp.managed {
            isp_of.insert(node.0, i);
        }
    }
    let base = attack_bytes_per_isp(sim_base, &isp_of);
    let with = attack_bytes_per_isp(sim_tcs, &isp_of);

    let mut rows: Vec<IspRow> = isps
        .iter()
        .enumerate()
        .map(|(i, isp)| {
            let b = *base.get(&i).unwrap_or(&0) as f64 / 1e6;
            let w = *with.get(&i).unwrap_or(&0) as f64 / 1e6;
            IspRow {
                isp: i,
                routers: isp.managed.len(),
                deployed: isp.managed.iter().any(|n| deployed.contains(n)),
                attack_mb_undefended: b,
                attack_mb_defended: w,
                saved_pct: if b > 0.0 { (1.0 - w / b) * 100.0 } else { 0.0 },
            }
        })
        .collect();
    rows.sort_by(|a, b| b.attack_mb_undefended.total_cmp(&a.attack_mb_undefended));
    rows
}

/// (bytes before, bytes after) summed over deployers (`pred == true`) or
/// free riders.
fn aggregate(rows: &[IspRow], pred: bool) -> (f64, f64) {
    rows.iter()
        .filter(|r| r.deployed == pred)
        .fold((0.0, 0.0), |(b, w), r| {
            (b + r.attack_mb_undefended, w + r.attack_mb_defended)
        })
}

/// Sweep-grid adapter: a single cell running the undefended/defended
/// pair and reporting the deployer vs free-rider aggregates; the two
/// simulations' stats are folded with [`dtcs::netsim::Stats::merge`].
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        vec![crate::sweep::SweepCell {
            experiment: "e12",
            scenario: "incentives/fraction=0.25".to_string(),
            base_seed: SEED,
            run: Box::new(move |seed| {
                let (sim_base, _) = run_once(false, quick, seed);
                let (sim_tcs, deployed) = run_once(true, quick, seed);
                let rows = isp_rows(&sim_base, &sim_tcs, &deployed);
                let (db, dw) = aggregate(&rows, true);
                let (fb, fw) = aggregate(&rows, false);
                let deployer_isps = rows.iter().filter(|r| r.deployed).count();
                let mut metrics = std::collections::BTreeMap::new();
                metrics.insert("deployers_mb_before".to_string(), db);
                metrics.insert("deployers_mb_after".to_string(), dw);
                metrics.insert("free_riders_mb_before".to_string(), fb);
                metrics.insert("free_riders_mb_after".to_string(), fw);
                metrics.insert(
                    "deployers_saved_pct".to_string(),
                    if db > 0.0 {
                        (1.0 - dw / db) * 100.0
                    } else {
                        0.0
                    },
                );
                metrics.insert(
                    "free_riders_saved_pct".to_string(),
                    if fb > 0.0 {
                        (1.0 - fw / fb) * 100.0
                    } else {
                        0.0
                    },
                );
                metrics.insert("deployer_isps".to_string(), deployer_isps as f64);
                let mut stats = sim_base.stats;
                stats.merge(&sim_tcs.stats);
                crate::sweep::CellRun { metrics, stats }
            }),
        }]
    }
}

/// Run E12.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e12",
        "ISP incentives: attack bandwidth saved per provider",
        "Sec. 4.6",
    );
    let (sim_base, _) = run_once(false, quick, SEED);
    let (sim_tcs, deployed) = run_once(true, quick, SEED);
    let rows = isp_rows(&sim_base, &sim_tcs, &deployed);

    let mut t = Table::new(
        "attack megabytes carried per ISP, without vs with a 25% TCS deployment",
        &[
            "isp",
            "routers",
            "deployed",
            "attack_MB_before",
            "attack_MB_after",
            "saved_%",
        ],
    );
    for r in rows.iter().take(12) {
        t.push(
            vec![
                r.isp.to_string(),
                r.routers.to_string(),
                r.deployed.to_string(),
                f(r.attack_mb_undefended),
                f(r.attack_mb_defended),
                format!("{:.1}", r.saved_pct),
            ],
            r,
        );
    }
    report.table(t);

    // Aggregate: deployers vs free riders.
    let (db, dw) = aggregate(&rows, true);
    let (fb, fw) = aggregate(&rows, false);
    let mut t = Table::new(
        "aggregate: deployers vs non-deployers",
        &["group", "attack_MB_before", "attack_MB_after", "saved_%"],
    );
    for (name, b, w) in [("deployers", db, dw), ("free-riders", fb, fw)] {
        t.push(
            vec![
                name.to_string(),
                f(b),
                f(w),
                format!("{:.1}", if b > 0.0 { (1.0 - w / b) * 100.0 } else { 0.0 }),
            ],
            &(name, b, w),
        );
    }
    report.table(t);
    report.note(
        "Deploying ISPs shed the bulk of the attack bytes they previously hauled (the \
         premium-service pitch of Sec. 4.6), and the savings spill over to non-deployers \
         too — filtering near the source frees everyone's links, which is simultaneously \
         the incentive and the free-rider tension of incremental roll-out.",
    );
    report
}
